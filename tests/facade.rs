//! End-to-end integration through the `selfstab` facade: the full
//! pipeline from DSL source to local proof, synthesis, global
//! cross-checking and simulation — spanning every workspace crate.

use selfstab::core::{ltg::Ltg, rcg::Rcg, StabilizationReport};
use selfstab::global::{check, RingInstance, Simulator};
use selfstab::protocol::{Domain, Locality, Protocol};
use selfstab::protocols::{agreement, coloring, matching, sum_not_two};
use selfstab::synth::{LocalSynthesizer, SynthesisConfig};

#[test]
fn full_pipeline_on_a_fresh_protocol() {
    // A protocol not in the library: 4-valued "max agreement".
    let p = Protocol::builder("max4", Domain::numeric("x", 4), Locality::unidirectional())
        .action("x[r] < x[r-1] -> x[r] := x[r-1]")
        .unwrap()
        .legit("x[r] == x[r-1]")
        .unwrap()
        .build()
        .unwrap();

    // Local proof.
    let report = StabilizationReport::analyze(&p);
    assert!(report.is_self_stabilizing_for_all_k(), "{report}");

    // Global cross-check + simulation.
    for k in 2..=6 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        assert!(check::ConvergenceReport::check(&ring).self_stabilizing());
    }
    let ring = RingInstance::symmetric(&p, 8).unwrap();
    let mut sim = Simulator::new(&ring, 1);
    let stats = sim.convergence_stats(100, 100_000);
    assert_eq!(stats.failed, 0);
}

#[test]
fn synthesis_to_simulation_round_trip() {
    let input = agreement::binary_agreement_empty();
    let out = LocalSynthesizer::new(SynthesisConfig::default())
        .synthesize(&input)
        .unwrap();
    assert!(out.is_success());
    for s in out.solutions() {
        let ring = RingInstance::symmetric(&s.protocol, 9).unwrap();
        let mut sim = Simulator::new(&ring, 3);
        let start = sim.random_state();
        assert!(sim.run_from(start, 100_000).converged);
    }
}

#[test]
fn graph_structures_are_consistent_across_crates() {
    let p = matching::matching_generalizable();
    let rcg = Rcg::build(&p);
    let ltg = Ltg::build(&p);
    // The LTG's s-graph is the RCG.
    assert_eq!(ltg.s_arcs().arc_count(), rcg.graph().arc_count());
    // Every t-arc's endpoints are in range.
    for (u, v) in ltg.t_arcs().arcs() {
        assert!(u < p.space().len() && v < p.space().len());
    }
}

#[test]
fn library_protocols_have_documented_verdicts() {
    // A compact truth table over the library: (protocol, deadlock-free,
    // livelock-certified).
    let cases: Vec<(Protocol, bool, bool)> = vec![
        (agreement::binary_agreement_one_sided(), true, true),
        (agreement::binary_agreement_other_sided(), true, true),
        (agreement::binary_agreement_both(), true, false),
        (agreement::max_agreement(3), true, true),
        (coloring::two_coloring_resolved(), true, false),
        (coloring::coloring_increment(3), true, false),
        (sum_not_two::sum_not_two_solution(), true, true),
        (matching::matching_generalizable(), true, false), // bidirectional scope
    ];
    for (p, dfree, lfree) in cases {
        let r = StabilizationReport::analyze(&p);
        assert_eq!(r.deadlock.is_free_for_all_k(), dfree, "{}", p.name());
        assert_eq!(r.livelock.certified_free(), lfree, "{}", p.name());
    }
}

#[test]
fn display_types_render() {
    let p = sum_not_two::sum_not_two_solution();
    let r = StabilizationReport::analyze(&p);
    let text = format!("{r}");
    assert!(text.contains("Theorem 4.2"));
    assert!(text.contains("Theorem 5.14"));
}

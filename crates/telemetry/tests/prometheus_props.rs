//! Property tests for the Prometheus exposition renderer.
//!
//! The format's one structural invariant that jq can't check for us:
//! `_bucket` series must be cumulative (monotone non-decreasing) and
//! sorted by ascending `le`, ending at `le="+Inf"` whose value equals
//! `_count`. We drive the renderer with arbitrary recorded values and
//! parse their own output back.

use proptest::prelude::*;
use selfstab_telemetry::{prometheus, Registry};

/// Parses every `<family>_bucket{…le="X"} v` line into `(le, v)`, where
/// `le` is `None` for `+Inf`.
fn parse_buckets(text: &str, family: &str) -> Vec<(Option<u64>, u64)> {
    let prefix = format!("{family}_bucket");
    text.lines()
        .filter(|l| l.starts_with(&prefix))
        .map(|l| {
            let le_at = l.find("le=\"").expect("bucket line has le");
            let rest = &l[le_at + 4..];
            let end = rest.find('"').expect("closing quote");
            let le = &rest[..end];
            let value: u64 = l
                .rsplit(' ')
                .next()
                .expect("value field")
                .parse()
                .expect("integer value");
            let le = if le == "+Inf" {
                None
            } else {
                Some(le.parse().expect("finite le is an integer"))
            };
            (le, value)
        })
        .collect()
}

/// The trailing ` <value>` of the first line starting with `name `.
fn scalar(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no {name} line in:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

proptest! {
    #[test]
    fn cumulative_buckets_are_monotone_and_le_sorted(
        values in proptest::collection::vec(any::<u64>(), 0..200)
    ) {
        let registry = Registry::new();
        let h = registry.histogram("prop/case_us");
        for &v in &values {
            h.record(v);
        }
        let text = prometheus::render(&registry);
        let buckets = parse_buckets(&text, "selfstab_prop_case_us");

        // At least the +Inf bucket always renders, and it comes last.
        prop_assert!(!buckets.is_empty());
        prop_assert_eq!(buckets.last().unwrap().0, None, "+Inf terminates the series");
        prop_assert_eq!(
            buckets.iter().filter(|(le, _)| le.is_none()).count(),
            1,
            "exactly one +Inf bucket"
        );

        // Finite les strictly ascend; counts never decrease.
        for pair in buckets.windows(2) {
            let ((le_a, n_a), (le_b, n_b)) = (&pair[0], &pair[1]);
            if let (Some(a), Some(b)) = (le_a, le_b) {
                prop_assert!(a < b, "le sorted ascending: {a} vs {b}");
            }
            prop_assert!(n_a <= n_b, "cumulative counts monotone: {n_a} vs {n_b}");
        }

        // +Inf equals _count equals the number of samples, and every
        // sample is covered by its first admitting bucket.
        let total = buckets.last().unwrap().1;
        prop_assert_eq!(total, values.len() as u64);
        prop_assert_eq!(scalar(&text, "selfstab_prop_case_us_count"), total);
        for &v in &values {
            let covered = buckets
                .iter()
                .find(|(le, _)| le.is_none_or(|le| v <= le))
                .expect("some bucket admits v");
            prop_assert!(covered.1 >= 1, "value {v} counted somewhere");
        }
    }

    #[test]
    fn count_and_sum_agree_with_json_snapshot(
        values in proptest::collection::vec(any::<u64>(), 1..100)
    ) {
        let registry = Registry::new();
        let h = registry.histogram("prop/agree_us");
        for &v in &values {
            h.record(v);
        }
        let text = prometheus::render(&registry);
        let json = registry.snapshot_json();
        let snap = &json["histograms"]["prop/agree_us"];
        prop_assert_eq!(
            scalar(&text, "selfstab_prop_agree_us_count"),
            snap["count"].as_u64().unwrap()
        );
        prop_assert_eq!(
            scalar(&text, "selfstab_prop_agree_us_sum"),
            snap["sum"].as_u64().unwrap()
        );
    }
}

//! Chrome trace-event export (Perfetto / `chrome://tracing`).
//!
//! The collector records complete (`ph: "X"`) and instant (`ph: "i"`)
//! events with microsecond timestamps relative to its creation, and
//! renders the standard `{"traceEvents": […]}` JSON object document.
//! Unlike everything else in this crate, recording locks and allocates —
//! tracing is opt-in (`sweep --trace`) and sits beside the hot path, not
//! on it.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use serde_json::Value;

#[derive(Debug)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    /// `'X'` (complete, with `dur`) or `'i'` (instant).
    ph: char,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    args: Value,
}

/// An accumulating Chrome trace-event collector.
#[derive(Debug)]
pub struct TraceCollector {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// A collector whose timestamp origin is "now".
    pub fn new() -> Self {
        TraceCollector {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds since the collector was created — the `ts` to pass to
    /// [`TraceCollector::complete`] for an event starting now.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Records a complete event (`ph: "X"`): `name` ran on `tid` from
    /// `ts_us` for `dur_us`.
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Value,
    ) {
        self.events
            .lock()
            .expect("trace poisoned")
            .push(TraceEvent {
                name: name.into(),
                cat,
                ph: 'X',
                ts_us,
                dur_us,
                tid,
                args,
            });
    }

    /// Records an instant event (`ph: "i"`, thread scope) at "now".
    pub fn instant(&self, name: impl Into<String>, cat: &'static str, tid: u64, args: Value) {
        self.events
            .lock()
            .expect("trace poisoned")
            .push(TraceEvent {
                name: name.into(),
                cat,
                ph: 'i',
                ts_us: self.now_us(),
                dur_us: 0,
                tid,
                args,
            });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace poisoned").len()
    }

    /// `true` if no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The trace-event JSON object document. `pid` is always 1 (one
    /// process); `tid` is the recording worker. Events keep recording
    /// order — viewers sort by `ts` themselves.
    pub fn to_json(&self) -> Value {
        let events = self
            .events
            .lock()
            .expect("trace poisoned")
            .iter()
            .map(|e| {
                let mut map = BTreeMap::new();
                map.insert("name".to_owned(), Value::from(e.name.as_str()));
                map.insert("cat".to_owned(), Value::from(e.cat));
                map.insert("ph".to_owned(), Value::from(e.ph.to_string()));
                map.insert("ts".to_owned(), Value::from(e.ts_us));
                if e.ph == 'X' {
                    map.insert("dur".to_owned(), Value::from(e.dur_us));
                } else {
                    // Instant scope: thread.
                    map.insert("s".to_owned(), Value::from("t"));
                }
                map.insert("pid".to_owned(), Value::from(1u64));
                map.insert("tid".to_owned(), Value::from(e.tid));
                if !e.args.is_null() {
                    map.insert("args".to_owned(), e.args.clone());
                }
                Value::Object(map)
            })
            .collect();
        let mut doc = BTreeMap::new();
        doc.insert("displayTimeUnit".to_owned(), Value::from("ms"));
        doc.insert("traceEvents".to_owned(), Value::Array(events));
        Value::Object(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn events_render_with_required_fields() {
        let t = TraceCollector::new();
        let ts = t.now_us();
        t.complete(
            "fused_scan",
            "engine",
            2,
            ts,
            150,
            json!({"spec": "a.stab", "k": 3}),
        );
        t.instant("job_panicked", "campaign", 0, Value::Null);
        assert_eq!(t.len(), 2);
        let doc = t.to_json();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["dur"], 150u64);
        assert_eq!(events[0]["pid"], 1u64);
        assert_eq!(events[0]["tid"], 2u64);
        assert_eq!(events[0]["args"]["spec"], "a.stab");
        assert_eq!(events[1]["ph"], "i");
        assert_eq!(events[1]["s"], "t");
        assert!(events[1]["args"].is_null());
    }
}

//! A minimal leveled stderr logger for the CLI.
//!
//! Three levels, one process-wide atomic, no timestamps, no targets:
//! diagnostics either matter to a human watching stderr or they don't.
//! `warn` always prints (soundness violations and interruptions must not
//! be silenceable); `info` is the default chatter (`wrote report.json`);
//! `verbose` is opt-in detail (`--verbose`). Machine-readable stdout
//! (`--json` modes) is untouched — the logger only ever writes stderr —
//! but `--json` still lowers the level to [`Level::Quiet`] so a pipeline
//! consuming stdout is not startled by stderr narration.

use std::sync::atomic::{AtomicU8, Ordering};

/// Logger verbosity, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Only warnings.
    Quiet = 0,
    /// Normal diagnostics (the default).
    Info = 1,
    /// Everything.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Info,
        _ => Level::Verbose,
    }
}

/// Derives the level from the standard CLI flag triple and sets it:
/// `--verbose` wins, then `--quiet`, then `--json` (quiet so machine
/// output pipelines stay clean), else [`Level::Info`].
pub fn set_level_from_flags(verbose: bool, quiet: bool, json: bool) {
    set_level(if verbose {
        Level::Verbose
    } else if quiet || json {
        Level::Quiet
    } else {
        Level::Info
    });
}

/// Prints to stderr unconditionally — for findings that must never be
/// suppressed (soundness violations, interruption notices).
pub fn warn(message: impl AsRef<str>) {
    eprintln!("{}", message.as_ref());
}

/// Prints to stderr at [`Level::Info`] and above.
pub fn info(message: impl AsRef<str>) {
    if level() >= Level::Info {
        eprintln!("{}", message.as_ref());
    }
}

/// Prints to stderr at [`Level::Verbose`] only.
pub fn verbose(message: impl AsRef<str>) {
    if level() >= Level::Verbose {
        eprintln!("{}", message.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_triple_resolves_in_priority_order() {
        // NOTE: the level is process-wide; this test owns it transiently
        // and restores the default before returning.
        set_level_from_flags(true, true, true);
        assert_eq!(level(), Level::Verbose);
        set_level_from_flags(false, true, false);
        assert_eq!(level(), Level::Quiet);
        set_level_from_flags(false, false, true);
        assert_eq!(level(), Level::Quiet);
        set_level_from_flags(false, false, false);
        assert_eq!(level(), Level::Info);
    }
}

//! Instrumentation for the selfstab toolkit.
//!
//! The verification hot paths — the fused scan, the livelock DFS, the
//! campaign pool — must never pay for their own observability. Everything
//! in this crate is therefore built from relaxed atomics and fixed-size
//! arrays:
//!
//! * [`Histogram`] — 65 log2 buckets behind one `fetch_add` per sample, no
//!   allocation, no lock;
//! * [`Phase`] / [`PhaseTimes`] — the six phases a campaign job moves
//!   through, accumulated as microsecond counters in a fixed array;
//! * [`EngineCounters`] — the global engine's work counters (states
//!   visited, deadlocks found, closure checks, DFS depth, cancel polls),
//!   flushed once per chunk so the scan loop itself only touches plain
//!   locals;
//! * [`Registry`] — named counters, gauges and histograms that snapshot
//!   to canonical (sorted-key) JSON and render to the Prometheus text
//!   exposition format ([`prometheus`]);
//! * [`TraceCollector`] — Chrome trace-event output loadable in Perfetto
//!   or `chrome://tracing` (this one locks and allocates: it is opt-in
//!   via `--trace` and never sits on a hot path);
//! * [`logger`] — the CLI's leveled stderr logger;
//! * [`Progress`] — the shared state behind `sweep`'s live progress meter.
//!
//! **The determinism contract.** Counter *values* describing completed
//! work (states visited, deadlocks found, DFS steps) are pure functions of
//! the problem instance and are byte-identical across worker and engine
//! thread counts. Durations, queue depths, steal counts and closure-check
//! short-circuit tallies depend on scheduling and are reported separately.
//! Consumers that diff metrics across runs must only compare the former;
//! the campaign metrics document keeps the two classes in different
//! sections for exactly this reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod hist;
pub mod logger;
mod phase;
mod progress;
pub mod prometheus;
mod registry;
mod trace;

pub use counters::{
    EngineCounters, EngineCountersSnapshot, SynthesisCounters, SynthesisCountersSnapshot,
};
pub use hist::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use phase::{Phase, PhaseSnapshot, PhaseTimes};
pub use progress::Progress;
pub use registry::Registry;
pub use trace::TraceCollector;

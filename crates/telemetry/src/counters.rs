//! The global engine's work counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

/// Counters the fused scan and the livelock DFS flush into — once per
/// chunk / once per completed search, never per state, so the hot loops
/// keep counting in plain locals.
///
/// Two classes live here, and they must not be confused:
///
/// * **deterministic** — `states_visited`, `legit_states`,
///   `deadlocks_found`, `dfs_steps`, `dfs_max_depth`, `cancel_polls`,
///   `orbits_visited`, `canonicalizations` and `frontier_pushes` are pure
///   functions of the instance (and the engine's resolved symmetry mode)
///   for a *completed* check, identical for every engine thread count
///   (scan polls fire on global id strides, the DFS and the reduced paths
///   are sequential);
/// * **scheduling-dependent** — `closure_checks` counts how many
///   legitimate states actually had their moves re-encoded, and the scan
///   short-circuits that work per chunk once a chunk finds its first
///   violation, so the tally depends on how the id range was chunked.
///
/// [`EngineCountersSnapshot::deterministic_json`] renders only the first
/// class; the second is surfaced in the campaign metrics document's
/// scheduling section.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Global states enumerated by the fused scan.
    pub states_visited: AtomicU64,
    /// States found inside `I(K)`.
    pub legit_states: AtomicU64,
    /// Deadlocks found outside `I(K)`.
    pub deadlocks_found: AtomicU64,
    /// Legitimate states whose outgoing moves were re-encoded for the
    /// closure check (scheduling-dependent; see the type docs).
    pub closure_checks: AtomicU64,
    /// Livelock DFS loop steps.
    pub dfs_steps: AtomicU64,
    /// Deepest DFS stack observed (frames).
    pub dfs_max_depth: AtomicU64,
    /// Cancellation polls performed (scan strides + DFS strides).
    pub cancel_polls: AtomicU64,
    /// Necklace orbits enumerated by the symmetry-reduced scan (zero under
    /// the full scan; `states_visited` stays orbit-weighted either way).
    pub orbits_visited: AtomicU64,
    /// Booth canonicalizations performed by the reduced livelock search.
    pub canonicalizations: AtomicU64,
    /// Stack pushes of the reduced livelock search's frontier walk.
    pub frontier_pushes: AtomicU64,
}

impl EngineCounters {
    /// All-zero counters.
    pub const fn new() -> Self {
        EngineCounters {
            states_visited: AtomicU64::new(0),
            legit_states: AtomicU64::new(0),
            deadlocks_found: AtomicU64::new(0),
            closure_checks: AtomicU64::new(0),
            dfs_steps: AtomicU64::new(0),
            dfs_max_depth: AtomicU64::new(0),
            cancel_polls: AtomicU64::new(0),
            orbits_visited: AtomicU64::new(0),
            canonicalizations: AtomicU64::new(0),
            frontier_pushes: AtomicU64::new(0),
        }
    }

    /// Raises `dfs_max_depth` to at least `depth`.
    pub fn record_dfs_depth(&self, depth: u64) {
        self.dfs_max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A plain-data copy.
    pub fn snapshot(&self) -> EngineCountersSnapshot {
        EngineCountersSnapshot {
            states_visited: self.states_visited.load(Ordering::Relaxed),
            legit_states: self.legit_states.load(Ordering::Relaxed),
            deadlocks_found: self.deadlocks_found.load(Ordering::Relaxed),
            closure_checks: self.closure_checks.load(Ordering::Relaxed),
            dfs_steps: self.dfs_steps.load(Ordering::Relaxed),
            dfs_max_depth: self.dfs_max_depth.load(Ordering::Relaxed),
            cancel_polls: self.cancel_polls.load(Ordering::Relaxed),
            orbits_visited: self.orbits_visited.load(Ordering::Relaxed),
            canonicalizations: self.canonicalizations.load(Ordering::Relaxed),
            frontier_pushes: self.frontier_pushes.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of [`EngineCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCountersSnapshot {
    /// See [`EngineCounters::states_visited`].
    pub states_visited: u64,
    /// See [`EngineCounters::legit_states`].
    pub legit_states: u64,
    /// See [`EngineCounters::deadlocks_found`].
    pub deadlocks_found: u64,
    /// See [`EngineCounters::closure_checks`].
    pub closure_checks: u64,
    /// See [`EngineCounters::dfs_steps`].
    pub dfs_steps: u64,
    /// See [`EngineCounters::dfs_max_depth`].
    pub dfs_max_depth: u64,
    /// See [`EngineCounters::cancel_polls`].
    pub cancel_polls: u64,
    /// See [`EngineCounters::orbits_visited`].
    pub orbits_visited: u64,
    /// See [`EngineCounters::canonicalizations`].
    pub canonicalizations: u64,
    /// See [`EngineCounters::frontier_pushes`].
    pub frontier_pushes: u64,
}

impl EngineCountersSnapshot {
    /// The thread-count-invariant counters as canonical JSON — the values
    /// a metrics differ may compare across runs. `closure_checks` is
    /// deliberately absent (see [`EngineCounters`]).
    pub fn deterministic_json(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("cancel_polls".to_owned(), Value::from(self.cancel_polls));
        map.insert(
            "canonicalizations".to_owned(),
            Value::from(self.canonicalizations),
        );
        map.insert(
            "deadlocks_found".to_owned(),
            Value::from(self.deadlocks_found),
        );
        map.insert("dfs_max_depth".to_owned(), Value::from(self.dfs_max_depth));
        map.insert("dfs_steps".to_owned(), Value::from(self.dfs_steps));
        map.insert(
            "frontier_pushes".to_owned(),
            Value::from(self.frontier_pushes),
        );
        map.insert("legit_states".to_owned(), Value::from(self.legit_states));
        map.insert(
            "orbits_visited".to_owned(),
            Value::from(self.orbits_visited),
        );
        map.insert(
            "states_visited".to_owned(),
            Value::from(self.states_visited),
        );
        Value::Object(map)
    }
}

/// Counters the synthesis engine flushes into — once per completed run
/// (from the canonically merged outcome) plus a per-worker poll tally, so
/// the candidate-verification loop keeps counting in plain locals.
///
/// The same determinism split as [`EngineCounters`] applies:
///
/// * **deterministic** — `resolve_sets_examined`, `combinations_tried`,
///   `rejected_invalid`, `rejected_by_deadlock`, `rejected_by_trail` and
///   `solutions_found` are recomputed from the canonical (enumeration-order)
///   merge, so they are identical for every thread count;
/// * **scheduling-dependent** — `cancel_polls` counts the cooperative
///   cancellation checks workers performed, including overwork on chunks
///   that a budget cutoff later discarded; `cones_cut`,
///   `candidates_skipped` and `delta_reuses` describe the lattice-pruning
///   machinery, whose work avoidance depends on which worker installed a
///   cut first (the *verdicts* stay deterministic — only the amount of
///   skipped work varies).
///
/// [`SynthesisCountersSnapshot::deterministic_json`] renders only the first
/// class.
#[derive(Debug, Default)]
pub struct SynthesisCounters {
    /// `Resolve` sets examined (candidate generation attempted).
    pub resolve_sets_examined: AtomicU64,
    /// Candidate combinations verified (counted at the canonical cutoff).
    pub combinations_tried: AtomicU64,
    /// Combinations rejected because the revision failed validation.
    pub rejected_invalid: AtomicU64,
    /// Combinations rejected by the exact deadlock-freedom re-check.
    pub rejected_by_deadlock: AtomicU64,
    /// Combinations rejected by the Theorem 5.14 trail check.
    pub rejected_by_trail: AtomicU64,
    /// Accepted revisions (within the canonical cutoff).
    pub solutions_found: AtomicU64,
    /// Cancellation polls performed (scheduling-dependent; see type docs).
    pub cancel_polls: AtomicU64,
    /// Cut sets installed in the lattice-pruning index
    /// (scheduling-dependent; see type docs).
    pub cones_cut: AtomicU64,
    /// Candidates tagged from a cut's upward cone without running
    /// verification (scheduling-dependent; see type docs).
    pub candidates_skipped: AtomicU64,
    /// Candidates verified against a delta-applied LTG or a shared per-set
    /// deadlock verdict instead of a from-scratch analysis
    /// (scheduling-dependent; see type docs).
    pub delta_reuses: AtomicU64,
}

impl SynthesisCounters {
    /// All-zero counters.
    pub const fn new() -> Self {
        SynthesisCounters {
            resolve_sets_examined: AtomicU64::new(0),
            combinations_tried: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            rejected_by_deadlock: AtomicU64::new(0),
            rejected_by_trail: AtomicU64::new(0),
            solutions_found: AtomicU64::new(0),
            cancel_polls: AtomicU64::new(0),
            cones_cut: AtomicU64::new(0),
            candidates_skipped: AtomicU64::new(0),
            delta_reuses: AtomicU64::new(0),
        }
    }

    /// A plain-data copy.
    pub fn snapshot(&self) -> SynthesisCountersSnapshot {
        SynthesisCountersSnapshot {
            resolve_sets_examined: self.resolve_sets_examined.load(Ordering::Relaxed),
            combinations_tried: self.combinations_tried.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            rejected_by_deadlock: self.rejected_by_deadlock.load(Ordering::Relaxed),
            rejected_by_trail: self.rejected_by_trail.load(Ordering::Relaxed),
            solutions_found: self.solutions_found.load(Ordering::Relaxed),
            cancel_polls: self.cancel_polls.load(Ordering::Relaxed),
            cones_cut: self.cones_cut.load(Ordering::Relaxed),
            candidates_skipped: self.candidates_skipped.load(Ordering::Relaxed),
            delta_reuses: self.delta_reuses.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of [`SynthesisCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SynthesisCountersSnapshot {
    /// See [`SynthesisCounters::resolve_sets_examined`].
    pub resolve_sets_examined: u64,
    /// See [`SynthesisCounters::combinations_tried`].
    pub combinations_tried: u64,
    /// See [`SynthesisCounters::rejected_invalid`].
    pub rejected_invalid: u64,
    /// See [`SynthesisCounters::rejected_by_deadlock`].
    pub rejected_by_deadlock: u64,
    /// See [`SynthesisCounters::rejected_by_trail`].
    pub rejected_by_trail: u64,
    /// See [`SynthesisCounters::solutions_found`].
    pub solutions_found: u64,
    /// See [`SynthesisCounters::cancel_polls`].
    pub cancel_polls: u64,
    /// See [`SynthesisCounters::cones_cut`].
    pub cones_cut: u64,
    /// See [`SynthesisCounters::candidates_skipped`].
    pub candidates_skipped: u64,
    /// See [`SynthesisCounters::delta_reuses`].
    pub delta_reuses: u64,
}

impl SynthesisCountersSnapshot {
    /// The thread-count-invariant counters as canonical JSON.
    /// `cancel_polls`, `cones_cut`, `candidates_skipped` and `delta_reuses`
    /// are deliberately absent (see [`SynthesisCounters`]).
    pub fn deterministic_json(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert(
            "combinations_tried".to_owned(),
            Value::from(self.combinations_tried),
        );
        map.insert(
            "rejected_by_deadlock".to_owned(),
            Value::from(self.rejected_by_deadlock),
        );
        map.insert(
            "rejected_by_trail".to_owned(),
            Value::from(self.rejected_by_trail),
        );
        map.insert(
            "rejected_invalid".to_owned(),
            Value::from(self.rejected_invalid),
        );
        map.insert(
            "resolve_sets_examined".to_owned(),
            Value::from(self.resolve_sets_examined),
        );
        map.insert(
            "solutions_found".to_owned(),
            Value::from(self.solutions_found),
        );
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_a_running_max() {
        let c = EngineCounters::new();
        c.record_dfs_depth(3);
        c.record_dfs_depth(7);
        c.record_dfs_depth(5);
        assert_eq!(c.snapshot().dfs_max_depth, 7);
    }

    #[test]
    fn deterministic_json_excludes_closure_checks() {
        let c = EngineCounters::new();
        c.closure_checks.fetch_add(9, Ordering::Relaxed);
        c.states_visited.fetch_add(16, Ordering::Relaxed);
        let text = c.snapshot().deterministic_json().to_string();
        assert!(text.contains("\"states_visited\":16"), "{text}");
        assert!(!text.contains("closure_checks"), "{text}");
    }

    #[test]
    fn synthesis_deterministic_json_excludes_scheduling_counters() {
        let c = SynthesisCounters::new();
        c.cancel_polls.fetch_add(11, Ordering::Relaxed);
        c.combinations_tried.fetch_add(8, Ordering::Relaxed);
        c.solutions_found.fetch_add(4, Ordering::Relaxed);
        c.cones_cut.fetch_add(1, Ordering::Relaxed);
        c.candidates_skipped.fetch_add(5, Ordering::Relaxed);
        c.delta_reuses.fetch_add(7, Ordering::Relaxed);
        let snap = c.snapshot();
        assert_eq!(snap.cones_cut, 1);
        assert_eq!(snap.candidates_skipped, 5);
        assert_eq!(snap.delta_reuses, 7);
        let text = snap.deterministic_json().to_string();
        assert!(text.contains("\"combinations_tried\":8"), "{text}");
        assert!(text.contains("\"solutions_found\":4"), "{text}");
        assert!(!text.contains("cancel_polls"), "{text}");
        // The pruning tallies depend on which worker installed a cut first,
        // so they must never enter the canonical (diffable) document.
        assert!(!text.contains("cones_cut"), "{text}");
        assert!(!text.contains("candidates_skipped"), "{text}");
        assert!(!text.contains("delta_reuses"), "{text}");
    }
}

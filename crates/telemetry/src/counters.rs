//! The global engine's work counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

/// Counters the fused scan and the livelock DFS flush into — once per
/// chunk / once per completed search, never per state, so the hot loops
/// keep counting in plain locals.
///
/// Two classes live here, and they must not be confused:
///
/// * **deterministic** — `states_visited`, `legit_states`,
///   `deadlocks_found`, `dfs_steps`, `dfs_max_depth` and `cancel_polls`
///   are pure functions of the instance for a *completed* check,
///   identical for every engine thread count (scan polls fire on global
///   id strides, the DFS is sequential);
/// * **scheduling-dependent** — `closure_checks` counts how many
///   legitimate states actually had their moves re-encoded, and the scan
///   short-circuits that work per chunk once a chunk finds its first
///   violation, so the tally depends on how the id range was chunked.
///
/// [`EngineCountersSnapshot::deterministic_json`] renders only the first
/// class; the second is surfaced in the campaign metrics document's
/// scheduling section.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Global states enumerated by the fused scan.
    pub states_visited: AtomicU64,
    /// States found inside `I(K)`.
    pub legit_states: AtomicU64,
    /// Deadlocks found outside `I(K)`.
    pub deadlocks_found: AtomicU64,
    /// Legitimate states whose outgoing moves were re-encoded for the
    /// closure check (scheduling-dependent; see the type docs).
    pub closure_checks: AtomicU64,
    /// Livelock DFS loop steps.
    pub dfs_steps: AtomicU64,
    /// Deepest DFS stack observed (frames).
    pub dfs_max_depth: AtomicU64,
    /// Cancellation polls performed (scan strides + DFS strides).
    pub cancel_polls: AtomicU64,
}

impl EngineCounters {
    /// All-zero counters.
    pub const fn new() -> Self {
        EngineCounters {
            states_visited: AtomicU64::new(0),
            legit_states: AtomicU64::new(0),
            deadlocks_found: AtomicU64::new(0),
            closure_checks: AtomicU64::new(0),
            dfs_steps: AtomicU64::new(0),
            dfs_max_depth: AtomicU64::new(0),
            cancel_polls: AtomicU64::new(0),
        }
    }

    /// Raises `dfs_max_depth` to at least `depth`.
    pub fn record_dfs_depth(&self, depth: u64) {
        self.dfs_max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A plain-data copy.
    pub fn snapshot(&self) -> EngineCountersSnapshot {
        EngineCountersSnapshot {
            states_visited: self.states_visited.load(Ordering::Relaxed),
            legit_states: self.legit_states.load(Ordering::Relaxed),
            deadlocks_found: self.deadlocks_found.load(Ordering::Relaxed),
            closure_checks: self.closure_checks.load(Ordering::Relaxed),
            dfs_steps: self.dfs_steps.load(Ordering::Relaxed),
            dfs_max_depth: self.dfs_max_depth.load(Ordering::Relaxed),
            cancel_polls: self.cancel_polls.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of [`EngineCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCountersSnapshot {
    /// See [`EngineCounters::states_visited`].
    pub states_visited: u64,
    /// See [`EngineCounters::legit_states`].
    pub legit_states: u64,
    /// See [`EngineCounters::deadlocks_found`].
    pub deadlocks_found: u64,
    /// See [`EngineCounters::closure_checks`].
    pub closure_checks: u64,
    /// See [`EngineCounters::dfs_steps`].
    pub dfs_steps: u64,
    /// See [`EngineCounters::dfs_max_depth`].
    pub dfs_max_depth: u64,
    /// See [`EngineCounters::cancel_polls`].
    pub cancel_polls: u64,
}

impl EngineCountersSnapshot {
    /// The thread-count-invariant counters as canonical JSON — the values
    /// a metrics differ may compare across runs. `closure_checks` is
    /// deliberately absent (see [`EngineCounters`]).
    pub fn deterministic_json(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("cancel_polls".to_owned(), Value::from(self.cancel_polls));
        map.insert(
            "deadlocks_found".to_owned(),
            Value::from(self.deadlocks_found),
        );
        map.insert("dfs_max_depth".to_owned(), Value::from(self.dfs_max_depth));
        map.insert("dfs_steps".to_owned(), Value::from(self.dfs_steps));
        map.insert("legit_states".to_owned(), Value::from(self.legit_states));
        map.insert(
            "states_visited".to_owned(),
            Value::from(self.states_visited),
        );
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_a_running_max() {
        let c = EngineCounters::new();
        c.record_dfs_depth(3);
        c.record_dfs_depth(7);
        c.record_dfs_depth(5);
        assert_eq!(c.snapshot().dfs_max_depth, 7);
    }

    #[test]
    fn deterministic_json_excludes_closure_checks() {
        let c = EngineCounters::new();
        c.closure_checks.fetch_add(9, Ordering::Relaxed);
        c.states_visited.fetch_add(16, Ordering::Relaxed);
        let text = c.snapshot().deterministic_json().to_string();
        assert!(text.contains("\"states_visited\":16"), "{text}");
        assert!(!text.contains("closure_checks"), "{text}");
    }
}

//! Log2-bucketed, lock-free histograms.
//!
//! Durations and state counts both span many orders of magnitude (a K=2
//! job sweeps 4 states, a K=12 job millions), so linear buckets would
//! either blur the small end or truncate the large one. Log2 bucketing
//! gives constant *relative* resolution with a trivial, branch-light
//! index function — `64 - leading_zeros` — and a fixed 65-slot array, so
//! recording a sample is one index computation plus relaxed `fetch_add`s:
//! no allocation, no lock, no contention beyond cache-line sharing.

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

/// Number of buckets: one for zero plus one per bit position of a `u64`.
pub const BUCKET_COUNT: usize = 65;

/// A lock-free histogram with log2 buckets.
///
/// Bucket `0` holds exactly the value `0`; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b)`, so `1` lands in bucket 1 and `u64::MAX` in bucket 64.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index of `value`: `0` for zero, else the position of the
    /// highest set bit plus one (`1 → 1`, `4096 → 13`, `u64::MAX → 64`).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The smallest value a bucket admits (`0, 1, 2, 4, 8, …`).
    pub fn bucket_floor(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// Records one sample. `sum` saturates rather than wrapping so a
    /// pathological total cannot masquerade as a small one.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (the histogram is normally
    /// quiescent when snapshotted; concurrent recording only skews the
    /// totals, never panics).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..BUCKET_COUNT)
            .filter_map(|b| {
                let n = self.buckets[b].load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_floor(b), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A plain-data copy of a [`Histogram`] for rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// `(bucket_floor, samples)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Canonical JSON: `{"count": …, "sum": …, "buckets": [[floor, n], …]}`.
    /// Buckets render as an array of pairs (not an object) so ascending
    /// numeric order survives — string keys would sort lexicographically.
    pub fn to_json(&self) -> Value {
        let buckets = self
            .buckets
            .iter()
            .map(|&(floor, n)| Value::Array(vec![Value::from(floor), Value::from(n)]))
            .collect();
        let mut map = std::collections::BTreeMap::new();
        map.insert("count".to_owned(), Value::from(self.count));
        map.insert("sum".to_owned(), Value::from(self.sum));
        map.insert("buckets".to_owned(), Value::Array(buckets));
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // The satellite's boundary triple: 0, 1, u64::MAX.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Powers of two open a new bucket; their predecessors close one.
        for bit in 1..64 {
            let p = 1u64 << bit;
            assert_eq!(Histogram::bucket_of(p), bit + 1, "2^{bit}");
            assert_eq!(Histogram::bucket_of(p - 1), bit, "2^{bit}-1");
            assert_eq!(Histogram::bucket_floor(bit + 1), p);
        }
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0, 0, 1, 3, 4096, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(
            s.buckets,
            vec![(0, 2), (1, 1), (2, 1), (4096, 1), (1 << 63, 1)]
        );
    }

    #[test]
    fn snapshot_json_is_ordered() {
        let h = Histogram::new();
        h.record(128);
        h.record(16);
        let text = h.snapshot().to_json().to_string();
        // Ascending numeric floors, as array pairs.
        assert!(text.contains("[[16,1],[128,1]]"), "{text}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * (999 * 1000 / 2));
    }
}

//! Phase spans: where a campaign job's wall-clock time goes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde_json::Value;

/// The phases a campaign job (and the campaign around it) moves through.
///
/// `Parse` and `LocalAnalysis` happen once per spec and are attributed to
/// the job whose worker happened to trigger the shared preparation;
/// `FusedScan` and `LivelockDfs` are the engine's two passes;
/// `JournalAppend` is checkpoint IO; `RetryBackoff` is deliberate sleep
/// between attempts of a panicking job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reading and parsing a `.stab` spec.
    Parse,
    /// The paper's local (all-K) analysis of a spec.
    LocalAnalysis,
    /// The fused single-pass scan of the global state space.
    FusedScan,
    /// The tricolor livelock DFS over `¬I`.
    LivelockDfs,
    /// Appending (and syncing) journal records.
    JournalAppend,
    /// Sleeping out the deterministic retry backoff.
    RetryBackoff,
    /// The Section 6 synthesis search (candidate enumeration + trail checks).
    Synthesis,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 7;

    /// Every phase, in canonical order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Parse,
        Phase::LocalAnalysis,
        Phase::FusedScan,
        Phase::LivelockDfs,
        Phase::JournalAppend,
        Phase::RetryBackoff,
        Phase::Synthesis,
    ];

    /// The canonical snake_case name (metrics keys, trace event names).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::LocalAnalysis => "local_analysis",
            Phase::FusedScan => "fused_scan",
            Phase::LivelockDfs => "livelock_dfs",
            Phase::JournalAppend => "journal_append",
            Phase::RetryBackoff => "retry_backoff",
            Phase::Synthesis => "synthesis",
        }
    }

    /// Index into [`Phase::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::LocalAnalysis => 1,
            Phase::FusedScan => 2,
            Phase::LivelockDfs => 3,
            Phase::JournalAppend => 4,
            Phase::RetryBackoff => 5,
            Phase::Synthesis => 6,
        }
    }
}

/// Per-phase accumulated microseconds and span counts — a fixed array of
/// relaxed atomics, so recording a span is two `fetch_add`s.
#[derive(Debug, Default)]
pub struct PhaseTimes {
    micros: [AtomicU64; Phase::COUNT],
    calls: [AtomicU64; Phase::COUNT],
}

impl PhaseTimes {
    /// All-zero phase times.
    pub const fn new() -> Self {
        PhaseTimes {
            micros: [const { AtomicU64::new(0) }; Phase::COUNT],
            calls: [const { AtomicU64::new(0) }; Phase::COUNT],
        }
    }

    /// Accumulates one completed span of `phase`.
    pub fn add(&self, phase: Phase, duration: Duration) {
        self.add_micros(phase, duration.as_micros() as u64);
    }

    /// Accumulates `micros` microseconds of `phase`.
    pub fn add_micros(&self, phase: Phase, micros: u64) {
        self.micros[phase.index()].fetch_add(micros, Ordering::Relaxed);
        self.calls[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `f` as one span of `phase`, timing it.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Accumulated microseconds of one phase.
    pub fn micros(&self, phase: Phase) -> u64 {
        self.micros[phase.index()].load(Ordering::Relaxed)
    }

    /// Completed spans of one phase.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()].load(Ordering::Relaxed)
    }

    /// Folds a snapshot (e.g. one job's phase times) into this instance,
    /// adding both microseconds and span counts — unlike
    /// [`PhaseTimes::add_micros`], phases the snapshot never entered do not
    /// gain a call.
    pub fn merge(&self, snapshot: &PhaseSnapshot) {
        for phase in Phase::ALL {
            let i = phase.index();
            self.micros[i].fetch_add(snapshot.micros[i], Ordering::Relaxed);
            self.calls[i].fetch_add(snapshot.calls[i], Ordering::Relaxed);
        }
    }

    /// A plain-data copy for rendering.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            micros: Phase::ALL.map(|p| self.micros(p)),
            calls: Phase::ALL.map(|p| self.calls(p)),
        }
    }
}

/// A plain-data copy of [`PhaseTimes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Microseconds per phase, indexed like [`Phase::ALL`].
    pub micros: [u64; Phase::COUNT],
    /// Span counts per phase, indexed like [`Phase::ALL`].
    pub calls: [u64; Phase::COUNT],
}

impl PhaseSnapshot {
    /// `{"fused_scan": µs, "parse": µs, …}` — every phase present, sorted
    /// keys (the [`Value`] object representation guarantees the order).
    pub fn to_json(&self) -> Value {
        Value::Object(
            Phase::ALL
                .iter()
                .map(|p| (p.name().to_owned(), Value::from(self.micros[p.index()])))
                .collect(),
        )
    }

    /// Total microseconds across all phases.
    pub fn total_micros(&self) -> u64 {
        self.micros.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_indices_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::FusedScan.name(), "fused_scan");
    }

    #[test]
    fn spans_accumulate() {
        let t = PhaseTimes::new();
        t.add_micros(Phase::Parse, 40);
        t.add_micros(Phase::Parse, 2);
        t.time(Phase::FusedScan, || {});
        assert_eq!(t.micros(Phase::Parse), 42);
        assert_eq!(t.calls(Phase::Parse), 2);
        assert_eq!(t.calls(Phase::FusedScan), 1);
        let s = t.snapshot();
        assert_eq!(s.micros[Phase::Parse.index()], 42);
        let text = s.to_json().to_string();
        assert!(text.contains("\"parse\":42"), "{text}");
        assert!(text.contains("\"retry_backoff\":0"), "{text}");
    }
}

//! Shared state behind `sweep`'s live progress meter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Job progress counters the campaign runner bumps and a meter thread
/// reads. Lock-free; the meter renders whatever it observes.
#[derive(Debug)]
pub struct Progress {
    total: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    started: Instant,
}

impl Default for Progress {
    fn default() -> Self {
        Progress::new()
    }
}

impl Progress {
    /// A fresh meter with no jobs.
    pub fn new() -> Self {
        Progress {
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Sets the number of jobs this run will execute.
    pub fn set_total(&self, total: u64) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// Records one finished job; `failed` marks failed/errored outcomes.
    pub fn record(&self, failed: bool) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(total, done, failed)` as of now.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.total.load(Ordering::Relaxed),
            self.done.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// One meter line (no newline): `"12/70 jobs  1 failed  ETA 42s"`.
    /// The ETA extrapolates the mean per-job time so far; before the
    /// first job completes there is nothing to extrapolate and the field
    /// shows `ETA ?`.
    pub fn render(&self) -> String {
        let (total, done, failed) = self.counts();
        let eta = if done == 0 || done >= total {
            "?".to_owned()
        } else {
            let per_job = self.started.elapsed().as_secs_f64() / done as f64;
            format!("{:.0}s", per_job * (total - done) as f64)
        };
        let failed_part = if failed > 0 {
            format!("  {failed} failed")
        } else {
            String::new()
        };
        format!("{done}/{total} jobs{failed_part}  ETA {eta}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rendering() {
        let p = Progress::new();
        p.set_total(4);
        p.record(false);
        p.record(true);
        assert_eq!(p.counts(), (4, 2, 1));
        let line = p.render();
        assert!(line.starts_with("2/4 jobs  1 failed  ETA "), "{line}");
        // No failures → no failed segment.
        let q = Progress::new();
        q.set_total(2);
        assert_eq!(q.render(), "0/2 jobs  ETA ?");
    }
}

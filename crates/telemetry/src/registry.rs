//! Named counters and histograms with canonical JSON snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::hist::Histogram;

/// A registry of named counters and histograms.
///
/// Registration takes a lock; the returned [`Arc`] handles do not — a
/// caller registers once at setup and then increments lock-free on the
/// hot path. Snapshots render sorted by name (a `BTreeMap` underneath),
/// so the same set of instruments always serializes to the same shape.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Clones of the
    /// returned handle all feed the same counter.
    pub fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Canonical JSON snapshot:
    /// `{"counters": {name: value, …}, "histograms": {name: {…}, …}}`,
    /// names sorted.
    pub fn snapshot_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, c)| ((*name).to_owned(), Value::from(c.load(Ordering::Relaxed))))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, h)| ((*name).to_owned(), h.snapshot().to_json()))
                .collect(),
        );
        let mut map = BTreeMap::new();
        map.insert("counters".to_owned(), counters);
        map.insert("histograms".to_owned(), histograms);
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_snapshots_sort() {
        let r = Registry::new();
        let a = r.counter("pool/steals");
        let b = r.counter("pool/steals");
        a.fetch_add(2, Ordering::Relaxed);
        b.fetch_add(3, Ordering::Relaxed);
        r.counter("campaign/retries")
            .fetch_add(1, Ordering::Relaxed);
        r.histogram("pool/queue_depth").record(4);
        let json = r.snapshot_json();
        assert_eq!(json["counters"]["pool/steals"], 5u64);
        assert_eq!(json["counters"]["campaign/retries"], 1u64);
        assert_eq!(json["histograms"]["pool/queue_depth"]["count"], 1u64);
        // Sorted names: "campaign/retries" precedes "pool/steals".
        let text = json.to_string();
        assert!(
            text.find("campaign/retries").unwrap() < text.find("pool/steals").unwrap(),
            "{text}"
        );
    }
}

//! Named counters, gauges, and histograms with canonical JSON snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::hist::Histogram;

/// A registry of named counters, gauges, and histograms.
///
/// Registration takes a lock; the returned [`Arc`] handles do not — a
/// caller registers once at setup and then increments lock-free on the
/// hot path. Snapshots render sorted by name (a `BTreeMap` underneath),
/// so the same set of instruments always serializes to the same shape.
///
/// Names are owned strings so dynamically labeled series can be minted
/// at runtime (e.g. `serve/exec_us{kind="verify",outcome="done"}`). A
/// name may carry a Prometheus-style `{label="value",…}` suffix; the
/// JSON snapshot treats the whole string as the key, while the
/// [Prometheus renderer](crate::prometheus) splits family from labels.
///
/// Counters and histograms are monotone; **gauges** are
/// last-write-wins point-in-time values (queue depth, RSS, cache
/// bytes). Gauges are only included in [`Registry::snapshot_json`] when
/// at least one exists, so documents produced by gauge-free producers
/// (the sweep metrics file) keep their historical schema.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Clones of the
    /// returned handle all feed the same counter.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use. A gauge is stored
    /// like a counter but rendered with Prometheus type `gauge`; callers
    /// `store` the current value rather than `fetch_add`ing deltas.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Every counter as `(name, value)`, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Every gauge as `(name, value)`, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.load(Ordering::Relaxed)))
            .collect()
    }

    /// Every histogram as `(name, snapshot)`, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(String, crate::hist::HistogramSnapshot)> {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Canonical JSON snapshot:
    /// `{"counters": {name: value, …}, "histograms": {name: {…}, …}}`,
    /// names sorted. A `"gauges"` object is added only when at least one
    /// gauge has been registered.
    pub fn snapshot_json(&self) -> Value {
        let counters = Value::Object(
            self.counter_values()
                .into_iter()
                .map(|(name, v)| (name, Value::from(v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histogram_snapshots()
                .into_iter()
                .map(|(name, s)| (name, s.to_json()))
                .collect(),
        );
        let gauges = self.gauge_values();
        let mut map = BTreeMap::new();
        map.insert("counters".to_owned(), counters);
        map.insert("histograms".to_owned(), histograms);
        if !gauges.is_empty() {
            map.insert(
                "gauges".to_owned(),
                Value::Object(
                    gauges
                        .into_iter()
                        .map(|(name, v)| (name, Value::from(v)))
                        .collect(),
                ),
            );
        }
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_snapshots_sort() {
        let r = Registry::new();
        let a = r.counter("pool/steals");
        let b = r.counter("pool/steals");
        a.fetch_add(2, Ordering::Relaxed);
        b.fetch_add(3, Ordering::Relaxed);
        r.counter("campaign/retries")
            .fetch_add(1, Ordering::Relaxed);
        r.histogram("pool/queue_depth").record(4);
        let json = r.snapshot_json();
        assert_eq!(json["counters"]["pool/steals"], 5u64);
        assert_eq!(json["counters"]["campaign/retries"], 1u64);
        assert_eq!(json["histograms"]["pool/queue_depth"]["count"], 1u64);
        // Sorted names: "campaign/retries" precedes "pool/steals".
        let text = json.to_string();
        assert!(
            text.find("campaign/retries").unwrap() < text.find("pool/steals").unwrap(),
            "{text}"
        );
    }

    #[test]
    fn gauges_are_absent_until_registered() {
        let r = Registry::new();
        r.counter("a").fetch_add(1, Ordering::Relaxed);
        let Value::Object(map) = r.snapshot_json() else {
            panic!("snapshot is an object");
        };
        assert!(
            !map.contains_key("gauges"),
            "gauge-free registries keep the historical two-section schema"
        );
        r.gauge("serve/rss_bytes").store(42, Ordering::Relaxed);
        assert_eq!(r.snapshot_json()["gauges"]["serve/rss_bytes"], 42u64);
    }

    #[test]
    fn dynamic_labeled_names_are_distinct_series() {
        let r = Registry::new();
        let kind = "verify";
        r.counter(&format!("serve/jobs{{kind=\"{kind}\"}}"))
            .fetch_add(7, Ordering::Relaxed);
        r.counter("serve/jobs{kind=\"sweep\"}")
            .fetch_add(1, Ordering::Relaxed);
        let json = r.snapshot_json();
        assert_eq!(json["counters"]["serve/jobs{kind=\"verify\"}"], 7u64);
        assert_eq!(json["counters"]["serve/jobs{kind=\"sweep\"}"], 1u64);
    }
}

//! Prometheus text exposition (version 0.0.4) for a [`Registry`].
//!
//! The JSON snapshot at `/v1/metrics` is canonical for humans and jq;
//! this module renders the *same* instruments in the line-oriented
//! `text/plain` format Prometheus scrapes, so a stock server can point
//! at `/v1/metrics?format=prometheus` with no exporter sidecar.
//!
//! Mapping rules:
//!
//! * Registry names are slash-namespaced (`cache/hits`). Prometheus
//!   names admit `[a-zA-Z0-9_:]`, so every other byte becomes `_` and
//!   the whole name gains a `selfstab_` prefix: `selfstab_cache_hits`.
//! * A registry name may carry a literal `{label="value",…}` suffix
//!   (e.g. `serve/exec_us{kind="verify",outcome="done"}`); the suffix
//!   passes through verbatim as the series' label set. Callers mint
//!   label values from closed enums (job kinds, outcomes), so no escape
//!   handling is required.
//! * Counters render with the conventional `_total` suffix; gauges
//!   render as-is.
//! * Log2 [`Histogram`]s become cumulative `_bucket`/`_sum`/`_count`
//!   series. Bucket `b ≥ 1` of the histogram holds `[2^(b-1), 2^b)`, so
//!   its inclusive upper bound — the Prometheus `le` — is `2^b - 1`;
//!   bucket 0 holds exactly 0 and gets `le="0"`. Buckets above the
//!   highest non-empty one are elided and a final `le="+Inf"` line
//!   carries the total count, as the format requires.
//!
//! Everything renders sorted (families, then label sets), so two
//! scrapes of a quiescent registry are byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::registry::Registry;

/// Prefix applied to every exposed metric family.
pub const METRIC_PREFIX: &str = "selfstab_";

/// Splits a registry series name into `(family, labels)` where `labels`
/// is the inner `k="v",…` text (empty when the name has no suffix).
fn split_series(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(at) => {
            let inner = name[at..].trim_start_matches('{').trim_end_matches('}');
            (&name[..at], inner)
        }
        None => (name, ""),
    }
}

/// Sanitizes a family name into the Prometheus alphabet and applies the
/// `selfstab_` prefix.
fn family_name(family: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + family.len());
    out.push_str(METRIC_PREFIX);
    for b in family.chars() {
        if b.is_ascii_alphanumeric() || b == '_' || b == ':' {
            out.push(b);
        } else {
            out.push('_');
        }
    }
    out
}

/// The inclusive upper bound (`le`) of log2 bucket `b`, rendered as a
/// decimal string: `0` for bucket 0, `2^b − 1` for `b ≥ 1`.
fn bucket_le(bucket: usize) -> String {
    if bucket == 0 {
        "0".to_owned()
    } else {
        (((1u128 << bucket) - 1) as u64).to_string()
    }
}

/// One `name{labels,extra} value` line; either label part may be empty.
fn series_line(out: &mut String, name: &str, labels: &str, extra: &str, value: u64) {
    let sep = if labels.is_empty() || extra.is_empty() {
        ""
    } else {
        ","
    };
    if labels.is_empty() && extra.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}{sep}{extra}}} {value}");
    }
}

/// Groups `(name, payload)` series by sanitized family, preserving the
/// label suffix of each series.
fn group<T>(series: Vec<(String, T)>) -> BTreeMap<String, Vec<(String, T)>> {
    let mut families: BTreeMap<String, Vec<(String, T)>> = BTreeMap::new();
    for (name, payload) in series {
        let (family, labels) = split_series(&name);
        families
            .entry(family_name(family))
            .or_default()
            .push((labels.to_owned(), payload));
    }
    families
}

/// Renders one histogram family member as cumulative
/// `_bucket`/`_sum`/`_count` lines.
fn render_histogram(out: &mut String, family: &str, labels: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    let mut highest = 0usize;
    let mut per_bucket = [0u64; crate::hist::BUCKET_COUNT];
    for &(floor, n) in &snap.buckets {
        let b = Histogram::bucket_of(floor);
        per_bucket[b] = n;
        highest = highest.max(b);
    }
    let bucket_name = format!("{family}_bucket");
    if snap.count > 0 {
        for (b, &n) in per_bucket.iter().enumerate().take(highest + 1) {
            cumulative += n;
            series_line(
                out,
                &bucket_name,
                labels,
                &format!("le=\"{}\"", bucket_le(b)),
                cumulative,
            );
        }
    }
    // `+Inf` must equal `_count`; under concurrent recording the count
    // cell can lag the buckets, so take the max to keep the series
    // monotone.
    let total = snap.count.max(cumulative);
    series_line(out, &bucket_name, labels, "le=\"+Inf\"", total);
    series_line(out, &format!("{family}_sum"), labels, "", snap.sum);
    series_line(out, &format!("{family}_count"), labels, "", total);
}

/// Renders the registry in the Prometheus text exposition format.
///
/// Output is deterministic for a quiescent registry: families sort by
/// sanitized name, series within a family by label text.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (family, series) in group(registry.counter_values()) {
        let family = format!("{family}_total");
        let _ = writeln!(out, "# TYPE {family} counter");
        for (labels, value) in series {
            series_line(&mut out, &family, &labels, "", value);
        }
    }
    for (family, series) in group(registry.gauge_values()) {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (labels, value) in series {
            series_line(&mut out, &family, &labels, "", value);
        }
    }
    for (family, series) in group(registry.histogram_snapshots()) {
        let _ = writeln!(out, "# TYPE {family} histogram");
        for (labels, snap) in series {
            render_histogram(&mut out, &family, &labels, &snap);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn counters_and_gauges_render_with_types() {
        let r = Registry::new();
        r.counter("cache/hits").fetch_add(3, Ordering::Relaxed);
        r.counter("serve/jobs{kind=\"verify\"}")
            .fetch_add(2, Ordering::Relaxed);
        r.gauge("serve/rss_bytes").store(4096, Ordering::Relaxed);
        let text = render(&r);
        assert!(text.contains("# TYPE selfstab_cache_hits_total counter\n"));
        assert!(text.contains("selfstab_cache_hits_total 3\n"));
        assert!(
            text.contains("selfstab_serve_jobs_total{kind=\"verify\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE selfstab_serve_rss_bytes gauge\n"));
        assert!(text.contains("selfstab_serve_rss_bytes 4096\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = Registry::new();
        let h = r.histogram("serve/exec_us{kind=\"verify\"}");
        for v in [0, 1, 3, 3, 9] {
            h.record(v);
        }
        let text = render(&r);
        assert!(text.contains("# TYPE selfstab_serve_exec_us histogram\n"));
        // Buckets: b0 {0}=1, b1 {1}=1, b2 [2,4)=2, b3 absent, b4 [8,16)=1.
        let want = [
            ("le=\"0\"", 1),
            ("le=\"1\"", 2),
            ("le=\"3\"", 4),
            ("le=\"7\"", 4),
            ("le=\"15\"", 5),
            ("le=\"+Inf\"", 5),
        ];
        for (le, cum) in want {
            let line = format!("selfstab_serve_exec_us_bucket{{kind=\"verify\",{le}}} {cum}\n");
            assert!(text.contains(&line), "missing {line:?} in:\n{text}");
        }
        assert!(text.contains("selfstab_serve_exec_us_sum{kind=\"verify\"} 16\n"));
        assert!(text.contains("selfstab_serve_exec_us_count{kind=\"verify\"} 5\n"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_sum_count() {
        let r = Registry::new();
        let _ = r.histogram("phase_us/parse");
        let text = render(&r);
        assert!(text.contains("selfstab_phase_us_parse_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("selfstab_phase_us_parse_sum 0\n"));
        assert!(text.contains("selfstab_phase_us_parse_count 0\n"));
    }

    #[test]
    fn type_lines_are_unique_per_family() {
        let r = Registry::new();
        // Same family, two label sets, plus an unlabeled sibling that
        // sorts *between* them as raw strings ('{' > 'z').
        r.counter("a/b{k=\"1\"}").fetch_add(1, Ordering::Relaxed);
        r.counter("a/b{k=\"2\"}").fetch_add(1, Ordering::Relaxed);
        r.counter("a/bz").fetch_add(1, Ordering::Relaxed);
        let text = render(&r);
        assert_eq!(
            text.matches("# TYPE selfstab_a_b_total counter").count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE selfstab_a_bz_total counter").count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn u64_max_lands_under_inf_only_when_top_bucket_used() {
        let r = Registry::new();
        let h = r.histogram("x");
        h.record(u64::MAX);
        let text = render(&r);
        // Bucket 64's finite le is 2^64-1 == u64::MAX.
        assert!(
            text.contains(&format!("selfstab_x_bucket{{le=\"{}\"}} 1\n", u64::MAX)),
            "{text}"
        );
        assert!(text.contains("selfstab_x_bucket{le=\"+Inf\"} 1\n"));
    }
}

//! Global state encoding for rings.

use selfstab_protocol::Value;

use crate::error::GlobalError;

/// Identifier of a global state: a dense mixed-radix index.
///
/// A global state of `p(K)` is a valuation of `⟨x_0, …, x_{K-1}⟩`; with
/// domain size `d` there are `d^K` of them. `x_0` is the most significant
/// digit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalStateId(pub u64);

impl GlobalStateId {
    /// The id as a `usize` index (global spaces are bounded well below
    /// `usize::MAX`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GlobalStateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Codec for the global state space of a ring of `K` processes over a
/// domain of size `d`.
///
/// # Examples
///
/// ```
/// use selfstab_global::GlobalSpace;
///
/// let sp = GlobalSpace::new(2, 4, 1 << 20)?;
/// let id = sp.encode(&[1, 0, 0, 1]);
/// assert_eq!(sp.decode(id), vec![1, 0, 0, 1]);
/// assert_eq!(sp.value_at(id, 0), 1);
/// assert_eq!(sp.len(), 16);
/// # Ok::<(), selfstab_global::GlobalError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalSpace {
    domain_size: usize,
    ring_size: usize,
    len: u64,
    /// `weights[i] = d^(K-1-i)`, the significance of position `i` in the
    /// dense id. Precomputed at construction with checked arithmetic so the
    /// per-digit accessors never evaluate `pow` (and never wrap: every
    /// weight divides `len`, which `new` proves fits in `u64`).
    weights: Vec<u64>,
}

impl GlobalSpace {
    /// Creates the codec, refusing spaces larger than `max_states`.
    ///
    /// All positional weights `d^(K-1-i)` are precomputed here under the
    /// same checked arithmetic that bounds `len`, so id packing and
    /// unpacking can never silently wrap no matter how large `d^K` is —
    /// oversized spaces are rejected up front instead.
    ///
    /// # Errors
    ///
    /// [`GlobalError::EmptyRing`] if `ring_size == 0`;
    /// [`GlobalError::StateSpaceTooLarge`] if `d^K > max_states` (or `d^K`
    /// does not fit in `u64` at all).
    pub fn new(domain_size: usize, ring_size: usize, max_states: u64) -> Result<Self, GlobalError> {
        if ring_size == 0 {
            return Err(GlobalError::EmptyRing);
        }
        let too_large = || GlobalError::StateSpaceTooLarge {
            domain_size,
            ring_size,
            limit: max_states,
        };
        let mut weights = vec![1u64; ring_size];
        let mut len: u64 = 1;
        for i in (0..ring_size).rev() {
            weights[i] = len;
            len = len
                .checked_mul(domain_size as u64)
                .filter(|&l| l <= max_states)
                .ok_or_else(too_large)?;
        }
        Ok(GlobalSpace {
            domain_size,
            ring_size,
            len,
            weights,
        })
    }

    /// Number of global states (`d^K`).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the space is empty (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ring size `K`.
    pub fn ring_size(&self) -> usize {
        self.ring_size
    }

    /// The domain size `d`.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Encodes a configuration `⟨x_0, …, x_{K-1}⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from `K` or a value is out of
    /// domain.
    pub fn encode(&self, values: &[Value]) -> GlobalStateId {
        assert_eq!(values.len(), self.ring_size, "ring size mismatch");
        let mut id: u64 = 0;
        for &v in values {
            assert!((v as usize) < self.domain_size, "value {v} out of domain");
            id = id * self.domain_size as u64 + v as u64;
        }
        GlobalStateId(id)
    }

    /// Decodes a global state into its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn decode(&self, id: GlobalStateId) -> Vec<Value> {
        assert!(id.0 < self.len, "global state id out of range");
        let mut values = vec![0; self.ring_size];
        let mut rest = id.0;
        for slot in values.iter_mut().rev() {
            *slot = (rest % self.domain_size as u64) as Value;
            rest /= self.domain_size as u64;
        }
        values
    }

    /// The value of `x_i` in `id` (no allocation). The index is taken
    /// modulo `K`, which implements the ring's wrap-around.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value_at(&self, id: GlobalStateId, i: isize) -> Value {
        assert!(id.0 < self.len, "global state id out of range");
        let i = i.rem_euclid(self.ring_size as isize) as usize;
        ((id.0 / self.weights[i]) % self.domain_size as u64) as Value
    }

    /// Returns `id` with `x_i := v` (index modulo `K`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of domain or `id` out of range.
    pub fn with_value(&self, id: GlobalStateId, i: isize, v: Value) -> GlobalStateId {
        assert!((v as usize) < self.domain_size, "value {v} out of domain");
        let i = i.rem_euclid(self.ring_size as isize) as usize;
        let old = self.value_at(id, i as isize);
        let weight = self.weights[i];
        GlobalStateId(id.0 - old as u64 * weight + v as u64 * weight)
    }

    /// The positional weight `d^(K-1-i)` of ring position `i` in the dense
    /// id encoding (precomputed; see [`GlobalSpace::new`]).
    pub(crate) fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// Iterates over every global state.
    pub fn ids(&self) -> impl Iterator<Item = GlobalStateId> {
        (0..self.len).map(GlobalStateId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sp = GlobalSpace::new(3, 5, 1 << 20).unwrap();
        for id in sp.ids() {
            assert_eq!(sp.encode(&sp.decode(id)), id);
        }
    }

    #[test]
    fn value_access_and_wraparound() {
        let sp = GlobalSpace::new(2, 4, 1 << 20).unwrap();
        let id = sp.encode(&[1, 0, 0, 1]);
        assert_eq!(sp.value_at(id, 0), 1);
        assert_eq!(sp.value_at(id, 3), 1);
        assert_eq!(sp.value_at(id, -1), 1); // wraps to x_3
        assert_eq!(sp.value_at(id, 4), 1); // wraps to x_0
        assert_eq!(sp.value_at(id, 5), 0);
    }

    #[test]
    fn with_value_point_update() {
        let sp = GlobalSpace::new(3, 3, 1 << 20).unwrap();
        let id = sp.encode(&[2, 1, 0]);
        let id2 = sp.with_value(id, 1, 2);
        assert_eq!(sp.decode(id2), vec![2, 2, 0]);
        let id3 = sp.with_value(id, -1, 1);
        assert_eq!(sp.decode(id3), vec![2, 1, 1]);
    }

    #[test]
    fn limit_enforced() {
        let e = GlobalSpace::new(3, 40, 1 << 26).unwrap_err();
        assert!(matches!(e, GlobalError::StateSpaceTooLarge { .. }));
        assert!(GlobalSpace::new(2, 26, 1 << 26).is_ok());
        assert!(GlobalSpace::new(2, 27, 1 << 26).is_err());
    }

    #[test]
    fn u64_boundary_is_an_error_not_a_wrap() {
        // 2^63 states fit in u64; 2^64 must surface the capacity error
        // instead of wrapping the id arithmetic.
        let sp = GlobalSpace::new(2, 63, u64::MAX).unwrap();
        assert_eq!(sp.len(), 1u64 << 63);
        let e = GlobalSpace::new(2, 64, u64::MAX).unwrap_err();
        assert!(matches!(e, GlobalError::StateSpaceTooLarge { .. }));
        // 3^40 < 2^64 < 3^41.
        assert!(GlobalSpace::new(3, 40, u64::MAX).is_ok());
        assert!(GlobalSpace::new(3, 41, u64::MAX).is_err());

        // Digit accessors stay exact at the top of the id range: the most
        // significant weight is 2^62, which the old `pow`-per-access
        // formulation computed on every call.
        let top = GlobalStateId(sp.len() - 1); // all digits 1
        assert_eq!(sp.value_at(top, 0), 1);
        assert_eq!(sp.value_at(top, 62), 1);
        let cleared = sp.with_value(top, 0, 0);
        assert_eq!(cleared.0, (1u64 << 63) - 1 - (1u64 << 62));
        assert_eq!(sp.value_at(cleared, 0), 0);
        assert_eq!(sp.with_value(cleared, 0, 1), top);
    }

    #[test]
    fn unit_domain_weights_are_degenerate_but_exact() {
        // d=1 gives a single state and all-zero digits at any K.
        let sp = GlobalSpace::new(1, 17, 1 << 20).unwrap();
        assert_eq!(sp.len(), 1);
        let only = GlobalStateId(0);
        for i in 0..17 {
            assert_eq!(sp.value_at(only, i as isize), 0);
        }
        assert_eq!(sp.with_value(only, 5, 0), only);
    }

    #[test]
    fn zero_ring_rejected() {
        assert_eq!(
            GlobalSpace::new(2, 0, 100).unwrap_err(),
            GlobalError::EmptyRing
        );
    }
}

//! Rotation symmetry of ring configurations: necklace canonicalization and
//! orbit arithmetic for the reduced engine mode.
//!
//! A ring protocol whose processes all run the same code is invariant under
//! rotation: the configuration `⟨x_0, …, x_{K-1}⟩` behaves exactly like
//! `⟨x_1, …, x_{K-1}, x_0⟩`. Legitimacy, deadlock and closure are therefore
//! properties of the rotation *orbit*, and the engine only needs to examine
//! one representative per orbit — a **necklace**, the lexicographically
//! least rotation, which in the dense id encoding (`x_0` most significant)
//! is also the orbit's minimal id. The effective space shrinks from `d^K`
//! to the necklace count `~d^K / K`.
//!
//! Three pieces live here:
//!
//! * [`for_each_necklace`] — the FKM (Fredricksen–Kessler–Maiorana)
//!   generator: every necklace of length `K` over `d` symbols, in ascending
//!   lexicographic (= dense id) order, in constant amortized time per
//!   necklace, together with its minimal rotation **period** `p`. The
//!   orbit of a necklace has exactly `p` members (`p` divides `K`), so
//!   counts lift from representatives to the full space by multiplying
//!   with `p` — no per-orbit memo table is needed because the generator
//!   hands the class size out for free;
//! * [`min_rotation`] — Booth's `O(K)` minimal-rotation index, used by the
//!   reduced livelock search to canonicalize DFS successors;
//! * [`rotate_id_left`] — one rotation step directly in id space in `O(1)`
//!   (two divisions), used to expand a representative's orbit when the
//!   reduced scan rebuilds full-space artifacts (the legitimacy bitmap and
//!   the deadlock list) without decoding anything.

use selfstab_protocol::Value;

use crate::state::{GlobalSpace, GlobalStateId};

/// The index `r` of the lexicographically least rotation of `digits`:
/// `⟨digits[r], digits[r+1 mod K], …⟩` is minimal among all `K` rotations
/// (Booth's algorithm, `O(K)` time, one `O(K)` scratch allocation).
///
/// Ties — which exist exactly when the string is periodic — resolve to the
/// smallest such `r`, so the result is deterministic.
///
/// # Examples
///
/// ```
/// use selfstab_global::symmetry::min_rotation;
///
/// assert_eq!(min_rotation(&[2, 0, 1]), 1); // ⟨0,1,2⟩ is minimal
/// assert_eq!(min_rotation(&[1, 1, 1]), 0); // periodic: first of the ties
/// assert_eq!(min_rotation(&[0, 1, 0, 0]), 2); // ⟨0,0,0,1⟩
/// ```
pub fn min_rotation(digits: &[Value]) -> usize {
    let n = digits.len();
    if n <= 1 {
        return 0;
    }
    // Booth's least-rotation over the doubled string, with the classic
    // failure function `f` (usize::MAX standing in for −1).
    const NIL: usize = usize::MAX;
    let at = |i: usize| digits[if i < n { i } else { i - n }];
    let mut f = vec![NIL; 2 * n];
    let mut k = 0usize;
    for j in 1..2 * n {
        let sj = at(j);
        let mut i = f[j - k - 1];
        while i != NIL && sj != at(k + i + 1) {
            if sj < at(k + i + 1) {
                k = j - i - 1;
            }
            i = f[i];
        }
        if i == NIL && sj != at(k) {
            if sj < at(k) {
                k = j;
            }
            f[j - k] = NIL;
        } else if i == NIL {
            f[j - k] = 0;
        } else {
            f[j - k] = i + 1;
        }
    }
    k
}

/// The canonical (minimal-id) member of the rotation orbit of the
/// configuration in `digits`, encoded against `space`.
///
/// # Panics
///
/// Panics if `digits.len() != space.ring_size()`.
pub fn canonical_id(space: &GlobalSpace, digits: &[Value]) -> GlobalStateId {
    let k = space.ring_size();
    assert_eq!(digits.len(), k, "ring size mismatch");
    let r = min_rotation(digits);
    let mut id: u64 = 0;
    for t in 0..k {
        let p = if r + t < k { r + t } else { r + t - k };
        id += digits[p] as u64 * space.weight(t);
    }
    GlobalStateId(id)
}

/// Rotates a configuration one step left in id space:
/// `⟨x_0, x_1, …, x_{K-1}⟩ ↦ ⟨x_1, …, x_{K-1}, x_0⟩`, computed as
/// `(id mod d^(K-1)) · d + id / d^(K-1)` — `O(1)`, no decode.
///
/// Applying this `K` times returns the original id; a necklace's orbit is
/// exactly the first `p` iterates, where `p` is its minimal period.
pub fn rotate_id_left(space: &GlobalSpace, id: GlobalStateId) -> GlobalStateId {
    let top = space.weight(0); // d^(K-1)
    GlobalStateId((id.0 % top) * space.domain_size() as u64 + id.0 / top)
}

/// Calls `visit(digits, period)` for every necklace of length
/// `ring_size` over the alphabet `0..domain_size`, in ascending
/// lexicographic order — which is ascending dense-id order under
/// [`GlobalSpace`]'s encoding. `period` is the minimal rotation period of
/// the necklace, i.e. the size of its rotation orbit; summed over all
/// necklaces the periods total `d^K` exactly.
///
/// Enumeration stops early when `visit` returns `false`; the function
/// returns `false` in that case and `true` on a complete enumeration.
///
/// This is the recursive FKM generator (Fredricksen–Kessler–Maiorana; see
/// also Ruskey & Sawada's CAT analysis): constant amortized time per
/// necklace, recursion depth `K`, one `K + 1` digit buffer.
///
/// # Examples
///
/// The six binary necklaces of length 4 — `0000, 0001, 0011, 0101, 0111,
/// 1111` — with orbit sizes summing to `2^4`:
///
/// ```
/// use selfstab_global::symmetry::for_each_necklace;
///
/// let mut seen = Vec::new();
/// for_each_necklace(2, 4, &mut |digits, period| {
///     seen.push((digits.to_vec(), period));
///     true
/// });
/// assert_eq!(seen.len(), 6);
/// assert_eq!(seen[1], (vec![0, 0, 0, 1], 4));
/// assert_eq!(seen[3], (vec![0, 1, 0, 1], 2));
/// assert_eq!(seen.iter().map(|(_, p)| p).sum::<usize>(), 16);
/// ```
pub fn for_each_necklace(
    domain_size: usize,
    ring_size: usize,
    visit: &mut impl FnMut(&[Value], usize) -> bool,
) -> bool {
    assert!(ring_size > 0, "rings are non-empty");
    if domain_size == 0 {
        return true; // empty alphabet: no configurations at all
    }
    // `a[0]` is the FKM sentinel; the necklace lives in `a[1..=K]`.
    let mut a = vec![0 as Value; ring_size + 1];
    fkm(&mut a, domain_size as Value, ring_size, 1, 1, visit)
}

/// FKM recursion: extend position `t` given current longest Lyndon-prefix
/// length `p`; emit at `t > n` when the word is `p`-periodic. Returns
/// `false` to unwind an early stop.
fn fkm(
    a: &mut [Value],
    d: Value,
    n: usize,
    t: usize,
    p: usize,
    visit: &mut impl FnMut(&[Value], usize) -> bool,
) -> bool {
    if t > n {
        return !n.is_multiple_of(p) || visit(&a[1..=n], p);
    }
    a[t] = a[t - p];
    if !fkm(a, d, n, t + 1, p, visit) {
        return false;
    }
    for v in (a[t - p] + 1)..d {
        a[t] = v;
        if !fkm(a, d, n, t + 1, t, visit) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(d: usize, k: usize) -> GlobalSpace {
        GlobalSpace::new(d, k, 1 << 26).unwrap()
    }

    /// Reference canonicalizer: decode all rotations, take the min.
    fn naive_canonical(sp: &GlobalSpace, id: GlobalStateId) -> GlobalStateId {
        let mut best = id;
        let mut cur = id;
        for _ in 1..sp.ring_size() {
            cur = rotate_id_left(sp, cur);
            best = best.min(cur);
        }
        best
    }

    #[test]
    fn rotate_id_matches_decode_rotate_encode() {
        let sp = space(3, 5);
        for id in sp.ids() {
            let mut digits = sp.decode(id);
            digits.rotate_left(1);
            assert_eq!(rotate_id_left(&sp, id), sp.encode(&digits), "{id}");
        }
    }

    #[test]
    fn canonical_id_is_orbit_minimum() {
        for (d, k) in [(2, 1), (2, 7), (3, 5), (4, 4)] {
            let sp = space(d, k);
            for id in sp.ids() {
                let digits = sp.decode(id);
                assert_eq!(
                    canonical_id(&sp, &digits),
                    naive_canonical(&sp, id),
                    "d={d} K={k} id={id}"
                );
            }
        }
    }

    #[test]
    fn booth_handles_periodic_and_degenerate_inputs() {
        assert_eq!(min_rotation(&[]), 0);
        assert_eq!(min_rotation(&[5]), 0);
        assert_eq!(min_rotation(&[0, 0, 0, 0]), 0);
        assert_eq!(min_rotation(&[1, 0, 1, 0]), 1);
        assert_eq!(min_rotation(&[2, 1, 0, 2, 1, 0]), 2);
    }

    #[test]
    fn necklaces_partition_the_space() {
        for (d, k) in [(1, 6), (2, 1), (2, 8), (3, 5), (5, 3)] {
            let sp = space(d, k);
            let mut total = 0usize;
            let mut last: Option<GlobalStateId> = None;
            let mut members = vec![false; sp.len() as usize];
            assert!(for_each_necklace(d, k, &mut |digits, p| {
                let id = sp.encode(digits);
                // Each necklace is canonical, periods are exact, and the
                // enumeration ascends in id order.
                assert_eq!(canonical_id(&sp, digits), id, "d={d} K={k}");
                assert_eq!(k % p, 0, "period divides K");
                assert!(last.is_none_or(|prev| prev < id), "ascending order");
                last = Some(id);
                let mut cur = id;
                for step in 0..p {
                    assert!(!members[cur.index()], "orbit overlap at step {step}");
                    members[cur.index()] = true;
                    cur = rotate_id_left(&sp, cur);
                }
                assert_eq!(cur, id, "orbit closes after exactly p rotations");
                total += p;
                true
            }));
            assert_eq!(total as u64, sp.len(), "orbits partition d^K (d={d} K={k})");
            assert!(members.iter().all(|&m| m));
        }
    }

    #[test]
    fn enumeration_stops_on_false() {
        let mut seen = 0;
        assert!(!for_each_necklace(2, 6, &mut |_, _| {
            seen += 1;
            seen < 3
        }));
        assert_eq!(seen, 3);
    }
}

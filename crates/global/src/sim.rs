//! Random simulation of ring instances: convergence runs and transient
//! fault injection.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::instance::{Move, RingInstance};
use crate::state::GlobalStateId;

/// How the simulator picks among enabled moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Pick a uniformly random enabled move each step (an unfair
    /// nondeterministic daemon).
    Random,
    /// Rotate over processes, executing the next enabled one (a fair,
    /// round-robin daemon).
    RoundRobin,
}

/// The outcome of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimOutcome {
    /// `true` if a state of `I(K)` was reached within the step budget.
    pub converged: bool,
    /// Steps executed until convergence (or until stopping).
    pub steps: usize,
    /// The state the run ended in.
    pub final_state: GlobalStateId,
}

/// Aggregate convergence statistics over many runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConvergenceStats {
    /// Number of runs that converged.
    pub converged: usize,
    /// Number of runs that did not (deadlock outside `I` or step budget).
    pub failed: usize,
    /// Mean steps to convergence among converged runs.
    pub mean_steps: f64,
    /// Maximum steps to convergence among converged runs.
    pub max_steps: usize,
}

/// A seeded simulator over a ring instance.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_global::{RingInstance, Simulator, Scheduler};
///
/// let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// let ring = RingInstance::symmetric(&p, 6)?;
/// let mut sim = Simulator::new(&ring, 42).with_scheduler(Scheduler::Random);
/// let start = sim.random_state();
/// let out = sim.run_from(start, 10_000);
/// assert!(out.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    ring: &'a RingInstance,
    rng: StdRng,
    scheduler: Scheduler,
    rr_next: usize,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with a deterministic seed.
    pub fn new(ring: &'a RingInstance, seed: u64) -> Self {
        Simulator {
            ring,
            rng: StdRng::seed_from_u64(seed),
            scheduler: Scheduler::Random,
            rr_next: 0,
        }
    }

    /// Selects the scheduling policy (defaults to [`Scheduler::Random`]).
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Samples a uniformly random global state (a transient-fault outcome:
    /// the adversary may set every variable arbitrarily).
    pub fn random_state(&mut self) -> GlobalStateId {
        GlobalStateId(self.rng.gen_range(0..self.ring.space().len()))
    }

    /// Injects a transient fault: corrupts `vars` distinct variables of
    /// `state` to random (changed) values.
    pub fn perturb(&mut self, state: GlobalStateId, vars: usize) -> GlobalStateId {
        let k = self.ring.ring_size();
        let d = self.ring.space().domain_size();
        let mut indices: Vec<usize> = (0..k).collect();
        indices.shuffle(&mut self.rng);
        let mut s = state;
        for &i in indices.iter().take(vars.min(k)) {
            if d < 2 {
                break;
            }
            let cur = self.ring.space().value_at(s, i as isize);
            let mut v = self.rng.gen_range(0..d as u8);
            while v == cur {
                v = self.rng.gen_range(0..d as u8);
            }
            s = self.ring.space().with_value(s, i as isize, v);
        }
        s
    }

    fn pick_move(&mut self, s: GlobalStateId) -> Option<Move> {
        match self.scheduler {
            Scheduler::Random => {
                // Reservoir-free uniform pick without materializing the
                // move list: count enabled moves, then walk to the chosen
                // one (targets_of is a cheap table lookup per process).
                let k = self.ring.ring_size();
                let total: usize = (0..k).map(|i| self.ring.targets_of(s, i).len()).sum();
                if total == 0 {
                    return None;
                }
                let mut pick = self.rng.gen_range(0..total);
                for i in 0..k {
                    let targets = self.ring.targets_of(s, i);
                    if pick < targets.len() {
                        return Some(Move {
                            process: i,
                            target: targets[pick],
                        });
                    }
                    pick -= targets.len();
                }
                unreachable!("pick is bounded by the move count")
            }
            Scheduler::RoundRobin => {
                let k = self.ring.ring_size();
                for step in 0..k {
                    let i = (self.rr_next + step) % k;
                    let targets = self.ring.targets_of(s, i);
                    if let Some(&t) = targets.first() {
                        self.rr_next = (i + 1) % k;
                        return Some(Move {
                            process: i,
                            target: t,
                        });
                    }
                }
                None
            }
        }
    }

    /// Runs from `start` until a legitimate state, a deadlock, or
    /// `max_steps`.
    pub fn run_from(&mut self, start: GlobalStateId, max_steps: usize) -> SimOutcome {
        let mut s = start;
        for steps in 0..=max_steps {
            if self.ring.is_legit(s) {
                return SimOutcome {
                    converged: true,
                    steps,
                    final_state: s,
                };
            }
            match self.pick_move(s) {
                Some(m) => s = self.ring.apply(s, m),
                None => {
                    return SimOutcome {
                        converged: false,
                        steps,
                        final_state: s,
                    }
                }
            }
        }
        SimOutcome {
            converged: false,
            steps: max_steps,
            final_state: s,
        }
    }

    /// Runs `trials` random-start runs and aggregates convergence
    /// statistics.
    pub fn convergence_stats(&mut self, trials: usize, max_steps: usize) -> ConvergenceStats {
        let mut stats = ConvergenceStats::default();
        let mut total = 0usize;
        for _ in 0..trials {
            let start = self.random_state();
            let out = self.run_from(start, max_steps);
            if out.converged {
                stats.converged += 1;
                total += out.steps;
                stats.max_steps = stats.max_steps.max(out.steps);
            } else {
                stats.failed += 1;
            }
        }
        if stats.converged > 0 {
            stats.mean_steps = total as f64 / stats.converged as f64;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn converging() -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn converging_protocol_always_converges() {
        let p = converging();
        let ring = RingInstance::symmetric(&p, 7).unwrap();
        let mut sim = Simulator::new(&ring, 7);
        let stats = sim.convergence_stats(50, 10_000);
        assert_eq!(stats.failed, 0);
        assert!(stats.max_steps <= 7 * 7);
    }

    #[test]
    fn round_robin_is_deterministic_per_seed() {
        let p = converging();
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        let start = ring.space().encode(&[1, 0, 1, 0, 0]);
        let a = Simulator::new(&ring, 1)
            .with_scheduler(Scheduler::RoundRobin)
            .run_from(start, 1000);
        let b = Simulator::new(&ring, 99)
            .with_scheduler(Scheduler::RoundRobin)
            .run_from(start, 1000);
        // Round-robin ignores the rng: identical outcomes.
        assert_eq!(a, b);
        assert!(a.converged);
    }

    #[test]
    fn empty_protocol_fails_to_converge() {
        let p = Protocol::builder("none", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let mut sim = Simulator::new(&ring, 3);
        let bad = ring.space().encode(&[1, 0, 0, 0]);
        let out = sim.run_from(bad, 100);
        assert!(!out.converged);
        assert_eq!(out.steps, 0);
        assert_eq!(out.final_state, bad);
    }

    #[test]
    fn perturb_changes_exactly_n_variables() {
        let p = converging();
        let ring = RingInstance::symmetric(&p, 8).unwrap();
        let mut sim = Simulator::new(&ring, 11);
        let s = ring.space().encode(&[0; 8]);
        for n in 0..=8 {
            let s2 = sim.perturb(s, n);
            let diff = (0..8)
                .filter(|&i| {
                    ring.space().value_at(s, i as isize) != ring.space().value_at(s2, i as isize)
                })
                .count();
            assert_eq!(diff, n);
        }
    }

    #[test]
    fn run_from_legit_state_is_zero_steps() {
        let p = converging();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let mut sim = Simulator::new(&ring, 5);
        let s = ring.space().encode(&[1, 1, 1, 1]);
        let out = sim.run_from(s, 10);
        assert!(out.converged);
        assert_eq!(out.steps, 0);
    }
}

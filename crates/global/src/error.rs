//! Errors of the global-analysis crate.

use std::fmt;

/// Errors produced while instantiating or exploring global state spaces.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GlobalError {
    /// The global state space `d^K` exceeds the configured bound.
    StateSpaceTooLarge {
        /// Domain size.
        domain_size: usize,
        /// Ring size.
        ring_size: usize,
        /// The configured maximum number of states.
        limit: u64,
    },
    /// Instantiation was asked for a ring of size zero.
    EmptyRing,
    /// Per-process behaviors disagree on domain or locality.
    Heterogeneous {
        /// Description of the mismatch.
        message: String,
    },
    /// A schedule replay failed: a move was not enabled.
    ReplayDisabled {
        /// Index of the failing move in the schedule.
        step: usize,
        /// Process the move belongs to.
        process: usize,
    },
}

impl fmt::Display for GlobalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalError::StateSpaceTooLarge {
                domain_size,
                ring_size,
                limit,
            } => write!(
                f,
                "global state space {domain_size}^{ring_size} exceeds the limit of {limit} states"
            ),
            GlobalError::EmptyRing => write!(f, "ring size must be at least 1"),
            GlobalError::Heterogeneous { message } => {
                write!(f, "heterogeneous ring instantiation: {message}")
            }
            GlobalError::ReplayDisabled { step, process } => write!(
                f,
                "schedule replay failed: move {step} of process {process} is not enabled"
            ),
        }
    }
}

impl std::error::Error for GlobalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = GlobalError::StateSpaceTooLarge {
            domain_size: 3,
            ring_size: 40,
            limit: 1 << 26,
        };
        assert!(e.to_string().contains("3^40"));
        assert!(GlobalError::EmptyRing.to_string().contains("at least 1"));
    }
}

//! Instantiation of a parameterized protocol on a concrete ring.

use selfstab_protocol::{LocalPredicate, LocalStateId, LocalStateSpace, Locality, Protocol, Value};

use crate::error::GlobalError;
use crate::state::{GlobalSpace, GlobalStateId};

/// Default bound on the number of global states an instance may have.
pub const DEFAULT_MAX_STATES: u64 = 1 << 26;

/// Class bit: the local state satisfies the process's legitimate predicate.
pub(crate) const CLS_LEGIT: u8 = 1;
/// Class bit: the local state has at least one outgoing transition.
pub(crate) const CLS_ENABLED: u8 = 2;

/// A move of the global transition system: process `process` writes
/// `target` to its variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Move {
    /// The executing process index (`0..K`).
    pub process: usize,
    /// The value written to `x_process`.
    pub target: Value,
}

/// A protocol instantiated on a ring of `K` processes.
///
/// Holds per-process local transition tables and local legitimate
/// predicates; symmetric instances share one table. Window reads wrap
/// around the ring, so instances smaller than the read window behave
/// consistently (the same global variable is simply read at several window
/// positions).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_global::RingInstance;
///
/// let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// let ring = RingInstance::symmetric(&p, 5)?;
/// let s = ring.space().encode(&[1, 0, 0, 0, 0]);
/// let moves = ring.moves_from(s);
/// assert_eq!(moves.len(), 1);     // only P_1 is enabled
/// assert_eq!(moves[0].process, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RingInstance {
    space: GlobalSpace,
    locality: Locality,
    local_space: LocalStateSpace,
    /// `table_of[i]` selects the table/legit pair of process `i`.
    table_of: Vec<usize>,
    /// Transition tables: `tables[t][local_state] = targets`.
    tables: Vec<Vec<Vec<Value>>>,
    /// Memoized classification, parallel to `tables`:
    /// `classes[t][local_state]` is a [`CLS_LEGIT`] | [`CLS_ENABLED`]
    /// bit set, so legitimacy and enabledness are table lookups.
    classes: Vec<Vec<u8>>,
}

fn classify(tables: &[Vec<Vec<Value>>], legits: &[LocalPredicate]) -> Vec<Vec<u8>> {
    tables
        .iter()
        .zip(legits)
        .map(|(table, legit)| {
            table
                .iter()
                .enumerate()
                .map(|(ls, targets)| {
                    let mut c = 0;
                    if legit.holds(LocalStateId(ls as u32)) {
                        c |= CLS_LEGIT;
                    }
                    if !targets.is_empty() {
                        c |= CLS_ENABLED;
                    }
                    c
                })
                .collect()
        })
        .collect()
}

impl RingInstance {
    /// Instantiates a symmetric ring of `k` copies of `protocol`.
    ///
    /// # Errors
    ///
    /// Returns [`GlobalError`] if `k == 0` or the state space exceeds
    /// [`DEFAULT_MAX_STATES`].
    pub fn symmetric(protocol: &Protocol, k: usize) -> Result<Self, GlobalError> {
        Self::symmetric_with_limit(protocol, k, DEFAULT_MAX_STATES)
    }

    /// Like [`RingInstance::symmetric`] with an explicit state bound.
    ///
    /// # Errors
    ///
    /// Returns [`GlobalError`] if `k == 0` or `d^k > max_states`.
    pub fn symmetric_with_limit(
        protocol: &Protocol,
        k: usize,
        max_states: u64,
    ) -> Result<Self, GlobalError> {
        let space = GlobalSpace::new(protocol.domain().size(), k, max_states)?;
        let tables = vec![table_of_protocol(protocol)];
        let legits = vec![protocol.legit().clone()];
        let classes = classify(&tables, &legits);
        Ok(RingInstance {
            space,
            locality: protocol.locality(),
            local_space: *protocol.space(),
            table_of: vec![0; k],
            tables,
            classes,
        })
    }

    /// Instantiates a ring with per-process behaviors (`processes[i]` is the
    /// behavior of `P_i`). All processes must share the same domain size and
    /// locality; legitimate predicates may differ (e.g. Dijkstra's token
    /// ring, where the distinguished `P_0` behaves differently).
    ///
    /// # Errors
    ///
    /// Returns [`GlobalError::Heterogeneous`] on domain/locality mismatch,
    /// [`GlobalError::EmptyRing`] for an empty list, or
    /// [`GlobalError::StateSpaceTooLarge`].
    pub fn heterogeneous(processes: &[&Protocol], max_states: u64) -> Result<Self, GlobalError> {
        let first = *processes.first().ok_or(GlobalError::EmptyRing)?;
        for (i, p) in processes.iter().enumerate() {
            if p.domain().size() != first.domain().size() {
                return Err(GlobalError::Heterogeneous {
                    message: format!("process {i} has a different domain size"),
                });
            }
            if p.locality() != first.locality() {
                return Err(GlobalError::Heterogeneous {
                    message: format!("process {i} has a different locality"),
                });
            }
        }
        let space = GlobalSpace::new(first.domain().size(), processes.len(), max_states)?;
        let tables: Vec<_> = processes.iter().map(|p| table_of_protocol(p)).collect();
        let legits: Vec<_> = processes.iter().map(|p| p.legit().clone()).collect();
        let classes = classify(&tables, &legits);
        Ok(RingInstance {
            space,
            locality: first.locality(),
            local_space: *first.space(),
            table_of: (0..processes.len()).collect(),
            tables,
            classes,
        })
    }

    /// The global state codec.
    pub fn space(&self) -> &GlobalSpace {
        &self.space
    }

    /// The ring size `K`.
    pub fn ring_size(&self) -> usize {
        self.space.ring_size()
    }

    /// The shared read locality.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// The local state codec of the representative process.
    pub fn local_space(&self) -> &LocalStateSpace {
        &self.local_space
    }

    /// The local state of process `i` in global state `gid`: its read window
    /// assembled with ring wrap-around.
    ///
    /// This is the innermost operation of every global analysis, so the
    /// window is encoded digit-by-digit without an intermediate buffer.
    pub fn local_state_of(&self, gid: GlobalStateId, i: usize) -> LocalStateId {
        let loc = self.locality;
        let d = self.space.domain_size() as u32;
        let mut id: u32 = 0;
        for idx in 0..loc.window_width() {
            let off = loc.offset_of(idx);
            id = id * d + self.space.value_at(gid, i as isize + off) as u32;
        }
        LocalStateId(id)
    }

    /// The values process `i` may write from global state `gid`.
    pub fn targets_of(&self, gid: GlobalStateId, i: usize) -> &[Value] {
        let ls = self.local_state_of(gid, i);
        &self.tables[self.table_of[i]][ls.index()]
    }

    /// Visits every enabled move in `gid`, in (process, target) order,
    /// without allocating.
    pub fn for_each_move<F: FnMut(Move)>(&self, gid: GlobalStateId, mut f: F) {
        for i in 0..self.ring_size() {
            for &t in self.targets_of(gid, i) {
                f(Move {
                    process: i,
                    target: t,
                });
            }
        }
    }

    /// All enabled moves in `gid`, in (process, target) order.
    pub fn moves_from(&self, gid: GlobalStateId) -> Vec<Move> {
        let mut moves = Vec::new();
        self.for_each_move(gid, |m| moves.push(m));
        moves
    }

    /// The classification bits of process `i`'s local state in `gid`.
    pub(crate) fn class_of(&self, gid: GlobalStateId, i: usize) -> u8 {
        self.classes[self.table_of[i]][self.local_state_of(gid, i).index()]
    }

    /// The classification bits of local state `ls` under table `t`
    /// (engine-internal: avoids re-deriving the window).
    pub(crate) fn class_by_table(&self, t: usize, ls: LocalStateId) -> u8 {
        self.classes[t][ls.index()]
    }

    /// The transition targets of local state `ls` under table `t`.
    pub(crate) fn targets_by_table(&self, t: usize, ls: LocalStateId) -> &[Value] {
        &self.tables[t][ls.index()]
    }

    /// The table index of process `i`.
    pub(crate) fn table_index(&self, i: usize) -> usize {
        self.table_of[i]
    }

    /// `true` when every process runs the same behavior, making the
    /// instance invariant under ring rotation — the precondition for the
    /// symmetry-reduced engine mode. Heterogeneous rings (e.g. Dijkstra's
    /// token ring with its distinguished process) are not.
    pub fn is_rotation_symmetric(&self) -> bool {
        self.table_of.iter().all(|&t| t == self.table_of[0])
    }

    /// Number of *enabled processes* in `gid` (the `|E|` of Lemma 5.5).
    pub fn enabled_process_count(&self, gid: GlobalStateId) -> usize {
        (0..self.ring_size())
            .filter(|&i| self.class_of(gid, i) & CLS_ENABLED != 0)
            .count()
    }

    /// Returns `true` if process `i` is enabled in `gid`.
    pub fn is_process_enabled(&self, gid: GlobalStateId, i: usize) -> bool {
        self.class_of(gid, i) & CLS_ENABLED != 0
    }

    /// Applies a move (asserting nothing about enabledness; use
    /// [`RingInstance::is_move_enabled`] to validate first).
    pub fn apply(&self, gid: GlobalStateId, m: Move) -> GlobalStateId {
        self.space.with_value(gid, m.process as isize, m.target)
    }

    /// Returns `true` if `m` is an enabled move in `gid`.
    pub fn is_move_enabled(&self, gid: GlobalStateId, m: Move) -> bool {
        self.targets_of(gid, m.process).contains(&m.target)
    }

    /// Visits every successor of `gid` (one call per enabled move, in
    /// (process, target) order) without allocating. When the ring is
    /// smaller than the read window, distinct moves may coincide on the
    /// same successor state and the duplicates are still visited — use
    /// [`RingInstance::successors`] for a deduplicated list.
    pub fn for_each_successor<F: FnMut(GlobalStateId)>(&self, gid: GlobalStateId, mut f: F) {
        self.for_each_move(gid, |m| f(self.apply(gid, m)));
    }

    /// The successor states of `gid`, deduplicated (one per distinct state
    /// reachable in a single move).
    ///
    /// On rings at least as large as the read window, distinct moves always
    /// produce distinct states unless a process rewrites its current value;
    /// on sub-window rings (`K < w`) several window positions alias the
    /// same variable and coinciding successors are common, so the list is
    /// explicitly deduplicated in first-visit order.
    pub fn successors(&self, gid: GlobalStateId) -> Vec<GlobalStateId> {
        let mut out: Vec<GlobalStateId> = Vec::new();
        self.for_each_successor(gid, |s| {
            if !out.contains(&s) {
                out.push(s);
            }
        });
        out
    }

    /// Visits every predecessor of `gid` under the global transition
    /// relation (one call per inverse move) without materializing the
    /// graph. A predecessor reachable by several inverse moves is visited
    /// once per move.
    pub fn for_each_predecessor<F: FnMut(GlobalStateId)>(&self, gid: GlobalStateId, mut f: F) {
        for i in 0..self.ring_size() {
            let cur = self.space.value_at(gid, i as isize);
            for v_old in 0..self.space.domain_size() as Value {
                if v_old == cur {
                    continue;
                }
                let cand = self.space.with_value(gid, i as isize, v_old);
                if self.targets_of(cand, i).contains(&cur) {
                    f(cand);
                }
            }
        }
    }

    /// The predecessor states of `gid`, deduplicated in first-visit order.
    pub fn predecessors(&self, gid: GlobalStateId) -> Vec<GlobalStateId> {
        let mut preds: Vec<GlobalStateId> = Vec::new();
        self.for_each_predecessor(gid, |p| {
            if !preds.contains(&p) {
                preds.push(p);
            }
        });
        preds
    }

    /// Returns `true` if `gid` is a global deadlock (no process enabled).
    pub fn is_deadlock(&self, gid: GlobalStateId) -> bool {
        (0..self.ring_size()).all(|i| self.class_of(gid, i) & CLS_ENABLED == 0)
    }

    /// Returns `true` if `gid ∈ I(K)`, i.e. every process satisfies its
    /// local legitimate predicate.
    pub fn is_legit(&self, gid: GlobalStateId) -> bool {
        (0..self.ring_size()).all(|i| self.class_of(gid, i) & CLS_LEGIT != 0)
    }

    /// Counts the processes in illegitimate local states (0 iff legit).
    pub fn corruption_count(&self, gid: GlobalStateId) -> usize {
        (0..self.ring_size())
            .filter(|&i| self.class_of(gid, i) & CLS_LEGIT == 0)
            .count()
    }
}

fn table_of_protocol(p: &Protocol) -> Vec<Vec<Value>> {
    p.space()
        .ids()
        .map(|id| p.transitions_from(id).to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::Domain;

    fn agreement_one_sided() -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn local_state_windows_wrap() {
        let p = agreement_one_sided();
        let ring = RingInstance::symmetric(&p, 3).unwrap();
        let s = ring.space().encode(&[1, 0, 1]);
        // P_0 reads [x_2, x_0] = [1, 1]
        assert_eq!(
            ring.local_space().decode(ring.local_state_of(s, 0)),
            vec![1, 1]
        );
        // P_1 reads [x_0, x_1] = [1, 0]
        assert_eq!(
            ring.local_space().decode(ring.local_state_of(s, 1)),
            vec![1, 0]
        );
    }

    #[test]
    fn moves_apply_and_deadlock() {
        let p = agreement_one_sided();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let s = ring.space().encode(&[1, 0, 0, 0]);
        let moves = ring.moves_from(s);
        assert_eq!(
            moves,
            vec![Move {
                process: 1,
                target: 1
            }]
        );
        let s2 = ring.apply(s, moves[0]);
        assert_eq!(ring.space().decode(s2), vec![1, 1, 0, 0]);
        let all_ones = ring.space().encode(&[1, 1, 1, 1]);
        assert!(ring.is_deadlock(all_ones));
        assert!(ring.is_legit(all_ones));
    }

    #[test]
    fn legitimacy_and_corruption_count() {
        let p = agreement_one_sided();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let s = ring.space().encode(&[1, 0, 0, 0]);
        assert!(!ring.is_legit(s));
        // P_1 (reads 1,0) and P_0 (reads 0,1) are corrupt.
        assert_eq!(ring.corruption_count(s), 2);
    }

    #[test]
    fn predecessors_invert_successors() {
        let p = agreement_one_sided();
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        for gid in ring.space().ids() {
            for succ in ring.successors(gid) {
                assert!(
                    ring.predecessors(succ).contains(&gid),
                    "missing predecessor for {gid} -> {succ}"
                );
            }
            for pred in ring.predecessors(gid) {
                assert!(ring.successors(pred).contains(&gid));
            }
        }
    }

    #[test]
    fn ring_smaller_than_window_is_consistent() {
        // K=1 unidirectional: P_0 reads [x_0, x_0]; the only sensible local
        // states are the diagonal ones.
        let p = agreement_one_sided();
        let ring = RingInstance::symmetric(&p, 1).unwrap();
        let s0 = ring.space().encode(&[0]);
        assert_eq!(
            ring.local_space().decode(ring.local_state_of(s0, 0)),
            vec![0, 0]
        );
        assert!(ring.is_deadlock(s0));
        assert!(ring.is_legit(s0));
    }

    #[test]
    fn sub_window_successors_are_deduplicated() {
        // K=1 is the smallest sub-window ring (window width 2 > K): the
        // single process reads its own variable at both window positions.
        // Every listed successor must be distinct and reachable by a move.
        let p = Protocol::builder("flip", Domain::numeric("x", 3), Locality::unidirectional())
            .action("x[r-1] == x[r] -> x[r] := 0 | 1 | 2")
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 1).unwrap();
        for gid in ring.space().ids() {
            let succs = ring.successors(gid);
            let mut sorted = succs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(succs.len(), sorted.len(), "duplicate successor of {gid}");
            // The identity write is rejected at build time, so each of the
            // other two domain values is reachable.
            assert_eq!(succs.len(), 2);
            // Visit order (process, target) is preserved by the dedup.
            let mut visited = Vec::new();
            ring.for_each_successor(gid, |s| visited.push(s));
            assert_eq!(succs, visited);
        }
    }

    #[test]
    fn heterogeneous_mismatch_rejected() {
        let p = agreement_one_sided();
        let q = Protocol::builder("q", Domain::numeric("x", 3), Locality::unidirectional())
            .legit_all()
            .build()
            .unwrap();
        let e = RingInstance::heterogeneous(&[&p, &q], DEFAULT_MAX_STATES).unwrap_err();
        assert!(matches!(e, GlobalError::Heterogeneous { .. }));
    }

    #[test]
    fn heterogeneous_distinct_behaviors() {
        let p = agreement_one_sided();
        // A frozen process that never moves and accepts everything.
        let frozen = Protocol::builder(
            "frozen",
            Domain::numeric("x", 2),
            Locality::unidirectional(),
        )
        .legit_all()
        .build()
        .unwrap();
        let ring = RingInstance::heterogeneous(&[&frozen, &p, &p], DEFAULT_MAX_STATES).unwrap();
        let s = ring.space().encode(&[0, 1, 0]); // P_0 would be enabled if it were `p`
        assert!(!ring.is_process_enabled(s, 0));
        let s2 = ring.space().encode(&[1, 0, 0]);
        assert!(ring.is_process_enabled(s2, 1));
    }
}

//! Explicit-state global analysis of fixed-size ring protocols.
//!
//! The whole point of the paper is to *avoid* exploring the global state
//! space — but a reproduction needs the global state space as ground truth:
//!
//! * to cross-validate the local Theorem 4.2 / Theorem 5.14 verdicts on
//!   concrete ring sizes (the paper itself model-checks Example 4.2 for
//!   `K = 5..8`);
//! * as the substrate of the fixed-`K` baseline synthesizer (the STSyn-like
//!   tool the authors used to produce Examples 4.2 and 4.3);
//! * to measure the exponential cost the local method avoids (experiment
//!   E12).
//!
//! The main types are:
//!
//! * [`RingInstance`] — a protocol instantiated on a ring of `K` processes
//!   (symmetric, or with per-process behaviors for protocols like Dijkstra's
//!   token ring that have a distinguished process);
//! * [`check`] — deadlock detection, livelock detection (a cycle of
//!   `Δ_p | ¬I`), closure, and strong/weak convergence with counterexamples;
//! * [`engine`] — the fused single-pass scan behind the convergence check:
//!   one sweep computes legitimacy counts, deadlocks and closure at once,
//!   optionally in parallel, with verdicts independent of the thread count;
//! * [`sim`] — a random/round-robin simulator with transient-fault
//!   injection and convergence-time measurement;
//! * [`schedule`] — computation schedules, replay, the livelock-induced
//!   precedence relation of Definition 5.10 and enumeration of
//!   precedence-preserving permutations (Lemma 5.11, Figures 5–6).
//!
//! # Examples
//!
//! Binary agreement with both recovery actions livelocks at `K = 4` (the
//! paper's Example 5.2):
//!
//! ```
//! use selfstab_protocol::{Domain, Locality, Protocol};
//! use selfstab_global::{RingInstance, check};
//!
//! let p = Protocol::builder("agreement", Domain::numeric("x", 2), Locality::unidirectional())
//!     .action("x[r-1] == 0 && x[r] == 1 -> x[r] := 0")?
//!     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
//!     .legit("x[r] == x[r-1]")?
//!     .build()?;
//! let ring = RingInstance::symmetric(&p, 4)?;
//! assert!(check::find_livelock(&ring).is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod engine;
pub mod error;
pub mod faults;
pub mod instance;
pub mod schedule;
pub mod sim;
pub mod state;
pub mod symmetry;

pub use check::{find_livelock, global_deadlocks, ConvergenceReport};
pub use engine::{
    fused_scan, fused_scan_bounded, fused_scan_metered, CancelToken, Cancelled, EngineConfig,
    FusedScan, SymmetryMode,
};
pub use error::GlobalError;
pub use instance::{Move, RingInstance};
pub use schedule::Schedule;
pub use sim::{Scheduler, SimOutcome, Simulator};
pub use state::{GlobalSpace, GlobalStateId};

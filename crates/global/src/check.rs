//! Global model checking: deadlocks, livelocks, closure, convergence.

use crate::engine::{fused_scan, CancelToken, Cancelled, EngineConfig};
use crate::instance::{Move, RingInstance};
use crate::state::GlobalStateId;

/// All global deadlock states of the instance.
pub fn global_deadlocks(ring: &RingInstance) -> Vec<GlobalStateId> {
    ring.space()
        .ids()
        .filter(|&s| ring.is_deadlock(s))
        .collect()
}

/// Global deadlock states outside `I(K)` — the witnesses Theorem 4.2 is
/// about.
pub fn illegitimate_deadlocks(ring: &RingInstance) -> Vec<GlobalStateId> {
    ring.space()
        .ids()
        .filter(|&s| ring.is_deadlock(s) && !ring.is_legit(s))
        .collect()
}

/// Closure violations: transitions that leave `I(K)` from inside it.
/// An empty result means `I(K)` is closed in the protocol.
pub fn closure_violations(ring: &RingInstance) -> Vec<(GlobalStateId, Move)> {
    let mut out = Vec::new();
    for s in ring.space().ids() {
        if !ring.is_legit(s) {
            continue;
        }
        ring.for_each_move(s, |m| {
            if !ring.is_legit(ring.apply(s, m)) {
                out.push((s, m));
            }
        });
    }
    out
}

/// The first closure violation in (state, process, target) order, or
/// `None` if `I(K)` is closed. Unlike [`closure_violations`] this stops at
/// the first witness, so it is the right call when only a yes/no answer
/// (plus one counterexample) is needed.
pub fn first_closure_violation(ring: &RingInstance) -> Option<(GlobalStateId, Move)> {
    first_closure_violation_where(ring, |s| ring.is_legit(s))
}

/// Like [`first_closure_violation`], with an arbitrary legitimate-state
/// predicate.
pub fn first_closure_violation_where<F>(
    ring: &RingInstance,
    is_legit: F,
) -> Option<(GlobalStateId, Move)>
where
    F: Fn(GlobalStateId) -> bool,
{
    for s in ring.space().ids() {
        if !is_legit(s) {
            continue;
        }
        for i in 0..ring.ring_size() {
            for &t in ring.targets_of(s, i) {
                let m = Move {
                    process: i,
                    target: t,
                };
                if !is_legit(ring.apply(s, m)) {
                    return Some((s, m));
                }
            }
        }
    }
    None
}

/// Searches for a livelock: a cycle of global transitions whose states all
/// lie outside `I(K)` (a cycle of `Δ_p | ¬I`, per Proposition 2.1).
///
/// Returns the cycle as a state sequence `[s_0, …, s_{m-1}]` with
/// transitions `s_i -> s_{i+1 mod m}`, or `None` if the protocol is
/// livelock-free at this ring size.
///
/// The search is an iterative tricolor DFS over the subgraph induced by
/// `¬I`, so memory is `O(d^K)` and time `O(states × moves)`.
pub fn find_livelock(ring: &RingInstance) -> Option<Vec<GlobalStateId>> {
    find_livelock_where(ring, |s| ring.is_legit(s))
}

/// Like [`find_livelock`], with an arbitrary legitimate-state predicate.
///
/// Protocols whose legitimate states are *not* locally conjunctive — e.g.
/// Dijkstra's token ring, where `I` is "exactly one token" — can be checked
/// by supplying the predicate directly.
pub fn find_livelock_where<F>(ring: &RingInstance, is_legit: F) -> Option<Vec<GlobalStateId>>
where
    F: Fn(GlobalStateId) -> bool,
{
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;

    let n = ring.space().len() as usize;
    let k = ring.ring_size();
    let mut color = vec![WHITE; n];
    // DFS frames: (state, next process to try, next target index within
    // that process). Successors are enumerated lazily through the frame
    // cursor, so no per-frame successor list is ever materialized.
    let mut frames: Vec<(GlobalStateId, usize, usize)> = Vec::new();

    for root in ring.space().ids() {
        if color[root.index()] != WHITE || is_legit(root) {
            continue;
        }
        color[root.index()] = GRAY;
        frames.clear();
        frames.push((root, 0, 0));

        while let Some(&mut (state, ref mut proc, ref mut tidx)) = frames.last_mut() {
            // Advance the cursor to the next successor inside ¬I.
            let mut next = None;
            while *proc < k {
                let targets = ring.targets_of(state, *proc);
                if *tidx < targets.len() {
                    let m = Move {
                        process: *proc,
                        target: targets[*tidx],
                    };
                    *tidx += 1;
                    let succ = ring.apply(state, m);
                    if !is_legit(succ) {
                        next = Some(succ);
                        break;
                    }
                } else {
                    *proc += 1;
                    *tidx = 0;
                }
            }
            match next {
                None => {
                    color[state.index()] = BLACK;
                    frames.pop();
                }
                Some(next) => match color[next.index()] {
                    WHITE => {
                        color[next.index()] = GRAY;
                        frames.push((next, 0, 0));
                    }
                    GRAY => {
                        // Back edge: extract the cycle from the DFS stack.
                        let start = frames
                            .iter()
                            .position(|&(s, _, _)| s == next)
                            .expect("gray state must be on the stack");
                        return Some(frames[start..].iter().map(|&(s, _, _)| s).collect());
                    }
                    _ => {}
                },
            }
        }
    }
    None
}

/// Searches for a livelock all of whose states draw every process's local
/// state from `local_allowed` — the *reconstruction* step of the paper's
/// §6.2: a contiguous trail `T_R` only denotes a real livelock if its local
/// states can be assembled into a cyclic global computation ("if we try to
/// reconstruct the global livelock of a ring of three processes using
/// `T_R`, we fail!").
///
/// Returns a cycle as in [`find_livelock`], or `None` when no livelock can
/// be built from the allowed local states at this ring size.
pub fn find_livelock_within<F>(ring: &RingInstance, local_allowed: F) -> Option<Vec<GlobalStateId>>
where
    F: Fn(selfstab_protocol::LocalStateId) -> bool,
{
    let admissible = |s: GlobalStateId| {
        !ring.is_legit(s) && (0..ring.ring_size()).all(|i| local_allowed(ring.local_state_of(s, i)))
    };
    // A cycle of admissible states is exactly a livelock over the allowed
    // window set: reuse the tricolor search with "legit" = inadmissible.
    find_livelock_where(ring, |s| !admissible(s))
}

/// Global deadlocks outside an arbitrary legitimate-state predicate.
pub fn illegitimate_deadlocks_where<F>(ring: &RingInstance, is_legit: F) -> Vec<GlobalStateId>
where
    F: Fn(GlobalStateId) -> bool,
{
    ring.space()
        .ids()
        .filter(|&s| ring.is_deadlock(s) && !is_legit(s))
        .collect()
}

/// Closure violations of an arbitrary legitimate-state predicate.
pub fn closure_violations_where<F>(ring: &RingInstance, is_legit: F) -> Vec<(GlobalStateId, Move)>
where
    F: Fn(GlobalStateId) -> bool,
{
    let mut out = Vec::new();
    for s in ring.space().ids() {
        if !is_legit(s) {
            continue;
        }
        ring.for_each_move(s, |m| {
            if !is_legit(ring.apply(s, m)) {
                out.push((s, m));
            }
        });
    }
    out
}

/// The outcome of a full strong-convergence check at a fixed ring size.
#[derive(Clone, Debug)]
pub struct ConvergenceReport {
    /// The ring size checked.
    pub ring_size: usize,
    /// Number of global states.
    pub state_count: u64,
    /// Number of states in `I(K)`.
    pub legit_count: u64,
    /// A closure violation, if `I(K)` is not closed.
    pub closure_violation: Option<(GlobalStateId, Move)>,
    /// Global deadlocks outside `I(K)` (all of them).
    pub illegitimate_deadlocks: Vec<GlobalStateId>,
    /// A livelock cycle, if one exists.
    pub livelock: Option<Vec<GlobalStateId>>,
}

impl ConvergenceReport {
    /// Runs the full check: closure, deadlock-freedom and livelock-freedom
    /// outside `I(K)`. Sequential; see [`ConvergenceReport::check_with`]
    /// for the parallel engine.
    pub fn check(ring: &RingInstance) -> Self {
        Self::check_with(ring, &EngineConfig::sequential())
    }

    /// Runs the full check through the fused engine: the legitimacy count,
    /// illegitimate deadlocks and first closure violation come from one
    /// scan over the state space ([`fused_scan`]), and the livelock search
    /// reuses that scan's legitimacy bitmap. The report is identical for
    /// every `config.threads` value.
    pub fn check_with(ring: &RingInstance, config: &EngineConfig) -> Self {
        let scan = fused_scan(ring, config);
        let livelock = crate::engine::find_livelock_with(ring, &scan);
        ConvergenceReport {
            ring_size: ring.ring_size(),
            state_count: ring.space().len(),
            legit_count: scan.legit_count,
            closure_violation: scan.first_closure_violation,
            illegitimate_deadlocks: scan.illegitimate_deadlocks,
            livelock,
        }
    }

    /// Like [`ConvergenceReport::check_with`], aborting early if `cancel`
    /// fires (explicitly or by wall-clock deadline) mid-check. A completed
    /// check is identical to an unbounded one; a cancelled check yields
    /// [`Cancelled`] and no partial report, so callers can degrade to an
    /// "over budget" outcome instead of wedging on an oversized instance.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the token fired before the check finished.
    pub fn check_bounded(
        ring: &RingInstance,
        config: &EngineConfig,
        cancel: &CancelToken,
    ) -> Result<Self, Cancelled> {
        Self::check_metered(ring, config, cancel, None)
    }

    /// Like [`ConvergenceReport::check_bounded`], optionally flushing the
    /// engine's work counters into `counters` (see
    /// [`fused_scan_metered`](crate::engine::fused_scan_metered) and
    /// [`find_livelock_metered`](crate::engine::find_livelock_metered)
    /// for what is counted and which values are thread-count-invariant).
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the token fired before the check finished.
    pub fn check_metered(
        ring: &RingInstance,
        config: &EngineConfig,
        cancel: &CancelToken,
        counters: Option<&selfstab_telemetry::EngineCounters>,
    ) -> Result<Self, Cancelled> {
        let scan = crate::engine::fused_scan_metered(ring, config, cancel, counters)?;
        let livelock = crate::engine::find_livelock_metered(ring, &scan, cancel, counters)?;
        Ok(ConvergenceReport {
            ring_size: ring.ring_size(),
            state_count: ring.space().len(),
            legit_count: scan.legit_count,
            closure_violation: scan.first_closure_violation,
            illegitimate_deadlocks: scan.illegitimate_deadlocks,
            livelock,
        })
    }

    /// `true` iff the protocol strongly converges to `I(K)` at this size
    /// (no illegitimate deadlocks and no livelocks; Proposition 2.1).
    pub fn strongly_converges(&self) -> bool {
        self.illegitimate_deadlocks.is_empty() && self.livelock.is_none()
    }

    /// `true` iff the protocol is strongly self-stabilizing at this size:
    /// strong convergence plus closure of `I(K)`.
    pub fn self_stabilizing(&self) -> bool {
        self.strongly_converges() && self.closure_violation.is_none()
    }
}

impl std::fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "K={}: {} states, {} legitimate",
            self.ring_size, self.state_count, self.legit_count
        )?;
        match &self.closure_violation {
            None => writeln!(f, "  closure: OK")?,
            Some((s, m)) => writeln!(f, "  closure: VIOLATED at {s} by P_{}", m.process)?,
        }
        if self.illegitimate_deadlocks.is_empty() {
            writeln!(f, "  deadlocks outside I: none")?;
        } else {
            writeln!(
                f,
                "  deadlocks outside I: {} (first: {})",
                self.illegitimate_deadlocks.len(),
                self.illegitimate_deadlocks[0]
            )?;
        }
        match &self.livelock {
            None => writeln!(f, "  livelocks: none")?,
            Some(c) => writeln!(f, "  livelocks: cycle of length {}", c.len())?,
        }
        Ok(())
    }
}

/// Returns `true` if the protocol *weakly* converges at this size: from
/// every global state some computation reaches `I(K)`.
pub fn weakly_converges(ring: &RingInstance) -> bool {
    // Backward reachability from I over the transition relation.
    let n = ring.space().len() as usize;
    let mut can_reach = vec![false; n];
    let mut work: Vec<GlobalStateId> = Vec::new();
    for s in ring.space().ids() {
        if ring.is_legit(s) {
            can_reach[s.index()] = true;
            work.push(s);
        }
    }
    while let Some(s) = work.pop() {
        ring.for_each_predecessor(s, |p| {
            if !can_reach[p.index()] {
                can_reach[p.index()] = true;
                work.push(p);
            }
        });
    }
    can_reach.into_iter().all(|b| b)
}

/// Validates Lemma 5.5 on a concrete livelock cycle: on unidirectional
/// rings every state of a livelock has the same number of enabled
/// processes. Returns that count, or `None` if the counts differ (which
/// would falsify the lemma — used by property tests).
pub fn livelock_enablement_count(ring: &RingInstance, cycle: &[GlobalStateId]) -> Option<usize> {
    let counts: Vec<usize> = cycle
        .iter()
        .map(|&s| ring.enabled_process_count(s))
        .collect();
    match counts.first() {
        Some(&c) if counts.iter().all(|&x| x == c) => Some(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn agreement(actions: &[&str]) -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions(actions.iter().copied())
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn one_sided_agreement_converges() {
        let p = agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]);
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let report = ConvergenceReport::check(&ring);
            assert!(report.self_stabilizing(), "failed at K={k}: {report}");
            assert!(weakly_converges(&ring));
        }
    }

    #[test]
    fn two_sided_agreement_livelocks_at_4() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let report = ConvergenceReport::check(&ring);
        assert!(report.closure_violation.is_none());
        assert!(report.illegitimate_deadlocks.is_empty());
        let cycle = report.livelock.expect("expected the Example 5.2 livelock");
        // Every state of the cycle is outside I and the cycle is well-formed.
        for (i, &s) in cycle.iter().enumerate() {
            assert!(!ring.is_legit(s));
            let next = cycle[(i + 1) % cycle.len()];
            assert!(ring.successors(s).contains(&next));
        }
        // Lemma 5.5: constant enablement count along the livelock.
        assert!(livelock_enablement_count(&ring, &cycle).is_some());
        // Weak convergence still holds (random walks can escape).
        assert!(weakly_converges(&ring));
    }

    #[test]
    fn empty_protocol_deadlocks_everywhere() {
        let p = Protocol::builder("empty", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 3).unwrap();
        assert_eq!(global_deadlocks(&ring).len(), 8);
        let bad = illegitimate_deadlocks(&ring);
        assert_eq!(bad.len(), 6); // all but 000 and 111
        assert!(!weakly_converges(&ring));
    }

    #[test]
    fn closure_violation_detected() {
        // A protocol that leaves I: in an agreeing state, flip anyway.
        let p = Protocol::builder("bad", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 3).unwrap();
        let report = ConvergenceReport::check(&ring);
        assert!(report.closure_violation.is_some());
        assert!(!report.self_stabilizing());
    }

    #[test]
    fn report_display_mentions_everything() {
        let p = agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]);
        let ring = RingInstance::symmetric(&p, 3).unwrap();
        let text = ConvergenceReport::check(&ring).to_string();
        assert!(text.contains("closure: OK"));
        assert!(text.contains("deadlocks outside I: none"));
        assert!(text.contains("livelocks: none"));
    }
}

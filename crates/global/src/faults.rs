//! Transient-fault analysis: fault spans and worst-case recovery times.
//!
//! Self-stabilization guarantees recovery from *any* state, but in practice
//! transient faults corrupt only a few variables at a time. This module
//! computes, at a fixed ring size:
//!
//! * the **fault span** — the states reachable from `I(K)` when up to `f`
//!   single-variable corruptions interleave with program transitions
//!   (Kulkarni & Arora's fault-span, specialized to variable-corruption
//!   faults);
//! * the **worst-case recovery time** — the longest computation an
//!   adversarial daemon can stretch before reaching `I(K)` (finite exactly
//!   when the protocol strongly converges, since `Δ_p|¬I` is then acyclic).

use crate::instance::RingInstance;
use crate::state::GlobalStateId;

/// The set of states reachable from `I(K)` with at most `max_faults`
/// single-variable corruptions, closed under program transitions.
///
/// Returned as a dense boolean table indexed by [`GlobalStateId::index`].
pub fn fault_span(ring: &RingInstance, max_faults: usize) -> Vec<bool> {
    let n = ring.space().len() as usize;
    // budget_left[s] = the largest remaining fault budget with which s was
    // reached (usize::MAX = unreached).
    const UNREACHED: usize = usize::MAX;
    let mut best = vec![UNREACHED; n];
    let mut work: Vec<(GlobalStateId, usize)> = Vec::new();
    for s in ring.space().ids() {
        if ring.is_legit(s) {
            best[s.index()] = max_faults;
            work.push((s, max_faults));
        }
    }
    while let Some((s, budget)) = work.pop() {
        // Program transitions preserve the budget.
        ring.for_each_successor(s, |t| {
            if best[t.index()] == UNREACHED || best[t.index()] < budget {
                best[t.index()] = budget;
                work.push((t, budget));
            }
        });
        // A fault corrupts one variable, consuming budget.
        if budget > 0 {
            let d = ring.space().domain_size() as u8;
            for i in 0..ring.ring_size() {
                let cur = ring.space().value_at(s, i as isize);
                for v in 0..d {
                    if v == cur {
                        continue;
                    }
                    let t = ring.space().with_value(s, i as isize, v);
                    let nb = budget - 1;
                    if best[t.index()] == UNREACHED || best[t.index()] < nb {
                        best[t.index()] = nb;
                        work.push((t, nb));
                    }
                }
            }
        }
    }
    best.into_iter().map(|b| b != usize::MAX).collect()
}

/// The worst-case recovery time of the instance: the maximum, over all
/// global states, of the longest computation before reaching `I(K)`.
///
/// Returns `None` if some computation never reaches `I(K)` — a deadlock
/// outside `I`, or a livelock (cycle in `Δ_p|¬I`). For strongly convergent
/// protocols `Δ_p|¬I` is acyclic, so the longest path is well defined and
/// computed by memoized DFS.
pub fn worst_case_recovery(ring: &RingInstance) -> Option<usize> {
    worst_case_recovery_from(ring, ring.space().ids())
}

/// Like [`worst_case_recovery`], restricted to the given start states
/// (e.g. a fault span). States outside `I` that cannot move yield `None`.
pub fn worst_case_recovery_from<I>(ring: &RingInstance, starts: I) -> Option<usize>
where
    I: IntoIterator<Item = GlobalStateId>,
{
    let n = ring.space().len() as usize;
    const UNKNOWN: isize = -1;
    const IN_PROGRESS: isize = -2;
    const DIVERGES: isize = -3;
    // height[s]: longest number of steps to reach I from s; 0 inside I.
    let mut height = vec![UNKNOWN; n];

    let mut overall = 0usize;
    for start in starts {
        // Iterative DFS computing heights.
        let mut stack = vec![(start, false)];
        while let Some((s, expanded)) = stack.pop() {
            let idx = s.index();
            if expanded {
                // Combine successors.
                let mut h = 0isize;
                let mut bad = false;
                let mut any = false;
                ring.for_each_successor(s, |t| {
                    any = true;
                    match height[t.index()] {
                        DIVERGES | IN_PROGRESS => bad = true,
                        v if v >= 0 => h = h.max(v + 1),
                        _ => bad = true, // unreached child: cannot happen
                    }
                });
                if !any {
                    bad = true; // deadlock outside I
                }
                height[idx] = if bad { DIVERGES } else { h };
                continue;
            }
            if height[idx] != UNKNOWN {
                continue;
            }
            if ring.is_legit(s) {
                height[idx] = 0;
                continue;
            }
            height[idx] = IN_PROGRESS;
            stack.push((s, true));
            ring.for_each_successor(s, |t| {
                if height[t.index()] == UNKNOWN {
                    stack.push((t, false));
                }
                // An IN_PROGRESS child is a DFS ancestor, i.e. a cycle in
                // ¬I; the expansion phase will see it still IN_PROGRESS
                // (ancestors finish after us) and mark DIVERGES.
            });
        }
        match height[start.index()] {
            v if v >= 0 => overall = overall.max(v as usize),
            _ => return None,
        }
    }
    Some(overall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn one_sided_agreement() -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn zero_fault_span_is_program_closure_of_legit() {
        let p = one_sided_agreement();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let span = fault_span(&ring, 0);
        // I is closed in p, so the 0-fault span is exactly I.
        for s in ring.space().ids() {
            assert_eq!(span[s.index()], ring.is_legit(s));
        }
    }

    #[test]
    fn zero_fault_span_strictly_contains_a_leaky_legit_set() {
        // A protocol whose I is NOT closed: in the all-ones state (inside
        // I), every process is enabled and firing one leaves I. The 0-fault
        // span is then the program closure of I, a strict superset of I.
        let p = Protocol::builder("leaky", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let span = fault_span(&ring, 0);
        // I is contained in its closure...
        for s in ring.space().ids() {
            if ring.is_legit(s) {
                assert!(span[s.index()]);
            }
        }
        // ...strictly: some reachable state is illegitimate, and the span
        // is closed under program transitions.
        assert!(ring
            .space()
            .ids()
            .any(|s| span[s.index()] && !ring.is_legit(s)));
        for s in ring.space().ids() {
            if span[s.index()] {
                ring.for_each_successor(s, |t| assert!(span[t.index()]));
            }
        }
    }

    #[test]
    fn full_fault_budget_reaches_everything() {
        let p = one_sided_agreement();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let span = fault_span(&ring, 4);
        assert!(span.iter().all(|&b| b));
    }

    #[test]
    fn fault_span_is_monotone_in_budget() {
        let p = one_sided_agreement();
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        let mut prev = fault_span(&ring, 0);
        for f in 1..=5 {
            let cur = fault_span(&ring, f);
            for i in 0..prev.len() {
                assert!(!prev[i] || cur[i], "span shrank at budget {f}");
            }
            prev = cur;
        }
    }

    #[test]
    fn worst_case_recovery_for_agreement() {
        // From 1 0...0, the run must copy the 1 all the way around:
        // K-1 steps; the worst state overall costs at most... compute and
        // sanity-bound it.
        let p = one_sided_agreement();
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let wc = worst_case_recovery(&ring).expect("strongly convergent");
            assert!(wc >= k - 1, "K={k}: wc={wc}");
            assert!(wc <= k * k, "K={k}: wc={wc}");
        }
    }

    #[test]
    fn divergent_protocols_have_no_bound() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions([
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ])
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        assert_eq!(worst_case_recovery(&ring), None);
    }

    #[test]
    fn deadlocked_states_have_no_bound() {
        let p = Protocol::builder("none", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 3).unwrap();
        assert_eq!(worst_case_recovery(&ring), None);
        // But restricted to I itself, recovery is trivially 0.
        let legits: Vec<_> = ring.space().ids().filter(|&s| ring.is_legit(s)).collect();
        assert_eq!(worst_case_recovery_from(&ring, legits), Some(0));
    }

    #[test]
    fn recovery_from_fault_span_bounded_by_global() {
        let p = one_sided_agreement();
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let global = worst_case_recovery(&ring).unwrap();
        let span = fault_span(&ring, 1);
        let starts: Vec<_> = ring.space().ids().filter(|s| span[s.index()]).collect();
        let from_span = worst_case_recovery_from(&ring, starts).unwrap();
        assert!(from_span <= global);
    }
}

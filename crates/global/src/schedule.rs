//! Computation schedules, replay, and the livelock-induced precedence
//! relation (Definition 5.10 / Lemma 5.11).
//!
//! A [`Schedule`] is a start state plus a sequence of moves. Livelocks found
//! by [`crate::check::find_livelock`] convert to schedules, whose
//! *precedence-preserving permutations* — reorderings obtained by swapping
//! adjacent independent moves — are themselves livelocks (Lemma 5.11).
//! Example 5.2 of the paper exhibits exactly 8 such permutations for the
//! binary-agreement livelock at `K = 4`; `equivalent_schedules` reproduces
//! them (experiment E5).

use std::collections::BTreeSet;

use crate::error::GlobalError;
use crate::instance::{Move, RingInstance};
use crate::state::GlobalStateId;

/// A finite computation prefix: a start state and a sequence of moves.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Schedule {
    /// The start state.
    pub start: GlobalStateId,
    /// The moves, in execution order.
    pub moves: Vec<Move>,
}

impl Schedule {
    /// Converts a livelock cycle (as returned by `find_livelock`) into a
    /// schedule starting at `cycle[0]`.
    ///
    /// # Panics
    ///
    /// Panics if consecutive cycle states are not related by exactly one
    /// process's move (which `find_livelock` guarantees).
    pub fn from_cycle(ring: &RingInstance, cycle: &[GlobalStateId]) -> Schedule {
        let mut moves = Vec::with_capacity(cycle.len());
        for (i, &s) in cycle.iter().enumerate() {
            let next = cycle[(i + 1) % cycle.len()];
            moves.push(move_between(ring, s, next));
        }
        Schedule {
            start: cycle[0],
            moves,
        }
    }

    /// Replays the schedule, returning the state sequence
    /// `[start, s_1, …, s_n]`.
    ///
    /// # Errors
    ///
    /// Returns [`GlobalError::ReplayDisabled`] if some move is not enabled
    /// when its turn comes.
    pub fn replay(&self, ring: &RingInstance) -> Result<Vec<GlobalStateId>, GlobalError> {
        let mut states = Vec::with_capacity(self.moves.len() + 1);
        let mut cur = self.start;
        states.push(cur);
        for (step, &m) in self.moves.iter().enumerate() {
            if !ring.is_move_enabled(cur, m) {
                return Err(GlobalError::ReplayDisabled {
                    step,
                    process: m.process,
                });
            }
            cur = ring.apply(cur, m);
            states.push(cur);
        }
        Ok(states)
    }

    /// Returns `true` if the schedule replays successfully and returns to
    /// its start state — i.e. it is a (representation of a) livelock when
    /// all its states are illegitimate.
    pub fn is_cyclic(&self, ring: &RingInstance) -> bool {
        match self.replay(ring) {
            Ok(states) => states.last() == Some(&self.start),
            Err(_) => false,
        }
    }
}

/// Determines the unique move transforming `from` into `to`.
///
/// # Panics
///
/// Panics if the states differ in zero or more than one position, or the
/// move is not enabled.
pub fn move_between(ring: &RingInstance, from: GlobalStateId, to: GlobalStateId) -> Move {
    let k = ring.ring_size();
    let mut changed = None;
    for i in 0..k {
        let a = ring.space().value_at(from, i as isize);
        let b = ring.space().value_at(to, i as isize);
        if a != b {
            assert!(changed.is_none(), "states differ in more than one position");
            changed = Some(Move {
                process: i,
                target: b,
            });
        }
    }
    let m = changed.expect("states are identical");
    assert!(
        ring.is_move_enabled(from, m),
        "inferred move is not enabled"
    );
    m
}

/// Operational independence of two moves at a state (the "diamond"
/// property): both are enabled, each remains enabled after the other, and
/// the two execution orders commute to the same state.
///
/// Two independent moves may be swapped in a schedule without changing what
/// follows — the basis of the partial-order reduction behind Lemma 5.11.
pub fn independent_at(ring: &RingInstance, s: GlobalStateId, m1: Move, m2: Move) -> bool {
    if m1.process == m2.process {
        return false;
    }
    if !ring.is_move_enabled(s, m1) || !ring.is_move_enabled(s, m2) {
        return false;
    }
    let s1 = ring.apply(s, m1);
    let s2 = ring.apply(s, m2);
    ring.is_move_enabled(s1, m2)
        && ring.is_move_enabled(s2, m1)
        && ring.apply(s1, m2) == ring.apply(s2, m1)
}

/// Enumerates the schedules equivalent to `sch` under swaps of adjacent
/// independent moves, including `sch` itself — the *precedence-preserving
/// permutations* of Definition 5.10 with the starting move fixed by the
/// start state.
///
/// The result is sorted and capped at `limit` schedules (the enumeration
/// stops early once the cap is reached).
pub fn equivalent_schedules(ring: &RingInstance, sch: &Schedule, limit: usize) -> Vec<Schedule> {
    let mut seen: BTreeSet<Schedule> = BTreeSet::new();
    let mut work = vec![sch.clone()];
    seen.insert(sch.clone());
    while let Some(cur) = work.pop() {
        if seen.len() >= limit {
            break;
        }
        // Try swapping every adjacent pair.
        let states = match cur.replay(ring) {
            Ok(s) => s,
            Err(_) => continue,
        };
        #[allow(clippy::needless_range_loop)] // i indexes both moves and replay states
        for i in 0..cur.moves.len().saturating_sub(1) {
            let (m1, m2) = (cur.moves[i], cur.moves[i + 1]);
            if independent_at(ring, states[i], m1, m2) {
                let mut swapped = cur.clone();
                swapped.moves.swap(i, i + 1);
                if swapped.replay(ring).is_ok() && seen.insert(swapped.clone()) {
                    work.push(swapped);
                    if seen.len() >= limit {
                        break;
                    }
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// The precedence pairs of a schedule: ordered index pairs `(i, j)` with
/// `i < j` such that moves `i` and `j` could *not* be reordered past each
/// other by adjacent independent swaps, conservatively approximated by
/// static dependence (same process, or processes within read/write range on
/// the ring — exactly the situations of Definition 5.10's clauses 1–2).
pub fn dependent_pairs(ring: &RingInstance, sch: &Schedule) -> Vec<(usize, usize)> {
    let k = ring.ring_size() as isize;
    let loc = ring.locality();
    // One of the two processes reads (or is) the other iff their ring
    // distance is within the wider locality span.
    let span = loc.left().max(loc.right()) as isize;
    let mut out = Vec::new();
    for i in 0..sch.moves.len() {
        for j in (i + 1)..sch.moves.len() {
            let a = sch.moves[i].process as isize;
            let b = sch.moves[j].process as isize;
            let d = (b - a).rem_euclid(k);
            if d.min(k - d) <= span {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::find_livelock;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn two_sided_agreement() -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions([
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ])
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn livelock_cycle_converts_and_replays() {
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        let cycle = find_livelock(&ring).unwrap();
        let sch = Schedule::from_cycle(&ring, &cycle);
        assert_eq!(sch.moves.len(), cycle.len());
        assert!(sch.is_cyclic(&ring));
    }

    #[test]
    fn degenerate_schedules_survive_equivalence_enumeration() {
        // The adjacent-pair loop is `0..moves.len().saturating_sub(1)`:
        // for empty and single-move schedules it runs zero times, and the
        // seed schedule itself must still come back as its own (singleton)
        // equivalence class — not vanish or underflow.
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        let start = ring.space().encode(&[1, 0, 0, 0]);
        let empty = Schedule {
            start,
            moves: vec![],
        };
        assert_eq!(
            equivalent_schedules(&ring, &empty, 1000),
            vec![empty.clone()]
        );
        // One enabled move (process 1 copies x_0 = 1): no adjacent pair
        // exists, so the class is again just the schedule itself.
        let single = Schedule {
            start,
            moves: vec![Move {
                process: 1,
                target: 1,
            }],
        };
        assert!(single.replay(&ring).is_ok(), "the single move is enabled");
        assert_eq!(
            equivalent_schedules(&ring, &single, 1000),
            vec![single.clone()]
        );
        // A limit of 1 must cap the enumeration at the seed even when the
        // true class is larger (Example 5.2's class has 8 members).
        let cycle = find_livelock(&ring).unwrap();
        let sch = Schedule::from_cycle(&ring, &cycle);
        assert_eq!(equivalent_schedules(&ring, &sch, 1), vec![sch]);
    }

    #[test]
    fn example_5_2_has_eight_equivalent_livelocks() {
        // The paper's Example 5.2 livelock at K=4:
        // L = ≪1000,1100,0100,0110,0111,0011,1011,1001≫, whose precedence
        // class contains 2^3 = 8 permutations (Figure 5).
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        let cycle: Vec<_> = [
            [1, 0, 0, 0],
            [1, 1, 0, 0],
            [0, 1, 0, 0],
            [0, 1, 1, 0],
            [0, 1, 1, 1],
            [0, 0, 1, 1],
            [1, 0, 1, 1],
            [1, 0, 0, 1],
        ]
        .iter()
        .map(|w| ring.space().encode(w))
        .collect();
        let sch = Schedule::from_cycle(&ring, &cycle);
        assert!(sch.is_cyclic(&ring));
        let eq = equivalent_schedules(&ring, &sch, 1000);
        assert_eq!(eq.len(), 8);
        for s in &eq {
            assert!(
                s.is_cyclic(&ring),
                "every permutation must replay as a livelock"
            );
        }
    }

    #[test]
    fn found_livelocks_yield_cyclic_equivalence_classes() {
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        let cycle = find_livelock(&ring).unwrap();
        let sch = Schedule::from_cycle(&ring, &cycle);
        assert!(sch.is_cyclic(&ring));
        for s in equivalent_schedules(&ring, &sch, 200) {
            assert!(s.is_cyclic(&ring));
        }
    }

    #[test]
    fn replay_detects_disabled_moves() {
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        let start = ring.space().encode(&[1, 0, 0, 0]);
        let sch = Schedule {
            start,
            moves: vec![Move {
                process: 3,
                target: 1,
            }],
        };
        let e = sch.replay(&ring).unwrap_err();
        assert!(matches!(
            e,
            GlobalError::ReplayDisabled {
                step: 0,
                process: 3
            }
        ));
    }

    #[test]
    fn independence_requires_distance() {
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        // 1010: P_1 (reads 1,0) and P_3 (reads 1,0) both enabled; distance 2 ⇒ independent.
        let s = ring.space().encode(&[1, 0, 1, 0]);
        let m1 = Move {
            process: 1,
            target: 1,
        };
        let m3 = Move {
            process: 3,
            target: 1,
        };
        assert!(independent_at(&ring, s, m1, m3));
        // Adjacent processes: P_1 writing affects P_2's guard ⇒ dependent.
        let s2 = ring.space().encode(&[1, 0, 1, 1]);
        let m2 = Move {
            process: 2,
            target: 0,
        };
        assert!(!independent_at(&ring, s2, m1, m2));
    }

    #[test]
    fn dependent_pairs_include_same_process() {
        let ring = RingInstance::symmetric(&two_sided_agreement(), 4).unwrap();
        let cycle = find_livelock(&ring).unwrap();
        let sch = Schedule::from_cycle(&ring, &cycle);
        let deps = dependent_pairs(&ring, &sch);
        for (i, j) in &deps {
            assert!(i < j);
        }
        // Moves of the same process must always be ordered.
        for i in 0..sch.moves.len() {
            for j in (i + 1)..sch.moves.len() {
                if sch.moves[i].process == sch.moves[j].process {
                    assert!(deps.contains(&(i, j)));
                }
            }
        }
    }
}

//! Fused, parallel, allocation-free convergence scanning.
//!
//! [`ConvergenceReport::check`](crate::check::ConvergenceReport::check)
//! needs three facts about the global state space: the size of `I(K)`, the
//! deadlocks outside `I(K)`, and whether `I(K)` is closed. The naive
//! formulation makes three separate sweeps, each re-deriving every local
//! state through [`GlobalSpace::value_at`](crate::state::GlobalSpace)
//! (a `pow` per digit). [`fused_scan`] computes all three in **one** pass:
//!
//! * global ids are enumerated in dense ascending order while a mixed-radix
//!   digit buffer is incremented in place, so no division or `pow` is spent
//!   on decoding;
//! * each state's `K` local window ids are assembled straight from the
//!   digit buffer, and legitimacy/enabledness are memoized per-local-state
//!   class bits ([`RingInstance`] builds the tables at construction);
//! * the closure check for a legitimate state only re-encodes the ≤ `w`
//!   windows that actually cover the written position;
//! * the sweep also records a legitimacy bitmap that the livelock search
//!   ([`find_livelock_with`]) reuses, making `is_legit` a single bit test
//!   during the DFS.
//!
//! The id range is split into 64-aligned chunks handed to a scoped thread
//! pool ([`EngineConfig::threads`]); each chunk produces an independent
//! [`ChunkOut`]-style summary and the summaries are merged in ascending
//! chunk order, so **the result is bit-for-bit identical for every thread
//! count**, including the identity of the first closure violation and the
//! order of the deadlock list.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use selfstab_protocol::{LocalStateId, Value};
use selfstab_telemetry::EngineCounters;

use crate::instance::{Move, RingInstance, CLS_ENABLED, CLS_LEGIT};
use crate::state::GlobalStateId;

/// How many states/DFS steps a scan processes between cancellation polls.
/// Large enough that the poll (one relaxed load, occasionally a clock read)
/// is invisible in profiles, small enough that cancellation lands within
/// microseconds.
const CANCEL_STRIDE: u64 = 4096;

/// Cooperative cancellation for long-running scans: an explicit flag
/// (settable from any thread, e.g. a Ctrl-C handler) combined with an
/// optional wall-clock deadline and an optional **parent** token. Scans
/// poll the token every [`CANCEL_STRIDE`] states and bail out with
/// [`Cancelled`].
///
/// Parent linking lets one broadcast token (a SIGINT hook, a chaos
/// harness's forced-cancel injector) abort many per-job tokens at once:
/// a child fires as soon as its own flag/deadline fires *or* its parent
/// does, and a fired parent latches into the child's flag so subsequent
/// polls stay one relaxed load.
#[derive(Debug)]
pub struct CancelToken {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelToken>>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: None,
            parent: None,
        }
    }

    /// A token that fires once `deadline` passes (or on explicit cancel).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
            parent: None,
        }
    }

    /// A token that also fires whenever `parent` fires. Cancelling the
    /// child never cancels the parent.
    pub fn linked(parent: Arc<CancelToken>) -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: None,
            parent: Some(parent),
        }
    }

    /// A token with both a private deadline and a parent link: it fires on
    /// its own deadline, on explicit cancel, or when `parent` fires.
    pub fn linked_with_deadline(parent: Arc<CancelToken>, deadline: Instant) -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
            parent: Some(parent),
        }
    }

    /// Fires the token; every in-flight scan polling it will abort.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once the token has fired, its deadline has passed, or its
    /// parent (if any) has fired. A passed deadline or fired parent latches
    /// the flag so later polls skip the clock read / parent walk.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(parent) = &self.parent {
            if parent.is_cancelled() {
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// A scan was aborted by its [`CancelToken`] before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scan cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// Tuning knobs of the fused engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the scan. `0` and `1` both mean sequential
    /// (the default, so results are reproducible without opting in).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { threads: 1 }
    }
}

impl EngineConfig {
    /// A sequential configuration.
    pub fn sequential() -> Self {
        EngineConfig::default()
    }

    /// A configuration with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig { threads }
    }
}

/// The result of one fused sweep over the global state space.
#[derive(Clone, Debug)]
pub struct FusedScan {
    /// Number of states in `I(K)`.
    pub legit_count: u64,
    /// All global deadlocks outside `I(K)`, in ascending id order.
    pub illegitimate_deadlocks: Vec<GlobalStateId>,
    /// The first closure violation in (state, process, target) order, if
    /// `I(K)` is not closed.
    pub first_closure_violation: Option<(GlobalStateId, Move)>,
    /// Legitimacy bitmap: bit `id` is set iff `id ∈ I(K)`.
    legit_bits: Vec<u64>,
}

impl FusedScan {
    /// Bitmap lookup: `true` iff `gid ∈ I(K)`.
    pub fn is_legit(&self, gid: GlobalStateId) -> bool {
        self.legit_bits[(gid.0 / 64) as usize] >> (gid.0 % 64) & 1 == 1
    }
}

/// Per-chunk accumulator; chunks merge associatively in ascending order.
struct ChunkOut {
    legit_count: u64,
    deadlocks: Vec<GlobalStateId>,
    violation: Option<(GlobalStateId, Move)>,
    /// The bitmap words covering the chunk's (64-aligned) id range.
    bits: Vec<u64>,
}

/// Precomputed window geometry shared by every chunk of one scan.
struct ScanPlan {
    ring_size: usize,
    domain_size: u64,
    window_width: usize,
    /// `positions[i * w + idx]` = ring position read by window slot `idx`
    /// of process `i` (wrap-around applied).
    positions: Vec<usize>,
    /// `weights[idx]` = `d^(w-1-idx)`, the significance of window slot
    /// `idx` in the local state id.
    weights: Vec<u32>,
    /// `tables[i]` = transition-table index of process `i`.
    tables: Vec<usize>,
    /// `writers[i * w + idx]` = the process whose window slot `idx` reads
    /// position `i` — i.e. the candidates whose local state changes when
    /// `x_i` is written.
    writers: Vec<usize>,
    /// `state_weights[i]` = `d^(K-1-i)`, the significance of ring position
    /// `i` in the global state id (matching [`GlobalSpace`]'s encoding).
    state_weights: Vec<u64>,
}

impl ScanPlan {
    fn new(ring: &RingInstance) -> Self {
        let k = ring.ring_size();
        let d = ring.space().domain_size() as u64;
        let loc = ring.locality();
        let w = loc.window_width();
        let mut positions = Vec::with_capacity(k * w);
        let mut writers = Vec::with_capacity(k * w);
        for i in 0..k {
            for idx in 0..w {
                let off = loc.offset_of(idx);
                positions.push((i as isize + off).rem_euclid(k as isize) as usize);
                writers.push((i as isize - off).rem_euclid(k as isize) as usize);
            }
        }
        let mut weights = vec![1u32; w];
        for idx in (0..w.saturating_sub(1)).rev() {
            weights[idx] = weights[idx + 1] * d as u32;
        }
        let mut state_weights = vec![1u64; k];
        for i in (0..k.saturating_sub(1)).rev() {
            state_weights[i] = state_weights[i + 1] * d;
        }
        ScanPlan {
            ring_size: k,
            domain_size: d,
            window_width: w,
            positions,
            weights,
            tables: (0..k).map(|i| ring.table_index(i)).collect(),
            writers,
            state_weights,
        }
    }

    /// The local state id of process `i` given the digit buffer.
    #[inline]
    fn local_id(&self, digits: &[Value], i: usize) -> LocalStateId {
        let w = self.window_width;
        let mut id: u32 = 0;
        for idx in 0..w {
            id += self.weights[idx] * digits[self.positions[i * w + idx]] as u32;
        }
        LocalStateId(id)
    }

    /// Like [`ScanPlan::local_id`], with position `pos` overridden to `v`
    /// (evaluating a window after a hypothetical write).
    #[inline]
    fn local_id_with(&self, digits: &[Value], i: usize, pos: usize, v: Value) -> LocalStateId {
        let w = self.window_width;
        let mut id: u32 = 0;
        for idx in 0..w {
            let p = self.positions[i * w + idx];
            let digit = if p == pos { v } else { digits[p] };
            id += self.weights[idx] * digit as u32;
        }
        LocalStateId(id)
    }
}

/// Scans ids `start..end`, where `start` is 64-aligned (or 0). Returns
/// `None` if the token fired mid-chunk.
///
/// Telemetry discipline: the loop tallies into plain locals and flushes
/// them into `counters` **once**, after the chunk completes — so with
/// `counters: None` the loop is bit-identical to the uninstrumented one,
/// and with `Some` the per-state cost is still zero.
fn scan_chunk(
    ring: &RingInstance,
    plan: &ScanPlan,
    start: u64,
    end: u64,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Option<ChunkOut> {
    let k = plan.ring_size;
    let d = plan.domain_size;
    let mut digits = ring.space().decode(GlobalStateId(start));
    let mut locals: Vec<LocalStateId> = vec![LocalStateId(0); k];

    let mut out = ChunkOut {
        legit_count: 0,
        deadlocks: Vec::new(),
        violation: None,
        bits: vec![0u64; ((end - start) as usize).div_ceil(64)],
    };
    let mut polls: u64 = 0;
    let mut closure_checks: u64 = 0;

    for gid in start..end {
        if gid % CANCEL_STRIDE == 0 {
            polls += 1;
            if cancel.is_cancelled() {
                return None;
            }
        }
        let mut all_legit = true;
        let mut any_enabled = false;
        for (i, slot) in locals.iter_mut().enumerate() {
            let ls = plan.local_id(&digits, i);
            *slot = ls;
            let c = ring.class_by_table(plan.tables[i], ls);
            all_legit &= c & CLS_LEGIT != 0;
            any_enabled |= c & CLS_ENABLED != 0;
        }

        if all_legit {
            out.legit_count += 1;
            out.bits[((gid - start) / 64) as usize] |= 1 << (gid % 64);
            if out.violation.is_none() {
                closure_checks += 1;
                out.violation = first_violation_at(ring, plan, &digits, &locals, gid);
            }
        } else if !any_enabled {
            out.deadlocks.push(GlobalStateId(gid));
        }

        // Mixed-radix increment: x_{K-1} is the least significant digit.
        for slot in digits.iter_mut().rev() {
            *slot += 1;
            if (*slot as u64) < d {
                break;
            }
            *slot = 0;
        }
    }
    if let Some(c) = counters {
        c.states_visited.fetch_add(end - start, Ordering::Relaxed);
        c.legit_states.fetch_add(out.legit_count, Ordering::Relaxed);
        c.deadlocks_found
            .fetch_add(out.deadlocks.len() as u64, Ordering::Relaxed);
        c.closure_checks
            .fetch_add(closure_checks, Ordering::Relaxed);
        c.cancel_polls.fetch_add(polls, Ordering::Relaxed);
    }
    Some(out)
}

/// The first closure violation out of the legitimate state `gid`, in
/// (process, target) order, or `None` if every move stays in `I(K)`.
///
/// Only the ≤ `w` processes whose window covers the written position are
/// re-encoded; all others keep their (legitimate) local state.
fn first_violation_at(
    ring: &RingInstance,
    plan: &ScanPlan,
    digits: &[Value],
    locals: &[LocalStateId],
    gid: u64,
) -> Option<(GlobalStateId, Move)> {
    let w = plan.window_width;
    for (i, &ls) in locals.iter().enumerate() {
        for &t in ring.targets_by_table(plan.tables[i], ls) {
            let stays_legit = (0..w).all(|idx| {
                let j = plan.writers[i * w + idx];
                let ls = plan.local_id_with(digits, j, i, t);
                ring.class_by_table(plan.tables[j], ls) & CLS_LEGIT != 0
            });
            if !stays_legit {
                return Some((
                    GlobalStateId(gid),
                    Move {
                        process: i,
                        target: t,
                    },
                ));
            }
        }
    }
    None
}

/// Runs the fused sweep. With `config.threads <= 1` the scan is a single
/// sequential chunk; otherwise 64-aligned chunks are distributed over
/// scoped worker threads and merged in ascending chunk order, so the
/// result is identical to the sequential one.
pub fn fused_scan(ring: &RingInstance, config: &EngineConfig) -> FusedScan {
    fused_scan_bounded(ring, config, &CancelToken::new())
        .expect("a fresh token never cancels the scan")
}

/// Like [`fused_scan`], aborting early with [`Cancelled`] if `cancel` fires
/// (explicitly or by deadline) before the sweep completes. A completed
/// sweep is identical to an unbounded one.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the scan finished.
pub fn fused_scan_bounded(
    ring: &RingInstance,
    config: &EngineConfig,
    cancel: &CancelToken,
) -> Result<FusedScan, Cancelled> {
    fused_scan_metered(ring, config, cancel, None)
}

/// Like [`fused_scan_bounded`], optionally flushing work counters into
/// `counters` (states visited, legitimate states, deadlocks, closure
/// checks, cancel polls). Counters are accumulated per chunk in plain
/// locals and flushed once at chunk end, so the scan loop pays nothing;
/// with `counters: None` this **is** [`fused_scan_bounded`].
///
/// For a *completed* scan every flushed counter except `closure_checks`
/// is identical for every `config.threads` value (`closure_checks`
/// short-circuits per chunk, so its tally depends on the chunking).
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the scan finished
/// (nothing is flushed for chunks that did not complete).
pub fn fused_scan_metered(
    ring: &RingInstance,
    config: &EngineConfig,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Result<FusedScan, Cancelled> {
    let n = ring.space().len();
    let plan = ScanPlan::new(ring);
    let threads = config.threads.max(1);

    if threads == 1 {
        let out = scan_chunk(ring, &plan, 0, n, cancel, counters).ok_or(Cancelled)?;
        return Ok(FusedScan {
            legit_count: out.legit_count,
            illegitimate_deadlocks: out.deadlocks,
            first_closure_violation: out.violation,
            legit_bits: out.bits,
        });
    }

    // Aim for several chunks per worker so stragglers balance out, but
    // keep chunks 64-aligned so each owns whole bitmap words.
    let target = (n / (threads as u64 * 8)).max(4096);
    let chunk = target.div_ceil(64) * 64;
    let num_chunks = n.div_ceil(chunk) as usize;
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, ChunkOut)>> = Mutex::new(Vec::with_capacity(num_chunks));

    std::thread::scope(|scope| {
        for _ in 0..threads.min(num_chunks) {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks as u64 || cancel.is_cancelled() {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(n);
                match scan_chunk(ring, &plan, start, end, cancel, counters) {
                    Some(out) => results.lock().unwrap().push((c as usize, out)),
                    None => break,
                }
            });
        }
    });

    let mut parts = results.into_inner().unwrap();
    if parts.len() != num_chunks {
        return Err(Cancelled);
    }
    parts.sort_unstable_by_key(|(c, _)| *c);

    let mut scan = FusedScan {
        legit_count: 0,
        illegitimate_deadlocks: Vec::new(),
        first_closure_violation: None,
        legit_bits: Vec::with_capacity((n as usize).div_ceil(64)),
    };
    for (_, part) in parts {
        scan.legit_count += part.legit_count;
        scan.illegitimate_deadlocks.extend(part.deadlocks);
        if scan.first_closure_violation.is_none() {
            scan.first_closure_violation = part.violation;
        }
        scan.legit_bits.extend(part.bits);
    }
    Ok(scan)
}

/// Livelock search reusing a fused scan's legitimacy bitmap: the tricolor
/// DFS of [`find_livelock_where`](crate::check::find_livelock_where) with
/// `is_legit` reduced to a bit test.
///
/// On top of the bitmap, the DFS keeps a per-frame arena of ring digits and
/// local window ids so a frame's enabled moves are slice lookups: a child
/// frame's digits/locals are copied from its parent and patched in `O(w)`
/// (only the ≤ `w` windows covering the written position change), and the
/// successor's global id is `parent ± Δ·d^(K-1-i)` — no `pow`, and division
/// only when decoding a DFS root. Visit order is identical to
/// [`find_livelock_where`](crate::check::find_livelock_where), so both
/// return the same cycle witness.
pub fn find_livelock_with(ring: &RingInstance, scan: &FusedScan) -> Option<Vec<GlobalStateId>> {
    find_livelock_bounded(ring, scan, &CancelToken::new())
        .expect("a fresh token never cancels the search")
}

/// Like [`find_livelock_with`], aborting early with [`Cancelled`] if
/// `cancel` fires before the search completes. A completed search returns
/// the same witness as the unbounded one.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the search finished.
pub fn find_livelock_bounded(
    ring: &RingInstance,
    scan: &FusedScan,
    cancel: &CancelToken,
) -> Result<Option<Vec<GlobalStateId>>, Cancelled> {
    find_livelock_metered(ring, scan, cancel, None)
}

/// Like [`find_livelock_bounded`], optionally flushing work counters into
/// `counters` (DFS steps, deepest stack, cancel polls). The search is
/// sequential, so for a completed search every flushed value is a pure
/// function of the instance. Counters accumulate in plain locals and
/// flush once when the search completes; a [`Cancelled`] search flushes
/// nothing.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the search finished.
pub fn find_livelock_metered(
    ring: &RingInstance,
    scan: &FusedScan,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Result<Option<Vec<GlobalStateId>>, Cancelled> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;

    let plan = ScanPlan::new(ring);
    let k = plan.ring_size;
    let w = plan.window_width;
    let n = ring.space().len() as usize;
    let mut color = vec![WHITE; n];
    // DFS frames: (state, next process to try, next target index within
    // that process). The parallel arenas hold each frame's `K` ring digits
    // and `K` local window ids; they grow once and are reused thereafter.
    let mut frames: Vec<(GlobalStateId, usize, usize)> = Vec::new();
    let mut digits: Vec<Value> = Vec::new();
    let mut locals: Vec<LocalStateId> = Vec::new();
    let mut steps: u64 = 0;
    let mut polls: u64 = 0;
    let mut max_depth: u64 = 0;
    let flush = |steps: u64, polls: u64, max_depth: u64| {
        if let Some(c) = counters {
            c.dfs_steps.fetch_add(steps, Ordering::Relaxed);
            c.cancel_polls.fetch_add(polls, Ordering::Relaxed);
            c.record_dfs_depth(max_depth);
        }
    };

    for root in ring.space().ids() {
        if color[root.index()] != WHITE || scan.is_legit(root) {
            continue;
        }
        color[root.index()] = GRAY;
        frames.clear();
        digits.clear();
        locals.clear();
        frames.push((root, 0, 0));
        max_depth = max_depth.max(1);
        digits.extend_from_slice(&ring.space().decode(root));
        for i in 0..k {
            locals.push(plan.local_id(&digits, i));
        }

        while !frames.is_empty() {
            if steps.is_multiple_of(CANCEL_STRIDE) {
                polls += 1;
                if cancel.is_cancelled() {
                    return Err(Cancelled);
                }
            }
            steps += 1;
            let base = (frames.len() - 1) * k;
            let &mut (state, ref mut proc, ref mut tidx) =
                frames.last_mut().expect("loop guard ensures a frame");
            // Advance the cursor to the next successor inside ¬I.
            let mut next = None;
            while *proc < k {
                let targets = ring.targets_by_table(plan.tables[*proc], locals[base + *proc]);
                if *tidx < targets.len() {
                    let t = targets[*tidx];
                    *tidx += 1;
                    let delta = t as i64 - digits[base + *proc] as i64;
                    let succ = GlobalStateId(
                        (state.0 as i64 + delta * plan.state_weights[*proc] as i64) as u64,
                    );
                    if !scan.is_legit(succ) {
                        next = Some((succ, *proc, t));
                        break;
                    }
                } else {
                    *proc += 1;
                    *tidx = 0;
                }
            }
            match next {
                None => {
                    color[state.index()] = BLACK;
                    frames.pop();
                    digits.truncate(base);
                    locals.truncate(base);
                }
                Some((succ, wi, t)) => match color[succ.index()] {
                    WHITE => {
                        color[succ.index()] = GRAY;
                        // Child frame = parent's digits/locals with the
                        // write at `wi` patched in.
                        let delta = t as i32 - digits[base + wi] as i32;
                        digits.extend_from_within(base..base + k);
                        locals.extend_from_within(base..base + k);
                        let child = base + k;
                        digits[child + wi] = t;
                        for idx in 0..w {
                            let j = plan.writers[wi * w + idx];
                            let lj = &mut locals[child + j];
                            *lj = LocalStateId(
                                (lj.0 as i32 + delta * plan.weights[idx] as i32) as u32,
                            );
                        }
                        frames.push((succ, 0, 0));
                        max_depth = max_depth.max(frames.len() as u64);
                    }
                    GRAY => {
                        // Back edge: extract the cycle from the DFS stack.
                        let start = frames
                            .iter()
                            .position(|&(s, _, _)| s == succ)
                            .expect("gray state must be on the stack");
                        flush(steps, polls, max_depth);
                        return Ok(Some(frames[start..].iter().map(|&(s, _, _)| s).collect()));
                    }
                    _ => {}
                },
            }
        }
    }
    flush(steps, polls, max_depth);
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn agreement(actions: &[&str]) -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions(actions.iter().copied())
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    fn assert_scan_matches_naive(ring: &RingInstance, threads: usize) {
        let scan = fused_scan(ring, &EngineConfig::with_threads(threads));
        let naive_legit = ring.space().ids().filter(|&s| ring.is_legit(s)).count() as u64;
        assert_eq!(scan.legit_count, naive_legit, "legit count (t={threads})");
        assert_eq!(
            scan.illegitimate_deadlocks,
            check::illegitimate_deadlocks(ring),
            "deadlocks (t={threads})"
        );
        assert_eq!(
            scan.first_closure_violation,
            check::closure_violations(ring).into_iter().next(),
            "closure witness (t={threads})"
        );
        for s in ring.space().ids() {
            assert_eq!(scan.is_legit(s), ring.is_legit(s), "bitmap at {s}");
        }
    }

    #[test]
    fn fused_matches_naive_sweeps() {
        let protocols = [
            agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]),
            agreement(&[
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ]),
        ];
        for p in &protocols {
            for k in 1..=6 {
                let ring = RingInstance::symmetric(p, k).unwrap();
                assert_scan_matches_naive(&ring, 1);
                assert_scan_matches_naive(&ring, 4);
            }
        }
    }

    #[test]
    fn closure_violation_witness_is_sequential_first() {
        let p = Protocol::builder("bad", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        let seq = fused_scan(&ring, &EngineConfig::sequential());
        for threads in [2, 3, 8] {
            let par = fused_scan(&ring, &EngineConfig::with_threads(threads));
            assert_eq!(par.first_closure_violation, seq.first_closure_violation);
        }
        assert_eq!(
            seq.first_closure_violation,
            check::closure_violations(&ring).into_iter().next()
        );
    }

    #[test]
    fn bidirectional_windows_scan_correctly() {
        // w=3 > K=2 exercises window wrap-around in the fused path.
        let p = Protocol::builder("bi", Domain::numeric("x", 2), Locality::bidirectional())
            .action("x[r-1] == x[r+1] && x[r] != x[r-1] -> x[r] := x[r-1]")
            .unwrap()
            .legit("x[r] == x[r-1] && x[r] == x[r+1]")
            .unwrap()
            .build()
            .unwrap();
        for k in 2..=5 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            assert_scan_matches_naive(&ring, 1);
            assert_scan_matches_naive(&ring, 3);
        }
    }

    #[test]
    fn cancelled_token_aborts_scan_and_search() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let fired = CancelToken::new();
        fired.cancel();
        for threads in [1, 3] {
            assert_eq!(
                fused_scan_bounded(&ring, &EngineConfig::with_threads(threads), &fired).err(),
                Some(Cancelled)
            );
        }
        let scan = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(find_livelock_bounded(&ring, &scan, &fired), Err(Cancelled));
        // An expired deadline behaves like an explicit cancel.
        let expired = CancelToken::with_deadline(Instant::now());
        assert!(expired.is_cancelled());
        assert!(fused_scan_bounded(&ring, &EngineConfig::sequential(), &expired).is_err());
    }

    #[test]
    fn linked_tokens_fire_with_their_parent() {
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::linked(parent.clone());
        let sibling =
            CancelToken::linked_with_deadline(parent.clone(), Instant::now() + ONE_MINUTE);
        assert!(!child.is_cancelled());
        assert!(!sibling.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(sibling.is_cancelled());

        // Cancelling a child never propagates up to the parent.
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::linked(parent.clone());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());

        // A child's own deadline fires without touching the parent.
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::linked_with_deadline(parent.clone(), Instant::now());
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    const ONE_MINUTE: std::time::Duration = std::time::Duration::from_secs(60);

    #[test]
    fn unfired_token_leaves_results_identical() {
        let p = agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]);
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        let token = CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(60));
        let bounded = fused_scan_bounded(&ring, &EngineConfig::sequential(), &token).unwrap();
        let plain = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(bounded.legit_count, plain.legit_count);
        assert_eq!(bounded.illegitimate_deadlocks, plain.illegitimate_deadlocks);
        assert_eq!(
            find_livelock_bounded(&ring, &bounded, &token).unwrap(),
            find_livelock_with(&ring, &plain)
        );
    }

    #[test]
    fn metered_counters_are_thread_count_invariant() {
        // The deterministic counter set must be byte-identical for every
        // engine thread count; `closure_checks` (per-chunk short-circuit)
        // is the one scheduling-dependent tally and is excluded from the
        // deterministic JSON by construction.
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let token = CancelToken::new();

        let run = |threads: usize| {
            let counters = EngineCounters::new();
            let scan = fused_scan_metered(
                &ring,
                &EngineConfig::with_threads(threads),
                &token,
                Some(&counters),
            )
            .unwrap();
            let livelock = find_livelock_metered(&ring, &scan, &token, Some(&counters)).unwrap();
            (counters.snapshot(), scan, livelock)
        };

        let (seq, scan, livelock) = run(1);
        assert_eq!(seq.states_visited, ring.space().len());
        assert_eq!(seq.legit_states, scan.legit_count);
        assert_eq!(
            seq.deadlocks_found,
            scan.illegitimate_deadlocks.len() as u64
        );
        assert!(livelock.is_some(), "this protocol livelocks at K=6");
        assert!(seq.dfs_steps > 0);
        assert!(seq.dfs_max_depth > 0);
        assert!(seq.cancel_polls > 0);

        for threads in [2, 4] {
            let (par, _, _) = run(threads);
            assert_eq!(
                par.deterministic_json(),
                seq.deterministic_json(),
                "threads={threads}"
            );
        }

        // Metered with `None` changes no result.
        let plain = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(plain.legit_count, scan.legit_count);
    }

    #[test]
    fn livelock_with_bitmap_matches_plain() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        for k in 2..=6 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let scan = fused_scan(&ring, &EngineConfig::sequential());
            let a = find_livelock_with(&ring, &scan);
            let b = check::find_livelock(&ring);
            assert_eq!(a, b, "K={k}");
        }
    }
}

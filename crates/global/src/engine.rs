//! Fused, parallel, allocation-free convergence scanning.
//!
//! [`ConvergenceReport::check`](crate::check::ConvergenceReport::check)
//! needs three facts about the global state space: the size of `I(K)`, the
//! deadlocks outside `I(K)`, and whether `I(K)` is closed. The naive
//! formulation makes three separate sweeps, each re-deriving every local
//! state through [`GlobalSpace::value_at`](crate::state::GlobalSpace)
//! (a `pow` per digit). [`fused_scan`] computes all three in **one** pass:
//!
//! * global ids are enumerated in dense ascending order while a mixed-radix
//!   digit buffer is incremented in place, so no division or `pow` is spent
//!   on decoding;
//! * each state's `K` local window ids are assembled straight from the
//!   digit buffer, and legitimacy/enabledness are memoized per-local-state
//!   class bits ([`RingInstance`] builds the tables at construction);
//! * the closure check for a legitimate state only re-encodes the ≤ `w`
//!   windows that actually cover the written position;
//! * the sweep also records a legitimacy bitmap that the livelock search
//!   ([`find_livelock_with`]) reuses, making `is_legit` a single bit test
//!   during the DFS.
//!
//! The id range is split into 64-aligned chunks handed to a scoped thread
//! pool ([`EngineConfig::threads`]); each chunk produces an independent
//! [`ChunkOut`]-style summary and the summaries are merged in ascending
//! chunk order, so **the result is bit-for-bit identical for every thread
//! count**, including the identity of the first closure violation and the
//! order of the deadlock list.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use selfstab_protocol::{LocalStateId, Value};
use selfstab_telemetry::EngineCounters;

use crate::instance::{Move, RingInstance, CLS_ENABLED, CLS_LEGIT};
use crate::state::GlobalStateId;
use crate::symmetry;

/// How many states/DFS steps a scan processes between cancellation polls.
/// Large enough that the poll (one relaxed load, occasionally a clock read)
/// is invisible in profiles, small enough that cancellation lands within
/// microseconds.
const CANCEL_STRIDE: u64 = 4096;

/// Cooperative cancellation for long-running scans: an explicit flag
/// (settable from any thread, e.g. a Ctrl-C handler) combined with an
/// optional wall-clock deadline and an optional **parent** token. Scans
/// poll the token every [`CANCEL_STRIDE`] states and bail out with
/// [`Cancelled`].
///
/// Parent linking lets one broadcast token (a SIGINT hook, a chaos
/// harness's forced-cancel injector) abort many per-job tokens at once:
/// a child fires as soon as its own flag/deadline fires *or* its parent
/// does, and a fired parent latches into the child's flag so subsequent
/// polls stay one relaxed load.
#[derive(Debug)]
pub struct CancelToken {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelToken>>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: None,
            parent: None,
        }
    }

    /// A token that fires once `deadline` passes (or on explicit cancel).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
            parent: None,
        }
    }

    /// A token that also fires whenever `parent` fires. Cancelling the
    /// child never cancels the parent.
    pub fn linked(parent: Arc<CancelToken>) -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: None,
            parent: Some(parent),
        }
    }

    /// A token with both a private deadline and a parent link: it fires on
    /// its own deadline, on explicit cancel, or when `parent` fires.
    pub fn linked_with_deadline(parent: Arc<CancelToken>, deadline: Instant) -> Self {
        CancelToken {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
            parent: Some(parent),
        }
    }

    /// Fires the token; every in-flight scan polling it will abort.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once the token has fired, its deadline has passed, or its
    /// parent (if any) has fired. A passed deadline or fired parent latches
    /// the flag so later polls skip the clock read / parent walk.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(parent) = &self.parent {
            if parent.is_cancelled() {
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// A scan was aborted by its [`CancelToken`] before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scan cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// How the engine exploits rotation symmetry of ring instances.
///
/// Whatever the mode, a completed check produces the **byte-identical**
/// report: same counts, same witness states, same orderings. The mode only
/// chooses how much work is spent getting there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Pick per instance with the crossover heuristic: reduced when the
    /// instance is rotation-symmetric, the scan is sequential, and the
    /// space is large enough (`K ≥ 6` and `d^K ≥ 32768`) that necklace
    /// enumeration beats the dense sweep. Small spaces stay on the full
    /// path, where the dense loop's constant factor wins.
    #[default]
    Auto,
    /// Always enumerate all `d^K` dense states.
    Full,
    /// Enumerate one representative per rotation orbit (`~d^K / K`
    /// necklaces) and lift counts by orbit size; the livelock search runs
    /// on the quotient graph first. Sequential by construction; silently
    /// degrades to [`SymmetryMode::Full`] on instances that are not
    /// rotation-symmetric (heterogeneous rings), where the reduction does
    /// not apply.
    Reduced,
}

impl std::str::FromStr for SymmetryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(SymmetryMode::Auto),
            "full" => Ok(SymmetryMode::Full),
            "reduced" => Ok(SymmetryMode::Reduced),
            other => Err(format!(
                "symmetry mode must be `auto`, `full` or `reduced`, got `{other}`"
            )),
        }
    }
}

/// Auto-mode crossover: reduced only from this ring size up…
const AUTO_REDUCED_MIN_K: usize = 6;
/// …and only once the dense space reaches this many states.
const AUTO_REDUCED_MIN_STATES: u64 = 32768;

/// Tuning knobs of the fused engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the scan. `0` and `1` both mean sequential
    /// (the default, so results are reproducible without opting in).
    pub threads: usize,
    /// Rotation-symmetry reduction policy (default [`SymmetryMode::Auto`]).
    pub symmetry: SymmetryMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            symmetry: SymmetryMode::Auto,
        }
    }
}

impl EngineConfig {
    /// A sequential configuration.
    pub fn sequential() -> Self {
        EngineConfig::default()
    }

    /// A configuration with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads,
            ..EngineConfig::default()
        }
    }

    /// The same configuration with the given symmetry mode.
    pub fn with_symmetry(self, symmetry: SymmetryMode) -> Self {
        EngineConfig { symmetry, ..self }
    }

    /// Resolves the symmetry policy against a concrete instance: `true`
    /// when this scan should run the necklace-reduced path. The reduced
    /// scan is inherently sequential, so `Auto` also requires a sequential
    /// configuration; an explicit `Reduced` wins over `threads` (the scan
    /// simply runs sequentially) but still degrades to the full path on
    /// instances the reduction does not apply to.
    fn use_reduced(&self, ring: &RingInstance) -> bool {
        match self.symmetry {
            SymmetryMode::Full => false,
            SymmetryMode::Reduced => ring.is_rotation_symmetric(),
            SymmetryMode::Auto => {
                ring.is_rotation_symmetric()
                    && self.threads <= 1
                    && ring.ring_size() >= AUTO_REDUCED_MIN_K
                    && ring.space().len() >= AUTO_REDUCED_MIN_STATES
            }
        }
    }
}

/// The result of one fused sweep over the global state space.
#[derive(Clone, Debug)]
pub struct FusedScan {
    /// Number of states in `I(K)`.
    pub legit_count: u64,
    /// All global deadlocks outside `I(K)`, in ascending id order.
    pub illegitimate_deadlocks: Vec<GlobalStateId>,
    /// The first closure violation in (state, process, target) order, if
    /// `I(K)` is not closed.
    pub first_closure_violation: Option<(GlobalStateId, Move)>,
    /// Legitimacy bitmap: bit `id` is set iff `id ∈ I(K)`.
    legit_bits: Vec<u64>,
    /// Set by the reduced scan: every illegitimate necklace representative,
    /// in ascending id order — the livelock frontier. `None` after a full
    /// scan, which tells [`find_livelock_with`] to walk the dense space.
    frontier: Option<Vec<GlobalStateId>>,
}

impl FusedScan {
    /// Bitmap lookup: `true` iff `gid ∈ I(K)`.
    pub fn is_legit(&self, gid: GlobalStateId) -> bool {
        self.legit_bits[(gid.0 / 64) as usize] >> (gid.0 % 64) & 1 == 1
    }
}

/// Per-chunk accumulator; chunks merge associatively in ascending order.
struct ChunkOut {
    legit_count: u64,
    deadlocks: Vec<GlobalStateId>,
    violation: Option<(GlobalStateId, Move)>,
    /// The bitmap words covering the chunk's (64-aligned) id range.
    bits: Vec<u64>,
}

/// Precomputed window geometry shared by every chunk of one scan.
struct ScanPlan {
    ring_size: usize,
    domain_size: u64,
    window_width: usize,
    /// `positions[i * w + idx]` = ring position read by window slot `idx`
    /// of process `i` (wrap-around applied).
    positions: Vec<usize>,
    /// `weights[idx]` = `d^(w-1-idx)`, the significance of window slot
    /// `idx` in the local state id.
    weights: Vec<u32>,
    /// `tables[i]` = transition-table index of process `i`.
    tables: Vec<usize>,
    /// `writers[i * w + idx]` = the process whose window slot `idx` reads
    /// position `i` — i.e. the candidates whose local state changes when
    /// `x_i` is written.
    writers: Vec<usize>,
    /// `state_weights[i]` = `d^(K-1-i)`, the significance of ring position
    /// `i` in the global state id (matching [`GlobalSpace`]'s encoding).
    state_weights: Vec<u64>,
}

impl ScanPlan {
    fn new(ring: &RingInstance) -> Self {
        let k = ring.ring_size();
        let d = ring.space().domain_size() as u64;
        let loc = ring.locality();
        let w = loc.window_width();
        let mut positions = Vec::with_capacity(k * w);
        let mut writers = Vec::with_capacity(k * w);
        for i in 0..k {
            for idx in 0..w {
                let off = loc.offset_of(idx);
                positions.push((i as isize + off).rem_euclid(k as isize) as usize);
                writers.push((i as isize - off).rem_euclid(k as isize) as usize);
            }
        }
        let mut weights = vec![1u32; w];
        for idx in (0..w.saturating_sub(1)).rev() {
            weights[idx] = weights[idx + 1] * d as u32;
        }
        let mut state_weights = vec![1u64; k];
        for i in (0..k.saturating_sub(1)).rev() {
            state_weights[i] = state_weights[i + 1] * d;
        }
        ScanPlan {
            ring_size: k,
            domain_size: d,
            window_width: w,
            positions,
            weights,
            tables: (0..k).map(|i| ring.table_index(i)).collect(),
            writers,
            state_weights,
        }
    }

    /// The local state id of process `i` given the digit buffer.
    #[inline]
    fn local_id(&self, digits: &[Value], i: usize) -> LocalStateId {
        let w = self.window_width;
        let mut id: u32 = 0;
        for idx in 0..w {
            id += self.weights[idx] * digits[self.positions[i * w + idx]] as u32;
        }
        LocalStateId(id)
    }

    /// Like [`ScanPlan::local_id`], with position `pos` overridden to `v`
    /// (evaluating a window after a hypothetical write).
    #[inline]
    fn local_id_with(&self, digits: &[Value], i: usize, pos: usize, v: Value) -> LocalStateId {
        let w = self.window_width;
        let mut id: u32 = 0;
        for idx in 0..w {
            let p = self.positions[i * w + idx];
            let digit = if p == pos { v } else { digits[p] };
            id += self.weights[idx] * digit as u32;
        }
        LocalStateId(id)
    }
}

/// Scans ids `start..end`, where `start` is 64-aligned (or 0). Returns
/// `None` if the token fired mid-chunk.
///
/// Telemetry discipline: the loop tallies into plain locals and flushes
/// them into `counters` **once**, after the chunk completes — so with
/// `counters: None` the loop is bit-identical to the uninstrumented one,
/// and with `Some` the per-state cost is still zero.
fn scan_chunk(
    ring: &RingInstance,
    plan: &ScanPlan,
    start: u64,
    end: u64,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Option<ChunkOut> {
    let k = plan.ring_size;
    let d = plan.domain_size;
    let mut digits = ring.space().decode(GlobalStateId(start));
    let mut locals: Vec<LocalStateId> = vec![LocalStateId(0); k];

    let mut out = ChunkOut {
        legit_count: 0,
        deadlocks: Vec::new(),
        violation: None,
        bits: vec![0u64; ((end - start) as usize).div_ceil(64)],
    };
    let mut polls: u64 = 0;
    let mut closure_checks: u64 = 0;

    for gid in start..end {
        if gid % CANCEL_STRIDE == 0 {
            polls += 1;
            if cancel.is_cancelled() {
                return None;
            }
        }
        let mut all_legit = true;
        let mut any_enabled = false;
        for (i, slot) in locals.iter_mut().enumerate() {
            let ls = plan.local_id(&digits, i);
            *slot = ls;
            let c = ring.class_by_table(plan.tables[i], ls);
            all_legit &= c & CLS_LEGIT != 0;
            any_enabled |= c & CLS_ENABLED != 0;
        }

        if all_legit {
            out.legit_count += 1;
            out.bits[((gid - start) / 64) as usize] |= 1 << (gid % 64);
            if out.violation.is_none() {
                closure_checks += 1;
                out.violation = first_violation_at(ring, plan, &digits, &locals, gid);
            }
        } else if !any_enabled {
            out.deadlocks.push(GlobalStateId(gid));
        }

        // Mixed-radix increment: x_{K-1} is the least significant digit.
        for slot in digits.iter_mut().rev() {
            *slot += 1;
            if (*slot as u64) < d {
                break;
            }
            *slot = 0;
        }
    }
    if let Some(c) = counters {
        c.states_visited.fetch_add(end - start, Ordering::Relaxed);
        c.legit_states.fetch_add(out.legit_count, Ordering::Relaxed);
        c.deadlocks_found
            .fetch_add(out.deadlocks.len() as u64, Ordering::Relaxed);
        c.closure_checks
            .fetch_add(closure_checks, Ordering::Relaxed);
        c.cancel_polls.fetch_add(polls, Ordering::Relaxed);
    }
    Some(out)
}

/// The first closure violation out of the legitimate state `gid`, in
/// (process, target) order, or `None` if every move stays in `I(K)`.
///
/// Only the ≤ `w` processes whose window covers the written position are
/// re-encoded; all others keep their (legitimate) local state.
fn first_violation_at(
    ring: &RingInstance,
    plan: &ScanPlan,
    digits: &[Value],
    locals: &[LocalStateId],
    gid: u64,
) -> Option<(GlobalStateId, Move)> {
    let w = plan.window_width;
    for (i, &ls) in locals.iter().enumerate() {
        for &t in ring.targets_by_table(plan.tables[i], ls) {
            let stays_legit = (0..w).all(|idx| {
                let j = plan.writers[i * w + idx];
                let ls = plan.local_id_with(digits, j, i, t);
                ring.class_by_table(plan.tables[j], ls) & CLS_LEGIT != 0
            });
            if !stays_legit {
                return Some((
                    GlobalStateId(gid),
                    Move {
                        process: i,
                        target: t,
                    },
                ));
            }
        }
    }
    None
}

/// The necklace-reduced sweep: enumerate one representative per rotation
/// orbit (FKM, ascending id order) and lift every verdict back to the full
/// space by orbit size. Produces a [`FusedScan`] **byte-identical** to the
/// dense sweep's:
///
/// * `legit_count` — legitimacy is rotation-invariant, so each legitimate
///   necklace contributes its whole orbit (its minimal period `p`);
/// * `illegitimate_deadlocks` — deadlock is rotation-invariant; each
///   deadlocked necklace's orbit is expanded via the `O(1)` id rotation
///   and the merged list sorted ascending, exactly the dense scan's order;
/// * `first_closure_violation` — the set of legitimate states with a
///   closure-violating move is rotation-closed, and the dense-minimal
///   member of a rotation-closed set is always a necklace (its rotations
///   are in the set and it is minimal among them), so the first violating
///   representative in ascending necklace order *is* the dense scan's
///   witness state, and re-deriving its first (process, target) move is
///   position-exact;
/// * the legitimacy bitmap — filled orbit-by-orbit with the rotation trick.
///
/// The scan also records the **frontier**: every illegitimate necklace, in
/// ascending order — the only roots the reduced livelock search needs.
///
/// Counter discipline: `states_visited` stays orbit-weighted (it totals
/// `d^K` on a completed scan, same as the dense sweep), while
/// `orbits_visited` counts the necklaces actually enumerated.
fn scan_reduced(
    ring: &RingInstance,
    plan: &ScanPlan,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Option<FusedScan> {
    let k = plan.ring_size;
    let d = ring.space().domain_size();
    let n = ring.space().len();
    let top = plan.state_weights[0]; // d^(K-1)
    let rotate = |id: u64| (id % top) * d as u64 + id / top;

    let mut locals: Vec<LocalStateId> = vec![LocalStateId(0); k];
    let mut scan = FusedScan {
        legit_count: 0,
        illegitimate_deadlocks: Vec::new(),
        first_closure_violation: None,
        legit_bits: vec![0u64; (n as usize).div_ceil(64)],
        frontier: None,
    };
    let mut frontier: Vec<GlobalStateId> = Vec::new();
    let mut orbits: u64 = 0;
    let mut weighted: u64 = 0;
    let mut polls: u64 = 0;
    let mut closure_checks: u64 = 0;
    let completed = symmetry::for_each_necklace(d, k, &mut |digits, p| {
        if orbits.is_multiple_of(CANCEL_STRIDE) {
            polls += 1;
            if cancel.is_cancelled() {
                return false;
            }
        }
        orbits += 1;
        weighted += p as u64;
        let mut gid: u64 = 0;
        for (i, &v) in digits.iter().enumerate() {
            gid += v as u64 * plan.state_weights[i];
        }
        let mut all_legit = true;
        let mut any_enabled = false;
        for (i, slot) in locals.iter_mut().enumerate() {
            let ls = plan.local_id(digits, i);
            *slot = ls;
            let c = ring.class_by_table(plan.tables[i], ls);
            all_legit &= c & CLS_LEGIT != 0;
            any_enabled |= c & CLS_ENABLED != 0;
        }
        if all_legit {
            scan.legit_count += p as u64;
            let mut member = gid;
            for _ in 0..p {
                scan.legit_bits[(member / 64) as usize] |= 1 << (member % 64);
                member = rotate(member);
            }
            if scan.first_closure_violation.is_none() {
                closure_checks += 1;
                scan.first_closure_violation = first_violation_at(ring, plan, digits, &locals, gid);
            }
        } else {
            frontier.push(GlobalStateId(gid));
            if !any_enabled {
                let mut member = gid;
                for _ in 0..p {
                    scan.illegitimate_deadlocks.push(GlobalStateId(member));
                    member = rotate(member);
                }
            }
        }
        true
    });
    if !completed {
        return None;
    }
    // Orbit expansion emits each orbit contiguously but not sorted across
    // orbits; one ascending sort restores the dense scan's exact order.
    scan.illegitimate_deadlocks.sort_unstable();
    scan.frontier = Some(frontier);
    if let Some(c) = counters {
        c.states_visited.fetch_add(weighted, Ordering::Relaxed);
        c.legit_states
            .fetch_add(scan.legit_count, Ordering::Relaxed);
        c.deadlocks_found
            .fetch_add(scan.illegitimate_deadlocks.len() as u64, Ordering::Relaxed);
        c.closure_checks
            .fetch_add(closure_checks, Ordering::Relaxed);
        c.cancel_polls.fetch_add(polls, Ordering::Relaxed);
        c.orbits_visited.fetch_add(orbits, Ordering::Relaxed);
    }
    Some(scan)
}

/// Runs the fused sweep. With `config.threads <= 1` the scan is a single
/// sequential chunk; otherwise 64-aligned chunks are distributed over
/// scoped worker threads and merged in ascending chunk order, so the
/// result is identical to the sequential one.
pub fn fused_scan(ring: &RingInstance, config: &EngineConfig) -> FusedScan {
    fused_scan_bounded(ring, config, &CancelToken::new())
        .expect("a fresh token never cancels the scan")
}

/// Like [`fused_scan`], aborting early with [`Cancelled`] if `cancel` fires
/// (explicitly or by deadline) before the sweep completes. A completed
/// sweep is identical to an unbounded one.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the scan finished.
pub fn fused_scan_bounded(
    ring: &RingInstance,
    config: &EngineConfig,
    cancel: &CancelToken,
) -> Result<FusedScan, Cancelled> {
    fused_scan_metered(ring, config, cancel, None)
}

/// Like [`fused_scan_bounded`], optionally flushing work counters into
/// `counters` (states visited, legitimate states, deadlocks, closure
/// checks, cancel polls). Counters are accumulated per chunk in plain
/// locals and flushed once at chunk end, so the scan loop pays nothing;
/// with `counters: None` this **is** [`fused_scan_bounded`].
///
/// For a *completed* scan every flushed counter except `closure_checks`
/// is identical for every `config.threads` value (`closure_checks`
/// short-circuits per chunk, so its tally depends on the chunking).
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the scan finished
/// (nothing is flushed for chunks that did not complete).
pub fn fused_scan_metered(
    ring: &RingInstance,
    config: &EngineConfig,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Result<FusedScan, Cancelled> {
    let n = ring.space().len();
    let plan = ScanPlan::new(ring);
    let threads = config.threads.max(1);

    if config.use_reduced(ring) {
        return scan_reduced(ring, &plan, cancel, counters).ok_or(Cancelled);
    }

    if threads == 1 {
        let out = scan_chunk(ring, &plan, 0, n, cancel, counters).ok_or(Cancelled)?;
        return Ok(FusedScan {
            legit_count: out.legit_count,
            illegitimate_deadlocks: out.deadlocks,
            first_closure_violation: out.violation,
            legit_bits: out.bits,
            frontier: None,
        });
    }

    // Aim for several chunks per worker so stragglers balance out, but
    // keep chunks 64-aligned so each owns whole bitmap words.
    let target = (n / (threads as u64 * 8)).max(4096);
    let chunk = target.div_ceil(64) * 64;
    let num_chunks = n.div_ceil(chunk) as usize;
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, ChunkOut)>> = Mutex::new(Vec::with_capacity(num_chunks));

    std::thread::scope(|scope| {
        for _ in 0..threads.min(num_chunks) {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks as u64 || cancel.is_cancelled() {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(n);
                match scan_chunk(ring, &plan, start, end, cancel, counters) {
                    Some(out) => results.lock().unwrap().push((c as usize, out)),
                    None => break,
                }
            });
        }
    });

    let mut parts = results.into_inner().unwrap();
    if parts.len() != num_chunks {
        return Err(Cancelled);
    }
    parts.sort_unstable_by_key(|(c, _)| *c);

    let mut scan = FusedScan {
        legit_count: 0,
        illegitimate_deadlocks: Vec::new(),
        first_closure_violation: None,
        legit_bits: Vec::with_capacity((n as usize).div_ceil(64)),
        frontier: None,
    };
    for (_, part) in parts {
        scan.legit_count += part.legit_count;
        scan.illegitimate_deadlocks.extend(part.deadlocks);
        if scan.first_closure_violation.is_none() {
            scan.first_closure_violation = part.violation;
        }
        scan.legit_bits.extend(part.bits);
    }
    Ok(scan)
}

/// Livelock search reusing a fused scan's legitimacy bitmap: the tricolor
/// DFS of [`find_livelock_where`](crate::check::find_livelock_where) with
/// `is_legit` reduced to a bit test.
///
/// On top of the bitmap, the DFS keeps a per-frame arena of ring digits and
/// local window ids so a frame's enabled moves are slice lookups: a child
/// frame's digits/locals are copied from its parent and patched in `O(w)`
/// (only the ≤ `w` windows covering the written position change), and the
/// successor's global id is `parent ± Δ·d^(K-1-i)` — no `pow`, and division
/// only when decoding a DFS root. Visit order is identical to
/// [`find_livelock_where`](crate::check::find_livelock_where), so both
/// return the same cycle witness.
pub fn find_livelock_with(ring: &RingInstance, scan: &FusedScan) -> Option<Vec<GlobalStateId>> {
    find_livelock_bounded(ring, scan, &CancelToken::new())
        .expect("a fresh token never cancels the search")
}

/// Like [`find_livelock_with`], aborting early with [`Cancelled`] if
/// `cancel` fires before the search completes. A completed search returns
/// the same witness as the unbounded one.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the search finished.
pub fn find_livelock_bounded(
    ring: &RingInstance,
    scan: &FusedScan,
    cancel: &CancelToken,
) -> Result<Option<Vec<GlobalStateId>>, Cancelled> {
    find_livelock_metered(ring, scan, cancel, None)
}

/// Like [`find_livelock_bounded`], optionally flushing work counters into
/// `counters` (DFS steps, deepest stack, cancel polls). The search is
/// sequential, so for a completed search every flushed value is a pure
/// function of the instance (and of the scan's symmetry mode). Counters
/// accumulate in plain locals and flush once when the search completes; a
/// [`Cancelled`] search flushes nothing.
///
/// When `scan` came from the reduced sweep (it carries a frontier of
/// illegitimate necklaces), the search runs **verdict-first**: a tricolor
/// DFS over the rotation-quotient graph — roots drawn from the frontier,
/// every successor canonicalized with Booth's algorithm — decides whether
/// any livelock exists at `~1/K` of the dense walk's cost. A quotient
/// cycle exists *iff* a dense cycle does (rotation commutes with
/// transitions, and a quotient cycle lifts by composing rotated copies of
/// itself until the accumulated rotation closes), so a `None` verdict is
/// final. On a positive verdict the dense walk runs to extract the exact
/// witness the full engine reports — cheap, because it short-circuits at
/// its first back edge — keeping the report byte-identical in both modes.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the search finished.
pub fn find_livelock_metered(
    ring: &RingInstance,
    scan: &FusedScan,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Result<Option<Vec<GlobalStateId>>, Cancelled> {
    match &scan.frontier {
        None => find_livelock_full(ring, scan, cancel, counters),
        Some(frontier) => {
            if quotient_has_cycle(ring, scan, frontier, cancel, counters)? {
                find_livelock_full(ring, scan, cancel, counters)
            } else {
                Ok(None)
            }
        }
    }
}

/// The dense-order tricolor DFS over every illegitimate state (the full
/// engine's livelock walk; see [`find_livelock_metered`] for dispatch).
fn find_livelock_full(
    ring: &RingInstance,
    scan: &FusedScan,
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Result<Option<Vec<GlobalStateId>>, Cancelled> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;

    let plan = ScanPlan::new(ring);
    let k = plan.ring_size;
    let w = plan.window_width;
    let n = ring.space().len() as usize;
    let mut color = vec![WHITE; n];
    // DFS frames: (state, next process to try, next target index within
    // that process). The parallel arenas hold each frame's `K` ring digits
    // and `K` local window ids; they grow once and are reused thereafter.
    let mut frames: Vec<(GlobalStateId, usize, usize)> = Vec::new();
    let mut digits: Vec<Value> = Vec::new();
    let mut locals: Vec<LocalStateId> = Vec::new();
    let mut steps: u64 = 0;
    let mut polls: u64 = 0;
    let mut max_depth: u64 = 0;
    let flush = |steps: u64, polls: u64, max_depth: u64| {
        if let Some(c) = counters {
            c.dfs_steps.fetch_add(steps, Ordering::Relaxed);
            c.cancel_polls.fetch_add(polls, Ordering::Relaxed);
            c.record_dfs_depth(max_depth);
        }
    };

    for root in ring.space().ids() {
        if color[root.index()] != WHITE || scan.is_legit(root) {
            continue;
        }
        color[root.index()] = GRAY;
        frames.clear();
        digits.clear();
        locals.clear();
        frames.push((root, 0, 0));
        max_depth = max_depth.max(1);
        digits.extend_from_slice(&ring.space().decode(root));
        for i in 0..k {
            locals.push(plan.local_id(&digits, i));
        }

        while !frames.is_empty() {
            if steps.is_multiple_of(CANCEL_STRIDE) {
                polls += 1;
                if cancel.is_cancelled() {
                    return Err(Cancelled);
                }
            }
            steps += 1;
            let base = (frames.len() - 1) * k;
            let &mut (state, ref mut proc, ref mut tidx) =
                frames.last_mut().expect("loop guard ensures a frame");
            // Advance the cursor to the next successor inside ¬I.
            let mut next = None;
            while *proc < k {
                let targets = ring.targets_by_table(plan.tables[*proc], locals[base + *proc]);
                if *tidx < targets.len() {
                    let t = targets[*tidx];
                    *tidx += 1;
                    let delta = t as i64 - digits[base + *proc] as i64;
                    let succ = GlobalStateId(
                        (state.0 as i64 + delta * plan.state_weights[*proc] as i64) as u64,
                    );
                    if !scan.is_legit(succ) {
                        next = Some((succ, *proc, t));
                        break;
                    }
                } else {
                    *proc += 1;
                    *tidx = 0;
                }
            }
            match next {
                None => {
                    color[state.index()] = BLACK;
                    frames.pop();
                    digits.truncate(base);
                    locals.truncate(base);
                }
                Some((succ, wi, t)) => match color[succ.index()] {
                    WHITE => {
                        color[succ.index()] = GRAY;
                        // Child frame = parent's digits/locals with the
                        // write at `wi` patched in.
                        let delta = t as i32 - digits[base + wi] as i32;
                        digits.extend_from_within(base..base + k);
                        locals.extend_from_within(base..base + k);
                        let child = base + k;
                        digits[child + wi] = t;
                        for idx in 0..w {
                            let j = plan.writers[wi * w + idx];
                            let lj = &mut locals[child + j];
                            *lj = LocalStateId(
                                (lj.0 as i32 + delta * plan.weights[idx] as i32) as u32,
                            );
                        }
                        frames.push((succ, 0, 0));
                        max_depth = max_depth.max(frames.len() as u64);
                    }
                    GRAY => {
                        // Back edge: extract the cycle from the DFS stack.
                        let start = frames
                            .iter()
                            .position(|&(s, _, _)| s == succ)
                            .expect("gray state must be on the stack");
                        flush(steps, polls, max_depth);
                        return Ok(Some(frames[start..].iter().map(|&(s, _, _)| s).collect()));
                    }
                    _ => {}
                },
            }
        }
    }
    flush(steps, polls, max_depth);
    Ok(None)
}

/// Livelock **verdict** on the rotation-quotient graph: a tricolor DFS
/// whose nodes are canonical (necklace) ids and whose edges are the dense
/// transitions with the successor canonicalized (Booth, `O(K)`). Roots
/// come from the reduced scan's frontier — every illegitimate necklace, in
/// ascending order — so the walk touches `~1/K` of the dense search's
/// nodes.
///
/// Soundness of the verdict (both directions):
///
/// * a dense cycle projects to a closed walk of canonical ids (rotation
///   commutes with transitions and preserves illegitimacy), and a closed
///   walk contains a cycle — so a livelock implies a quotient cycle;
/// * a quotient cycle `r_0 → … → r_m = r_0` lifts: each quotient edge is a
///   dense edge up to a rotation, and composing the walk `j` times
///   multiplies the accumulated rotation until it closes (`j` divides
///   `K`), yielding a genuine dense cycle through illegitimate states.
///
/// Note the quotient graph may contain self-loops even though the dense
/// graph never does (identity writes are rejected at construction): a move
/// can map a state onto a nontrivial rotation of itself. The GRAY check
/// catches these as cycles, which the lifting argument shows is correct.
fn quotient_has_cycle(
    ring: &RingInstance,
    scan: &FusedScan,
    frontier: &[GlobalStateId],
    cancel: &CancelToken,
    counters: Option<&EngineCounters>,
) -> Result<bool, Cancelled> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;

    let plan = ScanPlan::new(ring);
    let k = plan.ring_size;
    let n = ring.space().len() as usize;
    // Dense-indexed color map touched only at canonical ids; the dense
    // footprint keeps lookups branch-free and mirrors the full walk.
    let mut color = vec![WHITE; n];
    let mut frames: Vec<(GlobalStateId, usize, usize)> = Vec::new();
    let mut digits: Vec<Value> = Vec::new();
    let mut locals: Vec<LocalStateId> = Vec::new();
    let mut scratch: Vec<Value> = vec![0; k];
    let mut steps: u64 = 0;
    let mut polls: u64 = 0;
    let mut max_depth: u64 = 0;
    let mut pushes: u64 = 0;
    let mut canonicalizations: u64 = 0;
    let flush = |steps: u64, polls: u64, max_depth: u64, pushes: u64, canonicalizations: u64| {
        if let Some(c) = counters {
            c.dfs_steps.fetch_add(steps, Ordering::Relaxed);
            c.cancel_polls.fetch_add(polls, Ordering::Relaxed);
            c.record_dfs_depth(max_depth);
            c.frontier_pushes.fetch_add(pushes, Ordering::Relaxed);
            c.canonicalizations
                .fetch_add(canonicalizations, Ordering::Relaxed);
        }
    };

    for &root in frontier {
        if color[root.index()] != WHITE {
            continue;
        }
        color[root.index()] = GRAY;
        frames.clear();
        digits.clear();
        locals.clear();
        frames.push((root, 0, 0));
        pushes += 1;
        max_depth = max_depth.max(1);
        digits.extend_from_slice(&ring.space().decode(root));
        for i in 0..k {
            locals.push(plan.local_id(&digits, i));
        }

        while !frames.is_empty() {
            if steps.is_multiple_of(CANCEL_STRIDE) {
                polls += 1;
                if cancel.is_cancelled() {
                    return Err(Cancelled);
                }
            }
            steps += 1;
            let base = (frames.len() - 1) * k;
            let &mut (state, ref mut proc, ref mut tidx) =
                frames.last_mut().expect("loop guard ensures a frame");
            // Advance to the next successor inside ¬I, canonicalized.
            let mut next = None;
            while *proc < k {
                let targets = ring.targets_by_table(plan.tables[*proc], locals[base + *proc]);
                if *tidx < targets.len() {
                    let t = targets[*tidx];
                    *tidx += 1;
                    let delta = t as i64 - digits[base + *proc] as i64;
                    let succ = GlobalStateId(
                        (state.0 as i64 + delta * plan.state_weights[*proc] as i64) as u64,
                    );
                    // Legitimacy is rotation-invariant: test the raw id.
                    if !scan.is_legit(succ) {
                        scratch.copy_from_slice(&digits[base..base + k]);
                        scratch[*proc] = t;
                        canonicalizations += 1;
                        let r = symmetry::min_rotation(&scratch);
                        let mut canon: u64 = 0;
                        for (slot, &w) in plan.state_weights.iter().enumerate() {
                            let p = if r + slot < k { r + slot } else { r + slot - k };
                            canon += scratch[p] as u64 * w;
                        }
                        next = Some((GlobalStateId(canon), r));
                        break;
                    }
                } else {
                    *proc += 1;
                    *tidx = 0;
                }
            }
            match next {
                None => {
                    color[state.index()] = BLACK;
                    frames.pop();
                    digits.truncate(base);
                    locals.truncate(base);
                }
                Some((succ, r)) => match color[succ.index()] {
                    WHITE => {
                        color[succ.index()] = GRAY;
                        // Child frame: the canonical rotation of the patched
                        // digits; the windows are remapped wholesale, so the
                        // locals are recomputed rather than patched.
                        for slot in 0..k {
                            let p = if r + slot < k { r + slot } else { r + slot - k };
                            digits.push(scratch[p]);
                        }
                        let child = base + k;
                        for i in 0..k {
                            locals.push(plan.local_id(&digits[child..child + k], i));
                        }
                        frames.push((succ, 0, 0));
                        pushes += 1;
                        max_depth = max_depth.max(frames.len() as u64);
                    }
                    GRAY => {
                        // Any back edge (including a quotient self-loop)
                        // certifies a dense livelock; the caller re-runs
                        // the dense walk for the exact witness.
                        flush(steps, polls, max_depth, pushes, canonicalizations);
                        return Ok(true);
                    }
                    _ => {}
                },
            }
        }
    }
    flush(steps, polls, max_depth, pushes, canonicalizations);
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn agreement(actions: &[&str]) -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions(actions.iter().copied())
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    fn assert_scan_matches_naive(ring: &RingInstance, threads: usize) {
        let scan = fused_scan(ring, &EngineConfig::with_threads(threads));
        let naive_legit = ring.space().ids().filter(|&s| ring.is_legit(s)).count() as u64;
        assert_eq!(scan.legit_count, naive_legit, "legit count (t={threads})");
        assert_eq!(
            scan.illegitimate_deadlocks,
            check::illegitimate_deadlocks(ring),
            "deadlocks (t={threads})"
        );
        assert_eq!(
            scan.first_closure_violation,
            check::closure_violations(ring).into_iter().next(),
            "closure witness (t={threads})"
        );
        for s in ring.space().ids() {
            assert_eq!(scan.is_legit(s), ring.is_legit(s), "bitmap at {s}");
        }
    }

    #[test]
    fn fused_matches_naive_sweeps() {
        let protocols = [
            agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]),
            agreement(&[
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ]),
        ];
        for p in &protocols {
            for k in 1..=6 {
                let ring = RingInstance::symmetric(p, k).unwrap();
                assert_scan_matches_naive(&ring, 1);
                assert_scan_matches_naive(&ring, 4);
            }
        }
    }

    #[test]
    fn closure_violation_witness_is_sequential_first() {
        let p = Protocol::builder("bad", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        let seq = fused_scan(&ring, &EngineConfig::sequential());
        for threads in [2, 3, 8] {
            let par = fused_scan(&ring, &EngineConfig::with_threads(threads));
            assert_eq!(par.first_closure_violation, seq.first_closure_violation);
        }
        assert_eq!(
            seq.first_closure_violation,
            check::closure_violations(&ring).into_iter().next()
        );
    }

    #[test]
    fn bidirectional_windows_scan_correctly() {
        // w=3 > K=2 exercises window wrap-around in the fused path.
        let p = Protocol::builder("bi", Domain::numeric("x", 2), Locality::bidirectional())
            .action("x[r-1] == x[r+1] && x[r] != x[r-1] -> x[r] := x[r-1]")
            .unwrap()
            .legit("x[r] == x[r-1] && x[r] == x[r+1]")
            .unwrap()
            .build()
            .unwrap();
        for k in 2..=5 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            assert_scan_matches_naive(&ring, 1);
            assert_scan_matches_naive(&ring, 3);
        }
    }

    #[test]
    fn single_process_ring_plan_is_degenerate_but_exact() {
        // K=1 drives the `(0..k.saturating_sub(1))` state-weight loop in
        // `ScanPlan::new` to zero iterations and wraps every window slot
        // onto process 0. The plan must come out exact — `state_weights`
        // is `[1]`, the window weights are still the full `d^(w-1-idx)`
        // ladder — not silently empty, or the scan would skip the only
        // window there is.
        let p = Protocol::builder("bi", Domain::numeric("x", 2), Locality::bidirectional())
            .action("x[r-1] == x[r+1] && x[r] != x[r-1] -> x[r] := x[r-1]")
            .unwrap()
            .legit("x[r] == x[r-1] && x[r] == x[r+1]")
            .unwrap()
            .build()
            .unwrap();
        let ring = RingInstance::symmetric(&p, 1).unwrap();
        let plan = ScanPlan::new(&ring);
        assert_eq!(plan.state_weights, vec![1]);
        assert_eq!(plan.weights, vec![4, 2, 1]);
        assert_eq!(
            plan.positions,
            vec![0, 0, 0],
            "all three window slots alias process 0"
        );
        // The aliased local id of state x_0 = v is v*(4+2+1).
        for v in 0..2u8 {
            let digits = vec![v];
            assert_eq!(plan.local_id(&digits, 0).0, v as u32 * 7);
        }
        assert_scan_matches_naive(&ring, 1);
        assert_scan_matches_naive(&ring, 4);
        // With x[r-1] and x[r+1] aliasing x[r], both states are legit and
        // no guard can fire: a correct degenerate scan reports exactly
        // that instead of an empty sweep.
        let scan = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(scan.legit_count, 2);
        assert!(scan.illegitimate_deadlocks.is_empty());
    }

    #[test]
    fn cancelled_token_aborts_scan_and_search() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let fired = CancelToken::new();
        fired.cancel();
        for threads in [1, 3] {
            assert_eq!(
                fused_scan_bounded(&ring, &EngineConfig::with_threads(threads), &fired).err(),
                Some(Cancelled)
            );
        }
        let scan = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(find_livelock_bounded(&ring, &scan, &fired), Err(Cancelled));
        // An expired deadline behaves like an explicit cancel.
        let expired = CancelToken::with_deadline(Instant::now());
        assert!(expired.is_cancelled());
        assert!(fused_scan_bounded(&ring, &EngineConfig::sequential(), &expired).is_err());
    }

    #[test]
    fn linked_tokens_fire_with_their_parent() {
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::linked(parent.clone());
        let sibling =
            CancelToken::linked_with_deadline(parent.clone(), Instant::now() + ONE_MINUTE);
        assert!(!child.is_cancelled());
        assert!(!sibling.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(sibling.is_cancelled());

        // Cancelling a child never propagates up to the parent.
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::linked(parent.clone());
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());

        // A child's own deadline fires without touching the parent.
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::linked_with_deadline(parent.clone(), Instant::now());
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    const ONE_MINUTE: std::time::Duration = std::time::Duration::from_secs(60);

    #[test]
    fn unfired_token_leaves_results_identical() {
        let p = agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]);
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        let token = CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(60));
        let bounded = fused_scan_bounded(&ring, &EngineConfig::sequential(), &token).unwrap();
        let plain = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(bounded.legit_count, plain.legit_count);
        assert_eq!(bounded.illegitimate_deadlocks, plain.illegitimate_deadlocks);
        assert_eq!(
            find_livelock_bounded(&ring, &bounded, &token).unwrap(),
            find_livelock_with(&ring, &plain)
        );
    }

    #[test]
    fn metered_counters_are_thread_count_invariant() {
        // The deterministic counter set must be byte-identical for every
        // engine thread count; `closure_checks` (per-chunk short-circuit)
        // is the one scheduling-dependent tally and is excluded from the
        // deterministic JSON by construction.
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let token = CancelToken::new();

        let run = |threads: usize| {
            let counters = EngineCounters::new();
            let scan = fused_scan_metered(
                &ring,
                &EngineConfig::with_threads(threads),
                &token,
                Some(&counters),
            )
            .unwrap();
            let livelock = find_livelock_metered(&ring, &scan, &token, Some(&counters)).unwrap();
            (counters.snapshot(), scan, livelock)
        };

        let (seq, scan, livelock) = run(1);
        assert_eq!(seq.states_visited, ring.space().len());
        assert_eq!(seq.legit_states, scan.legit_count);
        assert_eq!(
            seq.deadlocks_found,
            scan.illegitimate_deadlocks.len() as u64
        );
        assert!(livelock.is_some(), "this protocol livelocks at K=6");
        assert!(seq.dfs_steps > 0);
        assert!(seq.dfs_max_depth > 0);
        assert!(seq.cancel_polls > 0);

        for threads in [2, 4] {
            let (par, _, _) = run(threads);
            assert_eq!(
                par.deterministic_json(),
                seq.deterministic_json(),
                "threads={threads}"
            );
        }

        // Metered with `None` changes no result.
        let plain = fused_scan(&ring, &EngineConfig::sequential());
        assert_eq!(plain.legit_count, scan.legit_count);
    }

    /// Full-vs-reduced byte identity on one instance: every public field
    /// of the scan, the whole bitmap, and the livelock witness.
    fn assert_reduced_matches_full(ring: &RingInstance, ctx: &str) {
        let full_cfg = EngineConfig::sequential().with_symmetry(SymmetryMode::Full);
        let red_cfg = EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced);
        let full = fused_scan(ring, &full_cfg);
        let red = fused_scan(ring, &red_cfg);
        assert_eq!(red.legit_count, full.legit_count, "{ctx}: legit_count");
        assert_eq!(
            red.illegitimate_deadlocks, full.illegitimate_deadlocks,
            "{ctx}: deadlock list"
        );
        assert_eq!(
            red.first_closure_violation, full.first_closure_violation,
            "{ctx}: closure witness"
        );
        for s in ring.space().ids() {
            assert_eq!(red.is_legit(s), full.is_legit(s), "{ctx}: bitmap at {s}");
        }
        assert_eq!(
            find_livelock_with(ring, &red),
            find_livelock_with(ring, &full),
            "{ctx}: livelock witness"
        );
    }

    #[test]
    fn reduced_scan_is_byte_identical_to_full() {
        let protocols = [
            // Converges: exercises the None-livelock fast path.
            agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]),
            // Livelocks at even K: exercises witness extraction.
            agreement(&[
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ]),
        ];
        for (pi, p) in protocols.iter().enumerate() {
            for k in 1..=8 {
                let ring = RingInstance::symmetric(p, k).unwrap();
                assert_reduced_matches_full(&ring, &format!("protocol {pi} K={k}"));
            }
        }
    }

    #[test]
    fn reduced_handles_bidirectional_windows() {
        let p = Protocol::builder("bi", Domain::numeric("x", 2), Locality::bidirectional())
            .action("x[r-1] == x[r+1] && x[r] != x[r-1] -> x[r] := x[r-1]")
            .unwrap()
            .legit("x[r] == x[r-1] && x[r] == x[r+1]")
            .unwrap()
            .build()
            .unwrap();
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            assert_reduced_matches_full(&ring, &format!("bidirectional K={k}"));
        }
    }

    #[test]
    fn reduced_closure_witness_is_the_dense_first() {
        // A protocol whose I(K) is not closed: the reduced scan must report
        // the same (state, process, target) as the dense sweep.
        let p = Protocol::builder("bad", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            assert_reduced_matches_full(&ring, &format!("unclosed K={k}"));
        }
    }

    #[test]
    fn auto_mode_crosses_over_and_explicit_modes_pin() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let token = CancelToken::new();
        let orbits = |k: usize, cfg: &EngineConfig| {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let counters = EngineCounters::new();
            fused_scan_metered(&ring, cfg, &token, Some(&counters)).unwrap();
            counters.snapshot().orbits_visited
        };
        // Below the crossover Auto stays dense; explicit Reduced engages.
        let auto = EngineConfig::sequential();
        assert_eq!(orbits(6, &auto), 0, "64 states stay on the dense path");
        assert!(orbits(6, &auto.with_symmetry(SymmetryMode::Reduced)) > 0);
        // Past the crossover (2^15 = 32768 states) Auto flips to reduced —
        // sequential only — and explicit Full pins the dense path.
        assert!(orbits(15, &auto) > 0, "auto crossover at 32768 states");
        assert_eq!(orbits(15, &EngineConfig::with_threads(4)), 0);
        assert_eq!(orbits(15, &auto.with_symmetry(SymmetryMode::Full)), 0);
        // The auto-reduced result still matches the dense one exactly.
        let ring = RingInstance::symmetric(&p, 15).unwrap();
        assert_reduced_matches_full(&ring, "K=15 crossover");
    }

    #[test]
    fn reduced_degrades_to_full_on_heterogeneous_rings() {
        let a = agreement(&["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]);
        let b = agreement(&["x[r-1] == 0 && x[r] == 1 -> x[r] := 0"]);
        let ring = RingInstance::heterogeneous(&[&a, &b, &a, &b], 1 << 20).unwrap();
        assert!(!ring.is_rotation_symmetric());
        let token = CancelToken::new();
        let counters = EngineCounters::new();
        let cfg = EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced);
        let red = fused_scan_metered(&ring, &cfg, &token, Some(&counters)).unwrap();
        assert_eq!(
            counters.snapshot().orbits_visited,
            0,
            "no necklace walk on an asymmetric ring"
        );
        let full = fused_scan(
            &ring,
            &EngineConfig::sequential().with_symmetry(SymmetryMode::Full),
        );
        assert_eq!(red.legit_count, full.legit_count);
        assert_eq!(red.illegitimate_deadlocks, full.illegitimate_deadlocks);
    }

    #[test]
    fn reduced_scan_honors_cancellation() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let fired = CancelToken::new();
        fired.cancel();
        let cfg = EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced);
        assert_eq!(
            fused_scan_bounded(&ring, &cfg, &fired).err(),
            Some(Cancelled)
        );
        let scan = fused_scan(&ring, &cfg);
        assert_eq!(find_livelock_bounded(&ring, &scan, &fired), Err(Cancelled));
    }

    #[test]
    fn reduced_counters_are_deterministic_and_orbit_weighted() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        let ring = RingInstance::symmetric(&p, 6).unwrap();
        let token = CancelToken::new();
        let cfg = EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced);
        let run = || {
            let counters = EngineCounters::new();
            let scan = fused_scan_metered(&ring, &cfg, &token, Some(&counters)).unwrap();
            find_livelock_metered(&ring, &scan, &token, Some(&counters)).unwrap();
            counters.snapshot()
        };
        let first = run();
        // `states_visited` stays orbit-weighted: it totals d^K exactly.
        assert_eq!(first.states_visited, ring.space().len());
        assert!(first.orbits_visited > 0);
        assert!(first.orbits_visited < ring.space().len());
        assert!(first.canonicalizations > 0, "the quotient walk ran");
        assert!(first.frontier_pushes > 0);
        assert_eq!(first.deterministic_json(), run().deterministic_json());
    }

    #[test]
    fn livelock_with_bitmap_matches_plain() {
        let p = agreement(&[
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ]);
        for k in 2..=6 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let scan = fused_scan(&ring, &EngineConfig::sequential());
            let a = find_livelock_with(&ring, &scan);
            let b = check::find_livelock(&ring);
            assert_eq!(a, b, "K={k}");
        }
    }
}

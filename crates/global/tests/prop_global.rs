//! Property-based tests for the global engine, including direct checks of
//! the paper's Lemma 5.5 (enablement conservation in livelocks on
//! unidirectional rings).

use proptest::prelude::*;
use selfstab_global::{
    check, schedule, EngineConfig, RingInstance, Scheduler, Simulator, SymmetryMode,
};
use selfstab_protocol::{Domain, LocalStateId, LocalTransition, Locality, Protocol};

/// A random unidirectional protocol over domain size `d` with transitions
/// drawn from `arcs` and a random non-empty legitimate predicate.
fn arb_protocol(d: usize) -> impl Strategy<Value = Protocol> {
    let nstates = d * d;
    (
        proptest::collection::vec((0..nstates as u32, 0..d as u8), 0..(2 * nstates)),
        proptest::collection::vec(any::<bool>(), nstates),
    )
        .prop_map(move |(arcs, legit)| {
            let base =
                Protocol::builder("rand", Domain::numeric("x", d), Locality::unidirectional())
                    .legit_fn(|id, _| legit.get(id.index()).copied().unwrap_or(false))
                    .build()
                    .or_else(|_| {
                        Protocol::builder(
                            "rand",
                            Domain::numeric("x", d),
                            Locality::unidirectional(),
                        )
                        .legit_all()
                        .build()
                    })
                    .unwrap();
            let sp = *base.space();
            let loc = base.locality();
            let ts: Vec<LocalTransition> = arcs
                .into_iter()
                .map(|(s, t)| LocalTransition::new(LocalStateId(s), t))
                .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
                .collect();
            base.with_transitions("rand", ts).unwrap()
        })
}

/// Assumption 1 of the paper: every sequence of local transitions of a
/// process terminates, i.e. the t-arc graph over local states is acyclic.
fn is_self_terminating(p: &Protocol) -> bool {
    let mut g = selfstab_graph::DiGraph::new(p.space().len());
    for t in p.transitions() {
        g.add_arc(
            t.source.index(),
            t.target_state(p.space(), p.locality()).index(),
        );
    }
    !selfstab_graph::cycles::has_cycle(&g)
}

/// Assumption 2 at the process level: no transition lands in a state where
/// the process is again enabled (the normal form Lemma 5.5 relies on).
fn is_process_self_disabling(p: &Protocol) -> bool {
    p.transitions()
        .all(|t| !p.is_enabled(t.target_state(p.space(), p.locality())))
}

/// Window-local closure of I in p for every K (Problem 3.1's input
/// assumption): for all (a, b, c) with LC(a,b) and LC(b,c), every write
/// t from ⟨a,b⟩ keeps LC(a,t) and LC(t,c). Checking closure at one fixed
/// K is NOT enough — it can hold vacuously (empty I(K)) while failing at
/// other sizes.
fn is_locally_closed(p: &Protocol) -> bool {
    let sp = p.space();
    let d = sp.domain_size() as u8;
    for a in 0..d {
        for b in 0..d {
            let w = sp.encode(&[a, b]);
            if !p.legit().holds(w) {
                continue;
            }
            for c in 0..d {
                if !p.legit().holds(sp.encode(&[b, c])) {
                    continue;
                }
                for &t in p.transitions_from(w) {
                    if !p.legit().holds(sp.encode(&[a, t])) || !p.legit().holds(sp.encode(&[t, c]))
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Successors and predecessors are mutually consistent on random
    /// protocols and ring sizes.
    #[test]
    fn successors_predecessors_inverse(p in arb_protocol(3), k in 2usize..5) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        for gid in ring.space().ids() {
            for succ in ring.successors(gid) {
                prop_assert!(ring.predecessors(succ).contains(&gid));
            }
            for pred in ring.predecessors(gid) {
                prop_assert!(ring.successors(pred).contains(&gid));
            }
        }
    }

    /// Any livelock reported by the checker is a genuine cycle of
    /// illegitimate states, and converts to a replayable cyclic schedule.
    #[test]
    fn livelocks_are_genuine(p in arb_protocol(2), k in 2usize..6) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        if let Some(cycle) = check::find_livelock(&ring) {
            prop_assert!(!cycle.is_empty());
            for (i, &s) in cycle.iter().enumerate() {
                prop_assert!(!ring.is_legit(s));
                let next = cycle[(i + 1) % cycle.len()];
                prop_assert!(ring.successors(s).contains(&next));
            }
            let sch = schedule::Schedule::from_cycle(&ring, &cycle);
            prop_assert!(sch.is_cyclic(&ring));
        }
    }

    /// **Lemma 5.5** (enablement conservation): every livelock on a
    /// unidirectional ring has the same number of enabled processes in all
    /// of its states. The lemma's hypotheses: actions are self-disabling
    /// (true by construction at transition granularity) and processes are
    /// *self-terminating* (Assumption 1) — the t-arc graph over local
    /// states must be acyclic, which we filter for.
    #[test]
    fn lemma_5_5_enablement_conservation(p in arb_protocol(2), k in 2usize..6) {
        if !is_self_terminating(&p) || !is_process_self_disabling(&p) {
            return Ok(()); // Lemma 5.5's hypotheses
        }
        let ring = RingInstance::symmetric(&p, k).unwrap();
        if let Some(cycle) = check::find_livelock(&ring) {
            prop_assert!(
                check::livelock_enablement_count(&ring, &cycle).is_some(),
                "Lemma 5.5 violated: enablement count varies along a livelock"
            );
        }
    }

    /// **Lemma 5.9** (local corruptions): some state of any livelock has a
    /// process that is both enabled and locally illegitimate (a
    /// *corruption*), under the paper's hypotheses (closure of I plus the
    /// self-disabling normal form).
    #[test]
    fn lemma_5_9_corruption_exists(p in arb_protocol(2), k in 2usize..6) {
        if !is_self_terminating(&p) || !is_process_self_disabling(&p) {
            return Ok(());
        }
        // Lemma 5.9 assumes I closed in p *for every K* (Problem 3.1):
        // closure at this one size can hold vacuously (empty I(K)).
        if !is_locally_closed(&p) {
            return Ok(());
        }
        let ring = RingInstance::symmetric(&p, k).unwrap();
        if let Some(cycle) = check::find_livelock(&ring) {
            let has_corruption = cycle.iter().any(|&s| {
                (0..ring.ring_size()).any(|i| {
                    ring.is_process_enabled(s, i)
                        && !p.legit().holds(ring.local_state_of(s, i))
                })
            });
            prop_assert!(has_corruption, "Lemma 5.9 violated: livelock without corruption");
        }
    }

    /// **Lemma 5.8** (local illegitimacy): every state of a livelock has at
    /// least one corrupted process (trivially, since livelock states are
    /// outside I, but `corruption_count` must agree with `is_legit`).
    #[test]
    fn corruption_count_consistent(p in arb_protocol(3), k in 2usize..5) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        for gid in ring.space().ids() {
            prop_assert_eq!(ring.is_legit(gid), ring.corruption_count(gid) == 0);
        }
    }

    /// If the checker proves strong convergence, random simulation never
    /// fails to converge.
    #[test]
    fn strong_convergence_implies_simulation_converges(p in arb_protocol(2), k in 2usize..6, seed in any::<u64>()) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let report = check::ConvergenceReport::check(&ring);
        // Only meaningful when I is closed: otherwise a run may leave I again.
        if report.self_stabilizing() {
            let mut sim = Simulator::new(&ring, seed);
            for _ in 0..10 {
                let start = sim.random_state();
                let out = sim.run_from(start, 100_000);
                prop_assert!(out.converged, "simulation stuck despite proven convergence");
            }
        }
    }

    /// Strong convergence implies weak convergence.
    #[test]
    fn strong_implies_weak(p in arb_protocol(2), k in 2usize..6) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let report = check::ConvergenceReport::check(&ring);
        if report.strongly_converges() {
            prop_assert!(check::weakly_converges(&ring));
        }
    }

    /// The worst-case recovery bound dominates every simulated run, and is
    /// finite exactly when the protocol strongly converges.
    #[test]
    fn worst_case_recovery_dominates_simulation(p in arb_protocol(2), k in 2usize..6, seed in any::<u64>()) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let report = check::ConvergenceReport::check(&ring);
        let wc = selfstab_global::faults::worst_case_recovery(&ring);
        prop_assert_eq!(wc.is_some(), report.strongly_converges());
        if let Some(bound) = wc {
            let mut sim = Simulator::new(&ring, seed);
            for _ in 0..5 {
                let s = sim.random_state();
                let out = sim.run_from(s, bound + 1);
                prop_assert!(out.converged, "run exceeded the worst-case bound {bound}");
                prop_assert!(out.steps <= bound);
            }
        }
    }

    /// Fault spans are monotone in the budget and contain I.
    #[test]
    fn fault_span_monotone(p in arb_protocol(2), k in 2usize..6) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let mut prev = selfstab_global::faults::fault_span(&ring, 0);
        for s in ring.space().ids() {
            if ring.is_legit(s) {
                prop_assert!(prev[s.index()]);
            }
        }
        for f in 1..=k {
            let cur = selfstab_global::faults::fault_span(&ring, f);
            for i in 0..prev.len() {
                prop_assert!(!prev[i] || cur[i]);
            }
            prev = cur;
        }
        // Budget K reaches every state (any state is K corruptions away
        // from a legitimate one, when I is non-empty).
        if ring.space().ids().any(|s| ring.is_legit(s)) {
            prop_assert!(prev.iter().all(|&b| b));
        }
    }

    /// A zero-fault budget yields exactly the *program closure* of I(K):
    /// the states reachable from I by program transitions alone. On
    /// protocols where I is closed this collapses to I itself, but the
    /// identity must hold in general — random protocols routinely leak out
    /// of their legitimate predicate.
    #[test]
    fn fault_span_zero_is_program_closure(p in arb_protocol(2), k in 2usize..6) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        // Reference closure: BFS from all legitimate states.
        let n = ring.space().len() as usize;
        let mut closure = vec![false; n];
        let mut work: Vec<_> = ring.space().ids().filter(|&s| ring.is_legit(s)).collect();
        for s in &work {
            closure[s.index()] = true;
        }
        while let Some(s) = work.pop() {
            ring.for_each_successor(s, |t| {
                if !closure[t.index()] {
                    closure[t.index()] = true;
                    work.push(t);
                }
            });
        }
        prop_assert_eq!(selfstab_global::faults::fault_span(&ring, 0), closure);
    }

    /// The random-daemon simulator is a pure function of its seed: two
    /// simulators built from the same seed produce identical convergence
    /// statistics, run by run.
    #[test]
    fn random_scheduler_is_deterministic_per_seed(
        p in arb_protocol(2),
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let mut a = Simulator::new(&ring, seed).with_scheduler(Scheduler::Random);
        let mut b = Simulator::new(&ring, seed).with_scheduler(Scheduler::Random);
        prop_assert_eq!(
            a.convergence_stats(20, 1_000),
            b.convergence_stats(20, 1_000)
        );
        // And the streams stay aligned after the stats runs: the next
        // random start and run agree too.
        let (sa, sb) = (a.random_state(), b.random_state());
        prop_assert_eq!(sa, sb);
        let (ra, rb) = (a.run_from(sa, 500), b.run_from(sb, 500));
        prop_assert_eq!(ra.converged, rb.converged);
        prop_assert_eq!(ra.steps, rb.steps);
    }

    /// The parallel fused engine and the sequential one produce identical
    /// convergence reports — same counts, same witnesses, same order — on
    /// random protocols across ring sizes.
    #[test]
    fn parallel_engine_matches_sequential(p in arb_protocol(2), k in 2usize..=7, threads in 2usize..=8) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let seq = check::ConvergenceReport::check_with(&ring, &EngineConfig::sequential());
        let par = check::ConvergenceReport::check_with(&ring, &EngineConfig::with_threads(threads));
        prop_assert_eq!(seq.ring_size, par.ring_size);
        prop_assert_eq!(seq.state_count, par.state_count);
        prop_assert_eq!(seq.legit_count, par.legit_count);
        prop_assert_eq!(seq.closure_violation, par.closure_violation);
        prop_assert_eq!(seq.illegitimate_deadlocks, par.illegitimate_deadlocks);
        prop_assert_eq!(seq.livelock, par.livelock);
    }

    /// The symmetry-reduced engine produces the byte-identical convergence
    /// report as the full dense engine on random symmetric protocols —
    /// counts, witness states, deadlock order, livelock cycle — whether
    /// the full scan runs sequentially or parallel.
    #[test]
    fn reduced_engine_matches_full(p in arb_protocol(2), k in 1usize..=7, threads in 1usize..=8) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let reduced = check::ConvergenceReport::check_with(
            &ring,
            &EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced),
        );
        let full = check::ConvergenceReport::check_with(
            &ring,
            &EngineConfig::with_threads(threads).with_symmetry(SymmetryMode::Full),
        );
        prop_assert_eq!(reduced.ring_size, full.ring_size);
        prop_assert_eq!(reduced.state_count, full.state_count);
        prop_assert_eq!(reduced.legit_count, full.legit_count);
        prop_assert_eq!(reduced.closure_violation, full.closure_violation);
        prop_assert_eq!(reduced.illegitimate_deadlocks, full.illegitimate_deadlocks);
        prop_assert_eq!(reduced.livelock, full.livelock);
    }

    /// Successor/predecessor inversion also holds on heterogeneous rings,
    /// where each process runs its own random behavior.
    #[test]
    fn heterogeneous_successors_predecessors_inverse(
        ps in proptest::collection::vec(arb_protocol(2), 2..=4),
    ) {
        let refs: Vec<&Protocol> = ps.iter().collect();
        let ring = RingInstance::heterogeneous(&refs, 1 << 20).unwrap();
        for gid in ring.space().ids() {
            for succ in ring.successors(gid) {
                prop_assert!(ring.predecessors(succ).contains(&gid));
            }
            for pred in ring.predecessors(gid) {
                prop_assert!(ring.successors(pred).contains(&gid));
            }
        }
    }

    /// Schedules equivalent under independent swaps end in the same state.
    #[test]
    fn equivalent_schedules_share_endpoints(p in arb_protocol(2), k in 2usize..5, seed in any::<u64>()) {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let mut sim = Simulator::new(&ring, seed);
        let start = sim.random_state();
        // Build a short schedule by simulation.
        let mut moves = Vec::new();
        let mut cur = start;
        for _ in 0..6 {
            let ms = ring.moves_from(cur);
            match ms.first() {
                Some(&m) => {
                    moves.push(m);
                    cur = ring.apply(cur, m);
                }
                None => break,
            }
        }
        let sch = schedule::Schedule { start, moves };
        let end = *sch.replay(&ring).unwrap().last().unwrap();
        for other in schedule::equivalent_schedules(&ring, &sch, 100) {
            let states = other.replay(&ring).unwrap();
            prop_assert_eq!(*states.last().unwrap(), end);
        }
    }
}

//! Acceptance gate for the fused engine: on every protocol spec shipped in
//! `specs/`, the parallel engine must produce the *identical* convergence
//! report as the sequential one at every ring size `K ∈ 2..=8` — same
//! counts, same witness states, same ordering. The symmetry-reduced
//! engine is held to the same contract against the full scan at both
//! thread counts.

use std::path::PathBuf;

use selfstab_global::{check::ConvergenceReport, EngineConfig, RingInstance, SymmetryMode};
use selfstab_protocol::file::parse_protocol_file;

fn spec_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn spec_paths() -> Vec<PathBuf> {
    let dir = spec_dir();
    let mut specs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "stab"))
        .collect();
    specs.sort();
    assert!(
        specs.len() >= 10,
        "expected the ten shipped specs, found {}",
        specs.len()
    );
    specs
}

fn assert_reports_equal(a: &ConvergenceReport, b: &ConvergenceReport, ctx: &str) {
    assert_eq!(a.ring_size, b.ring_size, "{ctx}: ring_size");
    assert_eq!(a.state_count, b.state_count, "{ctx}: state_count");
    assert_eq!(a.legit_count, b.legit_count, "{ctx}: legit_count");
    assert_eq!(
        a.closure_violation, b.closure_violation,
        "{ctx}: closure_violation"
    );
    assert_eq!(
        a.illegitimate_deadlocks, b.illegitimate_deadlocks,
        "{ctx}: illegitimate_deadlocks"
    );
    assert_eq!(a.livelock, b.livelock, "{ctx}: livelock");
}

#[test]
fn parallel_matches_sequential_on_every_spec() {
    for path in &spec_paths() {
        let source = std::fs::read_to_string(path).unwrap();
        let protocol =
            parse_protocol_file(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for k in 2..=8 {
            let ring = RingInstance::symmetric(&protocol, k).unwrap();
            let seq = ConvergenceReport::check_with(&ring, &EngineConfig::sequential());
            let par = ConvergenceReport::check_with(&ring, &EngineConfig::with_threads(4));
            let ctx = format!("{} at K={k}", path.display());
            assert_reports_equal(&seq, &par, &ctx);
            // The fused sequential path must also agree with the plain
            // (unfused) reference formulation.
            assert_eq!(
                seq.legit_count,
                ring.space().ids().filter(|&s| ring.is_legit(s)).count() as u64,
                "{ctx}: legit_count vs reference"
            );
            assert_eq!(
                seq.illegitimate_deadlocks,
                selfstab_global::check::illegitimate_deadlocks(&ring),
                "{ctx}: deadlocks vs reference"
            );
        }
    }
}

/// The differential gate for the tentpole: on every shipped spec and every
/// `K ∈ 2..=8`, the symmetry-reduced engine must reproduce the full-scan
/// convergence report byte for byte — with the full scan running both
/// sequentially and on four threads.
#[test]
fn reduced_matches_full_on_every_spec() {
    for path in &spec_paths() {
        let source = std::fs::read_to_string(path).unwrap();
        let protocol =
            parse_protocol_file(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for k in 2..=8 {
            let ring = RingInstance::symmetric(&protocol, k).unwrap();
            let reduced = ConvergenceReport::check_with(
                &ring,
                &EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced),
            );
            for threads in [1usize, 4] {
                let full = ConvergenceReport::check_with(
                    &ring,
                    &EngineConfig::with_threads(threads).with_symmetry(SymmetryMode::Full),
                );
                let ctx = format!("{} at K={k}, full threads={threads}", path.display());
                assert_reports_equal(&reduced, &full, &ctx);
            }
        }
    }
}

//! End-to-end tests of the `selfstab serve` subcommand: flag validation,
//! bind diagnostics, and a full spawn → submit → poll → compare-to-CLI →
//! SIGTERM-drain round trip against the real binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn selfstab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_selfstab"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Kills the serve child if a test panics before its orderly shutdown.
struct ServeChild(Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn help_documents_the_serve_subcommand() {
    let out = selfstab(&["help"]);
    assert!(out.status.success());
    let text = stderr(&out);
    assert!(text.contains("serve"), "{text}");
    for flag in ["--port", "--threads", "--cache-mb"] {
        assert!(text.contains(flag), "help must document {flag}: {text}");
    }
}

#[test]
fn invalid_port_exits_one_with_a_diagnostic() {
    let out = selfstab(&["serve", "--port", "99999"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--port"), "{}", stderr(&out));

    let out = selfstab(&["serve", "--port", "some"]);
    assert_eq!(out.status.code(), Some(1));

    let out = selfstab(&["serve", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--threads"), "{}", stderr(&out));
}

#[test]
fn busy_port_exits_one_with_a_diagnostic() {
    // Occupy a port, then ask serve to bind it.
    let holder = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = holder.local_addr().unwrap().port();
    let out = selfstab(&["serve", "--port", &port.to_string()]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("cannot bind"), "{}", stderr(&out));
}

/// One request over a fresh connection; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

/// Spawns `selfstab serve` on an ephemeral port with `extra` flags and
/// returns the child plus the announced address.
#[cfg(unix)]
fn spawn_serve(extra: &[&str]) -> (ServeChild, String) {
    let mut child = ServeChild(
        Command::new(env!("CARGO_BIN_EXE_selfstab"))
            .args(["serve", "--port", "0", "--threads", "1"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs"),
    );
    let mut line = String::new();
    BufReader::new(child.0.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_owned();
    (child, addr)
}

/// Polls a job id until it reaches `done`.
fn await_done(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "job {id} must resolve: {body}");
        match serde_json::from_str(&body).unwrap()["status"].as_str() {
            Some("queued") | Some("running") => {
                assert!(Instant::now() < deadline, "job {id} never settled");
                std::thread::sleep(Duration::from_millis(10));
            }
            Some("done") => return,
            other => panic!("unexpected job status {other:?}: {body}"),
        }
    }
}

/// The kill-mid-job crash drill, in-tree: submit against a journaled
/// server, `SIGKILL` it (no drain, no fsync-on-exit courtesy), restart
/// with the same journal, and require every submitted job to reach
/// `done` with bytes identical to the fault-free `check --json` run.
#[cfg(unix)]
#[test]
fn sigkill_mid_job_and_restart_replays_to_byte_identical_results() {
    let spec_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/agreement.stab");
    let spec_source = std::fs::read_to_string(&spec_path).unwrap();
    let dir = std::env::temp_dir().join(format!("selfstab-serve-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);
    let journal_flag = journal.to_str().unwrap().to_owned();

    let (mut child, addr) = spawn_serve(&["--journal", &journal_flag, "--fsync", "always"]);
    // Two accepted jobs; the 202s guarantee their `submitted` records are
    // durable. SIGKILL lands before we ever poll, so at least the second
    // job is (very likely) mid-flight — and correctness must not depend
    // on which side of `done` the crash landed.
    let submit_verify = format!(
        "{{\"kind\": \"verify\", \"k\": 4, \"spec\": {}}}",
        serde_json::Value::String(spec_source.clone())
    );
    let submit_sweep = format!(
        "{{\"kind\": \"sweep\", \"k\": 2, \"to\": 9, \"spec\": {}}}",
        serde_json::Value::String(spec_source)
    );
    let (status, body) = http(&addr, "POST", "/v1/jobs", &submit_verify);
    assert_eq!(status, 202, "{body}");
    let id_verify = serde_json::from_str(&body).unwrap()["id"].as_u64().unwrap();
    let (status, body) = http(&addr, "POST", "/v1/jobs", &submit_sweep);
    assert_eq!(status, 202, "{body}");
    let id_sweep = serde_json::from_str(&body).unwrap()["id"].as_u64().unwrap();

    child.0.kill().expect("SIGKILL the server");
    let _ = child.0.wait();

    // Restart on the same journal: both ids resolve (no 404), both reach
    // `done`, and the verify document byte-matches the CLI's.
    let (mut child, addr) = spawn_serve(&["--journal", &journal_flag, "--fsync", "always"]);
    await_done(&addr, id_verify);
    await_done(&addr, id_sweep);
    let (status, served) = http(&addr, "GET", &format!("/v1/jobs/{id_verify}/result"), "");
    assert_eq!(status, 200);
    let cli = selfstab(&["check", spec_path.to_str().unwrap(), "--k", "4", "--json"]);
    assert!(cli.status.success(), "{}", stderr(&cli));
    assert_eq!(
        served.as_bytes(),
        cli.stdout.as_slice(),
        "replayed result differs from the fault-free bytes"
    );
    let (status, _) = http(&addr, "GET", &format!("/v1/jobs/{id_sweep}/result"), "");
    assert_eq!(status, 200);

    let _ = Command::new("kill")
        .args(["-TERM", &child.0.id().to_string()])
        .status();
    let status = child.0.wait().expect("child exits");
    assert_eq!(status.code(), Some(130), "drain exits 130");
}

#[cfg(unix)]
#[test]
fn serve_round_trip_matches_check_json_and_drains_on_sigterm() {
    let spec_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/agreement.stab");
    let spec_source = std::fs::read_to_string(&spec_path).unwrap();

    let mut child = ServeChild(
        Command::new(env!("CARGO_BIN_EXE_selfstab"))
            .args(["serve", "--port", "0", "--threads", "1"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs"),
    );
    // The first stdout line announces the resolved ephemeral address.
    let mut line = String::new();
    BufReader::new(child.0.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_owned();

    // Submit the corpus spec and poll the job to completion.
    let submit = format!(
        "{{\"kind\": \"verify\", \"k\": 4, \"spec\": {}}}",
        serde_json::Value::String(spec_source)
    );
    let (status, body) = http(&addr, "POST", "/v1/jobs", &submit);
    assert_eq!(status, 202, "{body}");
    let id = serde_json::from_str(&body).unwrap()["id"].as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(&addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        match serde_json::from_str(&body).unwrap()["status"].as_str() {
            Some("queued") | Some("running") => {
                assert!(Instant::now() < deadline, "job never settled");
                std::thread::sleep(Duration::from_millis(10));
            }
            Some("done") => break,
            other => panic!("unexpected job status {other:?}: {body}"),
        }
    }

    // The served result is byte-identical to `check --json`.
    let (status, served) = http(&addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200);
    let cli = selfstab(&["check", spec_path.to_str().unwrap(), "--k", "4", "--json"]);
    assert!(cli.status.success(), "{}", stderr(&cli));
    assert_eq!(
        served.as_bytes(),
        cli.stdout.as_slice(),
        "service bytes differ from CLI --json bytes"
    );

    // A resubmit is a cache hit answered in-line.
    let (status, body) = http(&addr, "POST", "/v1/jobs", &submit);
    assert_eq!(status, 200, "{body}");
    assert_eq!(serde_json::from_str(&body).unwrap()["cached"], true);

    // SIGTERM → graceful drain → exit 130.
    let _ = Command::new("kill")
        .args(["-TERM", &child.0.id().to_string()])
        .status();
    let status = child.0.wait().expect("child exits");
    assert_eq!(status.code(), Some(130), "drain exits 130");
}

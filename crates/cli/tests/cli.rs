//! End-to-end tests of the `selfstab` binary against the `.stab` specs in
//! `specs/`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn spec(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

fn selfstab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_selfstab"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn analyze_agreement_proves_stabilization() {
    let out = selfstab(&["analyze", spec("agreement.stab").to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("FREE for all K"));
    assert!(text.contains("CERTIFIED"));
    assert!(text.contains("strongly self-stabilizing for every ring size"));
}

#[test]
fn analyze_reports_witnesses_for_non_generalizable_matching() {
    let out = selfstab(&[
        "analyze",
        spec("matching_non_generalizable.stab").to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("NOT free"));
    assert!(text.contains("deadlock witness (ring size 4)"));
    assert!(text.contains("deadlocked ring sizes"));
}

#[test]
fn check_passes_and_fails_appropriately() {
    let ok = selfstab(&[
        "check",
        spec("agreement.stab").to_str().unwrap(),
        "--k",
        "3",
        "--to",
        "6",
    ]);
    assert!(ok.status.success(), "{}", stderr(&ok));
    assert!(stdout(&ok).contains("strongly self-stabilizing at every checked size"));

    let bad = selfstab(&[
        "check",
        spec("agreement_both.stab").to_str().unwrap(),
        "--k",
        "4",
    ]);
    // "ran, but verification failed" is exit 2, distinct from usage errors.
    assert_eq!(bad.status.code(), Some(2), "{}", stderr(&bad));
    assert!(stdout(&bad).contains("livelock"));
}

#[test]
fn check_renders_colliding_labels_unambiguously() {
    // `red` and `ready` share an initial; the compact rendering must keep
    // them distinguishable (shortest unique prefixes, not first letters).
    let dir = std::env::temp_dir().join("selfstab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("red_ready.stab");
    std::fs::write(
        &path,
        "protocol red-ready\n\
         domain x { red ready }\n\
         locality unidirectional\n\
         legit x[r] == x[r-1]\n\
         action x[r-1] == red && x[r] == ready -> x[r] := red\n\
         action x[r-1] == ready && x[r] == red -> x[r] := ready\n",
    )
    .unwrap();
    let out = selfstab(&["check", path.to_str().unwrap(), "--k", "3"]);
    assert_eq!(out.status.code(), Some(2));
    let text = stdout(&out);
    assert!(text.contains("livelock cycle:"), "{text}");
    assert!(text.contains("red") && text.contains("rea"), "{text}");
    // The regression: both labels collapsing to `r` made states like
    // `red,ready,ready` and `ready,red,red` print identically.
    assert!(!text.contains("r,r,r"), "{text}");
}

#[test]
fn synthesize_agreement_emits_two_solutions() {
    let out = selfstab(&["synthesize", spec("agreement_empty.stab").to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("# solution 1"));
    assert!(text.contains("# solution 2"));
    assert!(text.contains("action"));
    assert!(stderr(&out).contains("2 solution(s)"));
}

#[test]
fn synthesize_three_coloring_fails_with_explanation() {
    let out = selfstab(&["synthesize", spec("three_coloring.stab").to_str().unwrap()]);
    // "Ran, and the methodology declared failure" is exit 2, not a usage
    // error (exit 1) — the same convention the verification subcommands use.
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("synthesis failed"));
}

#[test]
fn synthesize_json_emits_schema_and_exit_codes() {
    let out = selfstab(&[
        "synthesize",
        spec("agreement_empty.stab").to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(doc["success"], true);
    assert_eq!(doc["truncated"], false);
    assert_eq!(doc["cancelled"], false);
    assert_eq!(doc["solutions"].as_array().unwrap().len(), 2);
    assert_eq!(doc["counters"]["solutions_found"], 2);
    assert_eq!(
        doc["solutions"][0]["verdict"].as_str().unwrap(),
        "no_pseudo_livelock"
    );
    assert!(doc["solutions"][0]["protocol_file"]
        .as_str()
        .unwrap()
        .contains("action"));

    // Failure keeps the document (success:false) and exits 2.
    let fail = selfstab(&[
        "synthesize",
        spec("three_coloring.stab").to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(fail.status.code(), Some(2));
    let doc: serde_json::Value = serde_json::from_str(&stdout(&fail)).unwrap();
    assert_eq!(doc["success"], false);
    assert_eq!(doc["counters"]["combinations_tried"], 8);
    assert_eq!(doc["counters"]["rejected_by_trail"], 8);
    assert!(doc["solutions"].as_array().unwrap().is_empty());
}

#[test]
fn synthesize_json_stdout_is_byte_identical_across_thread_counts() {
    let path = spec("sum_not_two_empty.stab");
    let baseline = selfstab(&["synthesize", path.to_str().unwrap(), "--json"]);
    assert!(baseline.status.success(), "{}", stderr(&baseline));
    for threads in ["1", "2", "8"] {
        let out = selfstab(&[
            "synthesize",
            path.to_str().unwrap(),
            "--json",
            "--threads",
            threads,
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        assert_eq!(
            out.stdout, baseline.stdout,
            "--threads {threads} changed the --json bytes"
        );
    }
}

#[test]
fn synthesized_output_is_valid_input() {
    // Pipe a synthesized solution back through `analyze`.
    let out = selfstab(&[
        "synthesize",
        spec("agreement_empty.stab").to_str().unwrap(),
        "--first",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    let solution: String = text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n");
    let dir = std::env::temp_dir().join("selfstab-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synth.stab");
    std::fs::write(&path, solution).unwrap();
    let check = selfstab(&["analyze", path.to_str().unwrap()]);
    assert!(check.status.success(), "{}", stderr(&check));
    assert!(stdout(&check).contains("strongly self-stabilizing"));
}

#[test]
fn sizes_reports_exact_set() {
    let out = selfstab(&[
        "sizes",
        spec("matching_non_generalizable.stab").to_str().unwrap(),
        "--max",
        "10",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("[4, 6, 7, 8, 9, 10]"), "{text}");
    assert!(text.contains("deadlock-free sizes in that range: [1, 2, 3, 5]"));
}

#[test]
fn simulate_reports_statistics() {
    let out = selfstab(&[
        "simulate",
        spec("agreement.stab").to_str().unwrap(),
        "--k",
        "8",
        "--trials",
        "100",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("converged: 100 (100.0%)"));
    assert!(text.contains("worst-case (adversarial daemon) recovery bound"));
}

#[test]
fn dot_outputs_graphviz() {
    let out = selfstab(&["dot", spec("agreement.stab").to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    let out = selfstab(&["dot", spec("agreement.stab").to_str().unwrap(), "--ltg"]);
    assert!(stdout(&out).contains("label=\"t\""));
}

#[test]
fn fmt_roundtrips() {
    let out = selfstab(&["fmt", spec("sum_not_two.stab").to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("protocol sum-not-two"));
    assert!(text.contains("domain x { 0 1 2 }"));
    assert!(text.contains("legit x[r] + x[r-1] != 2"));
}

#[test]
fn audit_combines_everything() {
    let out = selfstab(&[
        "audit",
        spec("agreement_both.stab").to_str().unwrap(),
        "--to",
        "4",
    ]);
    // The protocol is not self-stabilizing, so the audit exits 2 — but it
    // still prints the full battery first.
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("blocking trail"));
    assert!(text.contains("trail reconstructs: livelock"));
    assert!(text.contains("K=4: FAILS"));
    assert!(text.contains("not established for all K"));

    let out = selfstab(&[
        "audit",
        spec("agreement.stab").to_str().unwrap(),
        "--to",
        "5",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("PROVEN strongly self-stabilizing"));
}

#[test]
fn json_output_is_valid() {
    let out = selfstab(&[
        "analyze",
        spec("agreement.stab").to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["self_stabilizing_for_all_k"], true);
    assert_eq!(v["deadlock"]["free_for_all_k"], true);

    let out = selfstab(&[
        "check",
        spec("agreement.stab").to_str().unwrap(),
        "--k",
        "3",
        "--to",
        "5",
        "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v.as_array().unwrap().len(), 3);
    assert_eq!(v[0]["ring_size"], 3);
}

#[test]
fn helpful_errors() {
    let out = selfstab(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown subcommand"));
    assert!(stderr(&out).contains("EXIT CODES"));

    let out = selfstab(&["analyze", "/nonexistent/file.stab"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"));

    let out = selfstab(&["check", spec("agreement.stab").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--k"));
}

#[test]
fn audit_sizes_simulate_emit_json() {
    let out = selfstab(&[
        "audit",
        spec("agreement.stab").to_str().unwrap(),
        "--to",
        "4",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["proven_for_all_k"], true);
    assert_eq!(v["soundness_disagreements"], 0u64);
    assert_eq!(v["global"].as_array().unwrap().len(), 3);
    assert_eq!(v["local"]["self_stabilizing_for_all_k"], true);

    let out = selfstab(&[
        "sizes",
        spec("matching_non_generalizable.stab").to_str().unwrap(),
        "--max",
        "10",
        "--json",
    ]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["free_for_all_k"], false);
    assert_eq!(v["deadlocked_sizes"][0], 4u64);
    assert_eq!(v["free_sizes"].as_array().unwrap().len(), 4);

    let out = selfstab(&[
        "simulate",
        spec("agreement.stab").to_str().unwrap(),
        "--k",
        "6",
        "--trials",
        "50",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["converged"], 50u64);
    assert_eq!(v["failed"], 0u64);
    assert!(!v["worst_case_recovery"].is_null());
}

fn write_sweep_manifest(name: &str, body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn sweep_runs_a_campaign_and_exits_by_cleanliness() {
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    // A failing corpus member (agreement_both livelocks) → exit 2.
    let manifest = write_sweep_manifest(
        "mixed.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab", "{}/agreement_both.stab"], "k_from": 2, "k_to": 4}}"#,
            specs_dir.display(),
            specs_dir.display()
        ),
    );
    let out = selfstab(&["sweep", manifest.to_str().unwrap(), "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("verified 4"), "{text}");
    assert!(text.contains("failed 2"), "{text}");
    // agreement_both fails *by livelock*; the detail line must say so.
    assert!(text.contains("livelock true"), "{text}");
    assert!(text.contains("soundness: local verdicts and global outcomes agree"));

    // A clean corpus → exit 0, and --json prints the canonical report.
    let manifest = write_sweep_manifest(
        "clean.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab"], "k_from": 2, "k_to": 5}}"#,
            specs_dir.display()
        ),
    );
    let out = selfstab(&["sweep", manifest.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["totals"]["verified"], 4u64);
    assert_eq!(v["totals"]["failed"], 0u64);
    assert_eq!(v["soundness"]["disagreements"].as_array().unwrap().len(), 0);
}

#[test]
fn sweep_resume_reuses_the_journal_and_reports_identically() {
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let manifest = write_sweep_manifest(
        "resume.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab", "{}/flip_token.stab"], "k_from": 2, "k_to": 6}}"#,
            specs_dir.display(),
            specs_dir.display()
        ),
    );
    let report_a = std::env::temp_dir().join("selfstab-sweep-test/report_a.json");
    let report_b = std::env::temp_dir().join("selfstab-sweep-test/report_b.json");
    let journal = manifest.with_extension("journal.jsonl");

    let out = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "-o",
        report_a.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(journal.is_file(), "journal written next to the manifest");

    // Interrupt simulation: drop the second half of the journal, resume.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    std::fs::write(&journal, format!("{}\n", lines[..keep].join("\n"))).unwrap();
    let out = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--resume",
        "--jobs",
        "4",
        "-o",
        report_b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("replayed"), "{}", stdout(&out));

    let a = std::fs::read_to_string(&report_a).unwrap();
    let b = std::fs::read_to_string(&report_b).unwrap();
    assert_eq!(a, b, "resumed report must be byte-identical");
}

#[test]
fn sweep_rejects_an_empty_spec_expansion() {
    // `"specs": []` with a well-formed K range must exit 1 with a
    // diagnostic, not sweep nothing and report a clean campaign.
    let manifest = write_sweep_manifest("empty.json", r#"{"specs": [], "k_from": 2, "k_to": 4}"#);
    let out = selfstab(&["sweep", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("matched no spec files"),
        "{}",
        stderr(&out)
    );

    // Same for a glob that matches nothing.
    let manifest = write_sweep_manifest(
        "noglob.json",
        r#"{"specs": ["no_such_dir_*/x.stab"], "k_from": 2, "k_to": 4}"#,
    );
    let out = selfstab(&["sweep", manifest.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn sweep_rejects_a_bad_fsync_policy() {
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let manifest = write_sweep_manifest(
        "fsync.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab"], "k_from": 2, "k_to": 3}}"#,
            specs_dir.display()
        ),
    );
    let out = selfstab(&["sweep", manifest.to_str().unwrap(), "--fsync", "sometimes"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--fsync"), "{}", stderr(&out));
}

#[test]
fn sweep_under_chaos_heals_to_the_clean_report() {
    // Smoke-test the hidden --chaos flag end to end: a seeded chaotic
    // sweep (injected panics retried, maybe a forced cancel) followed by a
    // fault-free --resume must converge to the byte-identical report of a
    // sweep that never saw a fault.
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    let manifest = write_sweep_manifest(
        "chaos.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab", "{}/flip_token.stab"], "k_from": 2, "k_to": 5}}"#,
            specs_dir.display(),
            specs_dir.display()
        ),
    );
    let ref_journal = dir.join("chaos-ref.journal.jsonl");
    let ref_report = dir.join("chaos-ref.json");
    let out = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--journal",
        ref_journal.to_str().unwrap(),
        "-o",
        ref_report.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let journal = dir.join("chaos-run.journal.jsonl");
    std::fs::remove_file(&journal).ok();
    let final_report = dir.join("chaos-final.json");
    let chaotic = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--chaos",
        "3",
        "--retries",
        "4",
        "--backoff-ms",
        "0",
        "--jobs",
        "2",
    ]);
    // Any outcome is legal under chaos: clean (0), failed-by-panic (2), or
    // interrupted by a forced cancel (130) — but never a crash/abort.
    assert!(
        matches!(chaotic.status.code(), Some(0 | 2 | 130)),
        "chaos run must degrade gracefully: {:?}\n{}",
        chaotic.status.code(),
        stderr(&chaotic)
    );
    if chaotic.status.code() == Some(130) {
        assert!(
            stderr(&chaotic).contains("--resume"),
            "interrupt hint: {}",
            stderr(&chaotic)
        );
    }

    let healed = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--resume",
        "-o",
        final_report.to_str().unwrap(),
    ]);
    assert!(healed.status.success(), "{}", stderr(&healed));
    assert_eq!(
        std::fs::read_to_string(&ref_report).unwrap(),
        std::fs::read_to_string(&final_report).unwrap(),
        "healed report must match the fault-free reference byte for byte"
    );
}

#[cfg(unix)]
#[test]
fn sweep_sigint_syncs_the_journal_and_resumes_losslessly() {
    use std::io::Read;

    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    // Big enough that the debug binary is still mid-sweep when the signal
    // lands: 3^12 ≈ 5.3e5 states for the largest jobs.
    let manifest = write_sweep_manifest(
        "sigint.json",
        &format!(
            r#"{{"specs": ["{}/sum_not_two.stab"], "k_from": 2, "k_to": 12, "max_states": 2000000}}"#,
            specs_dir.display()
        ),
    );
    let journal = dir.join("sigint.journal.jsonl");
    std::fs::remove_file(&journal).ok();

    let mut child = Command::new(env!("CARGO_BIN_EXE_selfstab"))
        .args([
            "sweep",
            manifest.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    std::thread::sleep(std::time::Duration::from_millis(500));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
    let status = child.wait().expect("child exits");
    let mut err = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut err)
        .unwrap();

    if status.code() == Some(130) {
        // Interrupted mid-sweep: the hint names --resume and the journal
        // replays cleanly (the sync happened before exit).
        assert!(err.contains("rerun with --resume"), "{err}");
        let report_resumed = dir.join("sigint-resumed.json");
        let out = selfstab(&[
            "sweep",
            manifest.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--resume",
            "-o",
            report_resumed.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));

        // Every job completed before the signal was replayed, not re-run.
        let text = stdout(&out);
        assert!(text.contains("replayed"), "{text}");

        // And the result is byte-identical to a never-interrupted sweep.
        let report_ref = dir.join("sigint-ref.json");
        let ref_journal = dir.join("sigint-ref.journal.jsonl");
        std::fs::remove_file(&ref_journal).ok();
        let out = selfstab(&[
            "sweep",
            manifest.to_str().unwrap(),
            "--journal",
            ref_journal.to_str().unwrap(),
            "-o",
            report_ref.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        assert_eq!(
            std::fs::read_to_string(&report_ref).unwrap(),
            std::fs::read_to_string(&report_resumed).unwrap(),
            "post-SIGINT resume must lose no completed job"
        );
    } else {
        // The machine was fast enough to finish before the signal landed;
        // the sweep must then have ended by verdict, not by crash.
        assert!(
            matches!(status.code(), Some(0 | 2)),
            "unexpected exit: {status:?}\n{err}"
        );
    }
}

#[test]
fn sweep_exports_metrics_and_trace_and_stats_tabulates_them() {
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    let manifest = write_sweep_manifest(
        "telemetry.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab", "{}/agreement_both.stab"], "k_from": 2, "k_to": 4}}"#,
            specs_dir.display(),
            specs_dir.display()
        ),
    );
    let metrics_path = dir.join("telemetry.metrics.json");
    let trace_path = dir.join("telemetry.trace.json");
    let out = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--jobs",
        "2",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    // agreement_both livelocks → exit 2, but telemetry is written anyway.
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap())
            .expect("metrics file is valid JSON");
    assert_eq!(metrics["campaign"]["executed"], 6u64);
    let rows = metrics["jobs"].as_array().unwrap();
    assert_eq!(rows.len(), 6);
    for row in rows {
        assert_eq!(row["counters"]["states_visited"], row["states"]);
        assert!(row["phases_us"]["fused_scan"].as_u64().is_some());
    }

    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap())
            .expect("trace file is valid JSON");
    assert_eq!(trace["displayTimeUnit"], "ms");
    let events = trace["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());
    for e in events {
        assert!(e["name"].as_str().is_some());
        assert_eq!(e["pid"], 1u64);
    }

    // `stats` tabulates the metrics document: one row per spec × K plus a
    // totals line.
    let out = selfstab(&["stats", metrics_path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("6 of 6 job(s) executed"), "{text}");
    assert!(text.contains("agreement_both.stab"), "{text}");
    assert!(text.contains("scan"), "{text}");
    assert!(text.contains("TOTAL"), "{text}");

    // And it rejects a non-metrics document with a usage error.
    let out = selfstab(&["stats", trace_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("not a sweep metrics document"));
}

#[test]
fn stats_renders_a_well_formed_cross_tab_for_an_empty_run() {
    // A fully replayed --resume executes zero jobs, so its metrics
    // document has an empty `jobs` array and no per-phase observations.
    // `stats` must still render the full cross-tab (header + TOTAL), and
    // `--json` must keep the identical schema as a non-empty document.
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    let manifest = write_sweep_manifest(
        "empty-stats.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab"], "k_from": 2, "k_to": 3}}"#,
            specs_dir.display()
        ),
    );
    let journal = dir.join("empty-stats.journal.jsonl");
    std::fs::remove_file(&journal).ok();
    let out = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let metrics_path = dir.join("empty-stats.metrics.json");
    let out = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--journal",
        journal.to_str().unwrap(),
        "--resume",
        "--metrics",
        metrics_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert_eq!(metrics["campaign"]["executed"], 0u64, "{metrics}");
    assert_eq!(metrics["jobs"].as_array().unwrap().len(), 0);

    let out = selfstab(&["stats", metrics_path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("0 of 2 job(s) executed"), "{text}");
    assert!(text.contains("spec"), "header row is present: {text}");
    assert!(text.contains("TOTAL"), "totals row is present: {text}");
    assert!(text.contains("no jobs executed this run"), "{text}");

    let out = selfstab(&["stats", metrics_path.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["jobs"].as_array().unwrap().len(), 0);
    assert_eq!(v["grand_total_us"], 0u64);
    for key in [
        "parse",
        "local_analysis",
        "fused_scan",
        "livelock_dfs",
        "journal_append",
        "retry_backoff",
        "synthesis",
    ] {
        assert_eq!(v["phase_totals_us"][key], 0u64, "phase `{key}`");
    }
}

#[test]
fn sweep_json_stdout_is_invariant_under_telemetry_and_verbosity_flags() {
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    let manifest = write_sweep_manifest(
        "telemetry-json.json",
        &format!(
            r#"{{"specs": ["{}/agreement.stab"], "k_from": 2, "k_to": 5}}"#,
            specs_dir.display()
        ),
    );
    let base = selfstab(&["sweep", manifest.to_str().unwrap(), "--json"]);
    assert!(base.status.success(), "{}", stderr(&base));

    let metrics_path = dir.join("telemetry-json.metrics.json");
    let trace_path = dir.join("telemetry-json.trace.json");
    let with_flags = selfstab(&[
        "sweep",
        manifest.to_str().unwrap(),
        "--json",
        "--verbose",
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    assert!(with_flags.status.success(), "{}", stderr(&with_flags));
    assert_eq!(
        base.stdout, with_flags.stdout,
        "telemetry and verbosity flags must not perturb --json stdout"
    );
}

#[test]
fn sweep_metrics_counters_are_byte_identical_across_thread_counts() {
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let dir = std::env::temp_dir().join("selfstab-sweep-test");
    // Distinct journal per run so neither clobbers the other mid-test.
    let deterministic_rows = |label: &str, threads: &str| {
        let manifest = write_sweep_manifest(
            &format!("threads-{label}.json"),
            &format!(
                r#"{{"specs": ["{}/agreement.stab", "{}/flip_token.stab"], "k_from": 2, "k_to": 5}}"#,
                specs_dir.display(),
                specs_dir.display()
            ),
        );
        let metrics_path = dir.join(format!("threads-{label}.metrics.json"));
        let out = selfstab(&[
            "sweep",
            manifest.to_str().unwrap(),
            "--threads",
            threads,
            "--metrics",
            metrics_path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        let metrics: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let rows = metrics["jobs"].as_array().unwrap();
        assert_eq!(rows.len(), 8);
        rows.iter()
            .map(|row| {
                format!(
                    "{}|{}|{}|{}|{}",
                    row["spec"], row["k"], row["outcome"], row["states"], row["counters"]
                )
            })
            .collect::<Vec<String>>()
    };
    assert_eq!(
        deterministic_rows("one", "1"),
        deterministic_rows("four", "4"),
        "per-job engine counters must not depend on the engine thread count"
    );
}

//! `selfstab` — the command-line front end of the selfstab toolkit.
//!
//! ```text
//! selfstab analyze    <file.stab>                  local proofs (Theorems 4.2 / 5.14)
//! selfstab audit      <file.stab> [--to 6] [--threads T]        proofs + global cross-checks + reconstruction
//! selfstab check      <file.stab> --k 5 [--to 8] [--threads T]  global model checking at fixed sizes
//! selfstab synthesize <file.stab> [--first]        Section 6 synthesis methodology
//! selfstab sizes      <file.stab> [--max 20]       exact deadlocked ring sizes
//! selfstab simulate   <file.stab> --k 10 [...]     random-daemon convergence runs
//! selfstab dot        <file.stab> [--ltg] [-o F]   Graphviz export of the RCG/LTG
//! selfstab fmt        <file.stab>                  reprint the canonical .stab form
//! ```

mod args;
mod commands;
mod json;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "analyze" => commands::analyze::run(rest),
        "audit" => commands::audit::run(rest),
        "check" => commands::check::run(rest),
        "synthesize" => commands::synthesize::run(rest),
        "sizes" => commands::sizes::run(rest),
        "simulate" => commands::simulate::run(rest),
        "dot" => commands::dot::run(rest),
        "fmt" => commands::fmt::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand `{other}`").into())
        }
    }
}

fn print_usage() {
    eprintln!(
        "selfstab — self-stabilization of parameterized rings by local reasoning

USAGE:
    selfstab <SUBCOMMAND> <file.stab> [OPTIONS]

SUBCOMMANDS:
    analyze     Theorem 4.2 / 5.14 local analysis (all ring sizes at once)
    audit       local proofs + global cross-checks + trail reconstruction ([--to K] [--threads T])
    check       explicit-state global check at fixed ring sizes (--k N [--to M] [--threads T])
    synthesize  add convergence via the Section 6 methodology ([--first])
    sizes       exact deadlocked ring sizes ([--max N], default 20)
    simulate    random-daemon convergence statistics (--k N [--trials T] [--steps S] [--seed X])
    dot         Graphviz export of the RCG ([--ltg] for the LTG, [-o FILE])
    fmt         reprint the canonical .stab form
    help        this message"
    );
}

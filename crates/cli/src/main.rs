//! `selfstab` — the command-line front end of the selfstab toolkit.
//!
//! ```text
//! selfstab analyze    <file.stab>                  local proofs (Theorems 4.2 / 5.14)
//! selfstab audit      <file.stab> [--to 6] [--threads T] [--symmetry M]  proofs + global cross-checks + reconstruction
//! selfstab check      <file.stab> --k 5 [--to 8] [--threads T] [--symmetry M]  global model checking at fixed sizes
//! selfstab sweep      <manifest.json> [--jobs J] [--threads T] [--symmetry M]  batch campaign over a spec corpus
//! selfstab stats      <metrics.json|journal>         phase-time cross-tab of a sweep --metrics file or serve journal
//! selfstab registry   <show|tab|diff> <registry.jsonl> [...]  query the persistent results registry
//! selfstab synthesize <file.stab> [--first] [--threads T] [--prune on|off] [--metrics FILE] [--json]  Section 6 synthesis methodology
//! selfstab serve      [--port P] [--threads T] [--cache-mb M] [--journal F] [--cache-snapshot F]  HTTP verification service with result caching and crash durability
//! selfstab sizes      <file.stab> [--max 20]       exact deadlocked ring sizes
//! selfstab simulate   <file.stab> --k 10 [...]     random-daemon convergence runs
//! selfstab dot        <file.stab> [--ltg] [-o F]   Graphviz export of the RCG/LTG
//! selfstab fmt        <file.stab>                  reprint the canonical .stab form
//! ```
//!
//! Verification subcommands distinguish "I could not run" from "I ran and
//! the protocol is not self-stabilizing" in the exit code: `0` means
//! verified, `1` means a usage or IO error, `2` means verification failed
//! (or, for `audit`/`sweep`, a soundness disagreement was detected).

mod args;
mod commands;
mod json;
mod signal;

use std::process::ExitCode;

/// Exit code for "the tool ran, but verification failed".
const EXIT_UNVERIFIED: u8 = 2;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(EXIT_UNVERIFIED),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatches one subcommand. `Ok(true)` means verified (exit 0),
/// `Ok(false)` means the command ran but verification failed (exit 2),
/// `Err` means usage or IO trouble (exit 1).
fn run(argv: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "analyze" => commands::analyze::run(rest),
        "audit" => commands::audit::run(rest),
        "check" => commands::check::run(rest),
        "sweep" => commands::sweep::run(rest),
        "stats" => commands::stats::run(rest),
        "registry" => commands::registry::run(rest),
        "synthesize" => commands::synthesize::run(rest),
        "serve" => commands::serve::run(rest),
        "sizes" => commands::sizes::run(rest),
        "simulate" => commands::simulate::run(rest),
        "dot" => commands::dot::run(rest),
        "fmt" => commands::fmt::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(true)
        }
        other => {
            print_usage();
            Err(format!("unknown subcommand `{other}`").into())
        }
    }
}

fn print_usage() {
    eprintln!(
        "selfstab — self-stabilization of parameterized rings by local reasoning

USAGE:
    selfstab <SUBCOMMAND> <file.stab> [OPTIONS]

SUBCOMMANDS:
    analyze     Theorem 4.2 / 5.14 local analysis (all ring sizes at once)
    audit       local proofs + global cross-checks + trail reconstruction
                ([--to K] [--threads T] [--symmetry auto|full|reduced] [--json])
    check       explicit-state global check at fixed ring sizes
                (--k N [--to M] [--threads T] [--symmetry auto|full|reduced]
                 — `reduced` scans one state per rotation orbit and lifts
                 counts by orbit size; the report is byte-identical)
    sweep       batch campaign over a manifest's spec × K matrix
                (--jobs J worker threads, --threads T engine threads per job,
                 --symmetry auto|full|reduced overrides the manifest policy,
                 --resume to continue from the journal, --journal FILE,
                 --retries N retry panicked jobs with exponential backoff,
                 --backoff-ms MS base retry delay (default 100),
                 --fsync always|batch journal durability (default batch),
                 --metrics FILE per-job counters + phase breakdown JSON,
                 --trace FILE Chrome trace-event file (Perfetto-loadable),
                 --registry FILE append per-job rows to the persistent
                 results registry (see `selfstab registry`),
                 [-o report.json] [--json] [--verbose|--quiet]; SIGINT
                 syncs the journal and exits 130 so --resume loses no
                 completed job)
    stats       phase-time cross-tab per spec × K from a sweep --metrics file
                or a serve --journal file (auto-detected) ([--json]
                 machine-readable cross-tab; well-formed even for a run
                 that executed zero jobs)
    registry    query the persistent results registry (JSONL rows appended
                by serve --registry, sweep --registry, and the scaling
                bench under SELFSTAB_REGISTRY):
                 show FILE [--source S] [--kind K] [--spec SUBSTR]
                   [--limit N] [--json]   filter and print rows
                 tab FILE --kpi PATH [--by source|kind|k|spec] [--json]
                   cross-tab one KPI (dotted path, e.g.
                   counters.states_visited) over a grouping column
                 diff FILE --baseline FILE [--kpi a,b,…]
                   [--tolerance-pct P] [--higher-is-better a,b,…]
                   [--json]   compare KPIs against a baseline registry;
                   exits 2 when any KPI moved beyond the tolerance in
                   its bad direction (default 10%; KPIs ending in _us,
                   _bytes or _wait are lower-is-better, others default
                   to lower-is-better unless listed in
                   --higher-is-better)
    synthesize  add convergence via the Section 6 methodology
                ([--first] stop at one solution, [--threads T] parallel
                 candidate verification — same output for every T,
                 [--prune on|off] monotone lattice pruning, default on —
                 identical outcome either way, fewer candidates verified,
                 [--metrics FILE] full counter snapshot sidecar including
                 the scheduling-dependent pruning tallies,
                 [--json] machine-readable outcome; exit 2 when the
                 methodology declares failure)
    serve       long-running HTTP verification service (JSON job API)
                ([--port P] default 7878, 0 = ephemeral; [--host H] default
                 127.0.0.1; [--threads T] pool workers, default 2;
                 [--cache-mb M] content-addressed result cache budget,
                 default 64; results are byte-identical to the CLI --json
                 output and repeated submissions are answered from cache;
                 [--journal F] durable job journal — restart with the same
                 path after any crash and accepted jobs survive;
                 [--cache-snapshot F] warm-restart cache snapshot;
                 [--fsync always|batch] journal durability, default batch;
                 [--retries N] panic retries per job, default 2;
                 [--backoff-ms MS] retry backoff base, default 50;
                 [--max-pending N] admission cap base (shed with 429);
                 [--max-connections N] connection cap, default 256;
                 [--max-rss-mb M] memory watchdog budget — sheds
                 synthesize, then sweep, then verify as RSS climbs;
                 [--trace F] server-wide Chrome trace-event file written
                 on drain (per-job traces are always available at
                 GET /v1/jobs/:id/trace);
                 [--registry F] append one canonical JSONL row per
                 computed job to the persistent results registry;
                 GET /v1/metrics?format=prometheus for text exposition;
                 SIGINT/SIGTERM drain gracefully and exit 130)
    sizes       exact deadlocked ring sizes ([--max N], default 20) ([--json])
    simulate    random-daemon convergence statistics (--k N [--trials T] [--steps S] [--seed X]) ([--json])
    dot         Graphviz export of the RCG ([--ltg] for the LTG, [-o FILE])
    fmt         reprint the canonical .stab form
    help        this message

EXIT CODES:
    0   verified (or nothing to verify)
    1   usage or IO error
    2   verification failed — a checked size is not self-stabilizing, a
        campaign job failed or errored, or a soundness disagreement between
        the local proof and the global check was detected"
    );
}

//! SIGINT/SIGTERM → cooperative cancellation, without any signal-handling
//! crate.
//!
//! Long sweeps must survive a Ctrl-C with their journal intact: the
//! handler itself only flips an [`AtomicBool`] (the one action that is
//! async-signal-safe), and a watcher thread polls the flag and fires a
//! [`CancelToken`] that the campaign runner links into every in-flight
//! job. The runner then drains queued jobs, aborts running scans at their
//! next poll stride, syncs the journal, and reports `interrupted` — at
//! which point the CLI exits with the conventional `128 + SIGINT = 130`
//! and every completed job is safely on disk for `--resume`.
//!
//! The `serve` subcommand additionally hooks **SIGTERM** (what service
//! managers send on shutdown) through [`drain_token`]: either signal
//! fires the same token, the server stops accepting, in-flight jobs
//! cancel cooperatively, and the process exits 130.
//!
//! On non-Unix targets the hooks are no-ops: the token simply never fires
//! from a signal (the process dies the default way), and everything else
//! still works.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use selfstab_global::CancelToken;

/// Set (only) by the signal handlers; drained by the watcher thread.
static SIGNAL_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Conventional exit code for "terminated by SIGINT" (128 + 2); `serve`
/// reuses it for SIGTERM-initiated drains too, so supervisors observe one
/// stable shutdown code.
pub const EXIT_SIGINT: u8 = 130;

#[cfg(unix)]
mod hook {
    use super::SIGNAL_RECEIVED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// ISO C `signal(2)` — present in every libc we build against, so
        /// no binding crate is needed for this one call.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// The handler: store one flag and return. Anything more (locks,
    /// allocation, IO) is not async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_RECEIVED.store(true, Ordering::SeqCst);
    }

    pub fn install_sigint() {
        // Safety: `signal` is the ISO C signal-installation call; the
        // handler only touches an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
        }
    }

    pub fn install_sigterm() {
        // Safety: as above.
        unsafe {
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod hook {
    pub fn install_sigint() {}
    pub fn install_sigterm() {}
}

/// Spawns the watcher that fires `token` once a hooked signal lands.
/// Dropping every external clone of the token retires the watcher thread.
fn watch(token: &Arc<CancelToken>) {
    let weak = Arc::downgrade(token);
    std::thread::spawn(move || loop {
        let Some(token) = weak.upgrade() else {
            return; // the command finished; nobody is listening any more
        };
        if SIGNAL_RECEIVED.load(Ordering::SeqCst) {
            token.cancel();
            return;
        }
        drop(token);
        std::thread::sleep(Duration::from_millis(20));
    });
}

/// Installs the SIGINT hook and returns a token that fires shortly after
/// the first Ctrl-C.
pub fn interrupt_token() -> Arc<CancelToken> {
    hook::install_sigint();
    let token = Arc::new(CancelToken::new());
    watch(&token);
    token
}

/// Installs both SIGINT and SIGTERM hooks and arms the watcher to fire
/// `token` — the `serve` drain path, where a supervisor's SIGTERM must
/// behave exactly like an operator's Ctrl-C.
pub fn hook_drain(token: &Arc<CancelToken>) {
    hook::install_sigint();
    hook::install_sigterm();
    watch(token);
}

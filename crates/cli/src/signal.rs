//! SIGINT → cooperative cancellation, without any signal-handling crate.
//!
//! Long sweeps must survive a Ctrl-C with their journal intact: the
//! handler itself only flips an [`AtomicBool`] (the one action that is
//! async-signal-safe), and a watcher thread polls the flag and fires a
//! [`CancelToken`] that the campaign runner links into every in-flight
//! job. The runner then drains queued jobs, aborts running scans at their
//! next poll stride, syncs the journal, and reports `interrupted` — at
//! which point the CLI exits with the conventional `128 + SIGINT = 130`
//! and every completed job is safely on disk for `--resume`.
//!
//! On non-Unix targets the hook is a no-op: the token simply never fires
//! from a signal (the process dies the default way), and everything else
//! still works.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use selfstab_global::CancelToken;

/// Set (only) by the signal handler; drained by the watcher thread.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Conventional exit code for "terminated by SIGINT" (128 + 2).
pub const EXIT_SIGINT: u8 = 130;

#[cfg(unix)]
mod hook {
    use super::SIGINT_RECEIVED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    extern "C" {
        /// ISO C `signal(2)` — present in every libc we build against, so
        /// no binding crate is needed for this one call.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// The handler: store one flag and return. Anything more (locks,
    /// allocation, IO) is not async-signal-safe.
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_RECEIVED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // Safety: `signal` is the ISO C signal-installation call; the
        // handler only touches an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod hook {
    pub fn install() {}
}

/// Installs the SIGINT hook and returns a token that fires shortly after
/// the first Ctrl-C. Dropping every clone of the token retires the watcher
/// thread.
pub fn interrupt_token() -> Arc<CancelToken> {
    hook::install();
    let token = Arc::new(CancelToken::new());
    let weak = Arc::downgrade(&token);
    std::thread::spawn(move || loop {
        let Some(token) = weak.upgrade() else {
            return; // the sweep finished; nobody is listening any more
        };
        if SIGINT_RECEIVED.load(Ordering::SeqCst) {
            token.cancel();
            return;
        }
        drop(token);
        std::thread::sleep(Duration::from_millis(20));
    });
    token
}

//! Tiny flag parser shared by the subcommands (kept dependency-free).

use std::collections::BTreeMap;

/// Parsed positional arguments and `--flag [value]` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, Option<String>>,
}

/// Flags that take no value, per subcommand vocabulary.
const BOOLEAN_FLAGS: &[&str] = &["ltg", "first", "all", "quiet", "verbose", "json", "resume"];

impl Args {
    /// Parses raw arguments. Options may be `--name value` or `--name`;
    /// `-o` is accepted as an alias for `--out`.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    out.options.insert(name.to_owned(), None);
                    i += 1;
                } else {
                    let value = raw
                        .get(i + 1)
                        .ok_or_else(|| format!("option --{name} needs a value"))?;
                    out.options.insert(name.to_owned(), Some(value.clone()));
                    i += 2;
                }
            } else if a == "-o" {
                let value = raw.get(i + 1).ok_or("option -o needs a value")?;
                out.options.insert("out".to_owned(), Some(value.clone()));
                i += 2;
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// The required protocol-file positional argument.
    pub fn file(&self) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| "missing <file.stab> argument".to_owned())
    }

    /// The `i`-th positional argument, if present (for subcommands that
    /// take an action word plus a file, like `registry show FILE`).
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// `true` if a boolean flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A string-valued option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// A numeric option with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name} expects a number, got `{v}`")),
        }
    }

    /// A required numeric option.
    pub fn require_usize(&self, name: &str) -> Result<usize, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("missing required option --{name}"))?;
        v.parse()
            .map_err(|_| format!("option --{name} expects a number, got `{v}`"))
    }

    /// A u64 option with a default (for seeds).
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name} expects a number, got `{v}`")),
        }
    }
}

/// Loads and parses the protocol file named by the first positional arg.
pub fn load_protocol(
    args: &Args,
) -> Result<selfstab_protocol::Protocol, Box<dyn std::error::Error>> {
    let path = args.file()?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(
        selfstab_protocol::file::parse_protocol_file(&source)
            .map_err(|e| format!("{path}: {e}"))?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positional_and_options() {
        let a = Args::parse(&argv(&["f.stab", "--k", "5", "--ltg", "-o", "out.dot"])).unwrap();
        assert_eq!(a.file().unwrap(), "f.stab");
        assert_eq!(a.get_usize("k", 0).unwrap(), 5);
        assert!(a.flag("ltg"));
        assert_eq!(a.get("out"), Some("out.dot"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["f", "--k"])).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(&argv(&["f", "--k", "five"])).unwrap();
        assert!(a.get_usize("k", 0).is_err());
        assert!(a.require_usize("k").is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&["f"])).unwrap();
        assert_eq!(a.get_usize("max", 20).unwrap(), 20);
        assert_eq!(a.get_u64("seed", 42).unwrap(), 42);
        assert!(!a.flag("ltg"));
    }

    #[test]
    fn missing_file_is_reported() {
        let a = Args::parse(&argv(&["--k", "3"])).unwrap();
        assert!(a.file().is_err());
    }
}

//! `selfstab analyze <file.stab>` — the local analysis.

use selfstab_core::report::StabilizationReport;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let report = StabilizationReport::analyze(&protocol);
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&crate::json::stabilization_report(&protocol, &report))?
        );
        return Ok(true);
    }
    println!("{protocol}");
    println!("{report}");

    // Witness detail beyond the summary.
    if !report.deadlock.is_free_for_all_k() {
        for w in report.deadlock.witnesses().iter().take(8) {
            let states: Vec<String> = w
                .cycle
                .iter()
                .map(|&s| protocol.space().format_compact(s, protocol.domain()))
                .collect();
            println!(
                "  deadlock witness (ring size {}): {}",
                w.base_ring_size,
                states.join(" -> ")
            );
        }
        let sizes = report.deadlock.deadlocked_ring_sizes(20);
        println!("  deadlocked ring sizes <= 20: {sizes:?}");
    }
    if let Some(trail) = report.livelock.trail() {
        println!("  blocking trail: {}", trail.display(&protocol));
    }
    Ok(true)
}

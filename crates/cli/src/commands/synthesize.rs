//! `selfstab synthesize <file.stab> [--first] [--threads N] [--json]
//! [--prune on|off] [--metrics FILE]` — the Section 6 local synthesis
//! methodology on the streaming parallel engine.
//!
//! Exit codes follow the verification convention: 0 when synthesis
//! succeeds, 1 on usage/IO errors, 2 when the methodology ran and declared
//! failure (no candidate passes the livelock conditions).

use selfstab_global::CancelToken;
use selfstab_protocol::file::render_protocol_file;
use selfstab_synth::{LocalSynthesizer, SynthesisConfig};
use selfstab_telemetry::{logger, SynthesisCounters};

use crate::args::{load_protocol, Args};
use crate::json;

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    logger::set_level_from_flags(args.flag("verbose"), args.flag("quiet"), false);
    let protocol = load_protocol(&args)?;
    let threads = args.get_usize("threads", 1)?;
    if threads == 0 {
        return Err("option --threads expects a positive number".into());
    }
    let prune = match args.get("prune").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(format!("option --prune expects `on` or `off`, got `{other}`").into());
        }
    };
    let config = SynthesisConfig {
        max_solutions: if args.flag("first") { 1 } else { 64 },
        threads,
        prune,
        ..SynthesisConfig::default()
    };

    let counters = SynthesisCounters::new();
    let outcome = LocalSynthesizer::new(config)
        .synthesize_metered(&protocol, &CancelToken::new(), Some(&counters), None)
        .map_err(|e| format!("synthesis cannot run: {e}"))?;
    logger::info(format!(
        "explored {} resolve set(s), {} candidate combination(s); {} rejected by the trail check{}",
        outcome.resolve_sets_tried(),
        outcome.combinations_tried(),
        outcome.rejected_by_trail(),
        if outcome.truncated() {
            " (truncated)"
        } else {
            ""
        },
    ));

    if let Some(path) = args.get("metrics") {
        // The metrics sidecar is the one place the scheduling-dependent
        // counters (cancel_polls and the pruning tallies) are written out;
        // `--json` stays byte-identical across thread counts and prune
        // modes, so it cannot carry them.
        let snap = counters.snapshot();
        let doc = serde_json::json!({
            "protocol": protocol.name(),
            "threads": threads,
            "prune": prune,
            "counters": {
                "resolve_sets_examined": snap.resolve_sets_examined,
                "combinations_tried": snap.combinations_tried,
                "rejected_invalid": snap.rejected_invalid,
                "rejected_by_deadlock": snap.rejected_by_deadlock,
                "rejected_by_trail": snap.rejected_by_trail,
                "solutions_found": snap.solutions_found,
                "cancel_polls": snap.cancel_polls,
                "cones_cut": snap.cones_cut,
                "candidates_skipped": snap.candidates_skipped,
                "delta_reuses": snap.delta_reuses,
            },
        });
        let text = format!("{:#}\n", doc);
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        logger::info(format!("wrote the full counter snapshot to {path}"));
    }

    if args.flag("json") {
        let value = json::synthesis_outcome(&protocol, &outcome, &counters.snapshot());
        print!("{}", selfstab_serve::render::synthesis_document(&value));
        if !outcome.is_success() {
            logger::warn(
                "synthesis failed: no candidate passes the livelock conditions \
                 (the methodology declares failure, as for 2- and 3-coloring)",
            );
        }
        return Ok(outcome.is_success());
    }

    if !outcome.is_success() {
        logger::warn(
            "synthesis failed: no candidate passes the livelock conditions \
             (the methodology declares failure, as for 2- and 3-coloring)",
        );
        return Ok(false);
    }

    for (i, s) in outcome.solutions().iter().enumerate() {
        println!(
            "# solution {} ({:?}; resolves {} local deadlock(s))",
            i + 1,
            s.verdict,
            s.resolve.len()
        );
        println!("{}", render_protocol_file(&s.protocol));
    }
    logger::info(format!(
        "{} solution(s); each is strongly self-stabilizing for EVERY ring size",
        outcome.solutions().len()
    ));
    Ok(true)
}

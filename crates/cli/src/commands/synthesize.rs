//! `selfstab synthesize <file.stab> [--first]` — the Section 6 local
//! synthesis methodology.

use selfstab_protocol::file::render_protocol_file;
use selfstab_synth::{LocalSynthesizer, SynthesisConfig};
use selfstab_telemetry::logger;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    logger::set_level_from_flags(args.flag("verbose"), args.flag("quiet"), false);
    let protocol = load_protocol(&args)?;
    let config = SynthesisConfig {
        max_solutions: if args.flag("first") { 1 } else { 64 },
        ..SynthesisConfig::default()
    };

    let outcome = LocalSynthesizer::new(config).synthesize(&protocol);
    logger::info(format!(
        "explored {} resolve set(s), {} candidate combination(s); {} rejected by the trail check{}",
        outcome.resolve_sets_tried(),
        outcome.combinations_tried(),
        outcome.rejected_by_trail(),
        if outcome.truncated() {
            " (truncated)"
        } else {
            ""
        },
    ));

    if !outcome.is_success() {
        return Err(
            "synthesis failed: no candidate passes the livelock conditions \
                    (the methodology declares failure, as for 2- and 3-coloring)"
                .into(),
        );
    }

    for (i, s) in outcome.solutions().iter().enumerate() {
        println!(
            "# solution {} ({:?}; resolves {} local deadlock(s))",
            i + 1,
            s.verdict,
            s.resolve.len()
        );
        println!("{}", render_protocol_file(&s.protocol));
    }
    logger::info(format!(
        "{} solution(s); each is strongly self-stabilizing for EVERY ring size",
        outcome.solutions().len()
    ));
    Ok(true)
}

//! `selfstab synthesize <file.stab> [--first] [--threads N] [--json]` —
//! the Section 6 local synthesis methodology on the streaming parallel
//! engine.
//!
//! Exit codes follow the verification convention: 0 when synthesis
//! succeeds, 1 on usage/IO errors, 2 when the methodology ran and declared
//! failure (no candidate passes the livelock conditions).

use selfstab_global::CancelToken;
use selfstab_protocol::file::render_protocol_file;
use selfstab_synth::{LocalSynthesizer, SynthesisConfig};
use selfstab_telemetry::{logger, SynthesisCounters};

use crate::args::{load_protocol, Args};
use crate::json;

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    logger::set_level_from_flags(args.flag("verbose"), args.flag("quiet"), false);
    let protocol = load_protocol(&args)?;
    let threads = args.get_usize("threads", 1)?;
    if threads == 0 {
        return Err("option --threads expects a positive number".into());
    }
    let config = SynthesisConfig {
        max_solutions: if args.flag("first") { 1 } else { 64 },
        threads,
        ..SynthesisConfig::default()
    };

    let counters = SynthesisCounters::new();
    let outcome = LocalSynthesizer::new(config)
        .synthesize_metered(&protocol, &CancelToken::new(), Some(&counters), None)
        .map_err(|e| format!("synthesis cannot run: {e}"))?;
    logger::info(format!(
        "explored {} resolve set(s), {} candidate combination(s); {} rejected by the trail check{}",
        outcome.resolve_sets_tried(),
        outcome.combinations_tried(),
        outcome.rejected_by_trail(),
        if outcome.truncated() {
            " (truncated)"
        } else {
            ""
        },
    ));

    if args.flag("json") {
        let value = json::synthesis_outcome(&protocol, &outcome, &counters.snapshot());
        print!("{}", selfstab_serve::render::synthesis_document(&value));
        if !outcome.is_success() {
            logger::warn(
                "synthesis failed: no candidate passes the livelock conditions \
                 (the methodology declares failure, as for 2- and 3-coloring)",
            );
        }
        return Ok(outcome.is_success());
    }

    if !outcome.is_success() {
        logger::warn(
            "synthesis failed: no candidate passes the livelock conditions \
             (the methodology declares failure, as for 2- and 3-coloring)",
        );
        return Ok(false);
    }

    for (i, s) in outcome.solutions().iter().enumerate() {
        println!(
            "# solution {} ({:?}; resolves {} local deadlock(s))",
            i + 1,
            s.verdict,
            s.resolve.len()
        );
        println!("{}", render_protocol_file(&s.protocol));
    }
    logger::info(format!(
        "{} solution(s); each is strongly self-stabilizing for EVERY ring size",
        outcome.solutions().len()
    ));
    Ok(true)
}

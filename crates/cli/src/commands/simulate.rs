//! `selfstab simulate <file.stab> --k N [--trials T] [--steps S] [--seed X]
//! [--json]` — random-daemon convergence statistics.

use selfstab_global::{RingInstance, Scheduler, Simulator};
use serde_json::json;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let k = args.require_usize("k")?;
    let trials = args.get_usize("trials", 1000)?;
    let max_steps = args.get_usize("steps", 1_000_000)?;
    let seed = args.get_u64("seed", 42)?;
    let scheduler = match args.get("scheduler").unwrap_or("random") {
        "random" => Scheduler::Random,
        "roundrobin" => Scheduler::RoundRobin,
        other => return Err(format!("unknown scheduler `{other}` (random|roundrobin)").into()),
    };

    let ring = RingInstance::symmetric(&protocol, k)?;
    let mut sim = Simulator::new(&ring, seed).with_scheduler(scheduler);
    let stats = sim.convergence_stats(trials, max_steps);
    let worst_case = selfstab_global::faults::worst_case_recovery(&ring);

    if args.flag("json") {
        let doc = json!({
            "protocol": protocol.name(),
            "ring_size": k,
            "trials": trials,
            "seed": seed,
            "scheduler": format!("{scheduler:?}"),
            "step_budget": max_steps,
            "converged": stats.converged,
            "failed": stats.failed,
            "mean_steps": stats.mean_steps,
            "max_steps": stats.max_steps,
            "worst_case_recovery": worst_case,
        });
        println!("{}", serde_json::to_string_pretty(&doc)?);
        return Ok(true);
    }

    println!("K={k}, {trials} random starts, {scheduler:?} daemon, budget {max_steps} steps:");
    println!(
        "  converged: {} ({:.1}%)   failed: {}",
        stats.converged,
        100.0 * stats.converged as f64 / trials.max(1) as f64,
        stats.failed
    );
    if stats.converged > 0 {
        println!(
            "  steps to convergence: mean {:.1}, max {}",
            stats.mean_steps, stats.max_steps
        );
    }
    if let Some(wc) = worst_case {
        println!("  worst-case (adversarial daemon) recovery bound: {wc} steps");
    } else {
        println!("  no adversarial recovery bound (deadlock or livelock outside I)");
    }
    Ok(true)
}

//! `selfstab fmt <file.stab>` — reprint the canonical form.

use selfstab_protocol::file::render_protocol_file;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    print!("{}", render_protocol_file(&protocol));
    Ok(true)
}

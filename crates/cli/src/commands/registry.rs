//! `selfstab registry <show|tab|diff> <registry.jsonl> [OPTIONS]` —
//! query the persistent results registry.
//!
//! The registry is the append-only JSONL log that `serve --registry`,
//! `sweep --registry`, and the scaling bench (under `SELFSTAB_REGISTRY`)
//! accumulate: one canonical row per measured result (see
//! [`selfstab_core::registry_row`]). This subcommand is the consumer
//! side:
//!
//! * `show FILE [--source S] [--kind K] [--spec SUBSTR] [--limit N]`
//!   filters rows (newest last) and prints them; `--json` emits the
//!   canonical lines unchanged.
//! * `tab FILE --kpi PATH [--by source|kind|k|spec]` cross-tabs one KPI
//!   (dotted path into the `kpis` object, e.g.
//!   `counters.states_visited`) over a grouping column: count, min,
//!   max, and the latest value per group.
//! * `diff FILE --baseline FILE [--kpi a,b,…] [--tolerance-pct P]
//!   [--higher-is-better a,b,…]` joins rows on their identity
//!   (source:spec:kind:k:knobs, latest row wins per side) and compares
//!   KPIs numerically *in each KPI's own direction*. The default is
//!   cost-like (lower is better: counters, byte sizes, durations), and
//!   the `_us`/`_bytes`/`_wait` name suffixes mark that explicitly; a
//!   KPI listed in `--higher-is-better` (throughput, cache hits,
//!   solutions found) regresses when it *drops* beyond the tolerance
//!   instead — an improvement in either direction is never flagged. Any
//!   regression exits 2, the CI gate. Gate on deterministic KPIs
//!   (`--kpi` selects them); wall-clock rows exist to be reported, not
//!   gated on.

use std::collections::BTreeMap;
use std::path::Path;

use selfstab_core::registry_row::{read_rows, RegistryRow};
use serde_json::{json, Value};

use crate::args::Args;

const USAGE: &str = "usage: selfstab registry <show|tab|diff> <registry.jsonl> [OPTIONS]";

/// Default regression tolerance for `diff`, percent.
const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let action = args.positional(0).ok_or(USAGE)?;
    let path: &Path = args.positional(1).ok_or(USAGE)?.as_ref();
    let rows = read_rows(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    match action {
        "show" => show(&args, &rows),
        "tab" => tab(&args, &rows),
        "diff" => diff(&args, &rows),
        other => Err(format!("unknown registry action `{other}`\n{USAGE}").into()),
    }
}

fn show(args: &Args, rows: &[RegistryRow]) -> Result<bool, Box<dyn std::error::Error>> {
    let spec_filter = args.get("spec");
    let filtered: Vec<&RegistryRow> = rows
        .iter()
        .filter(|r| args.get("source").is_none_or(|s| r.source == s))
        .filter(|r| args.get("kind").is_none_or(|k| r.kind == k))
        .filter(|r| spec_filter.is_none_or(|s| r.spec.contains(s)))
        .collect();
    let limit = args.get_usize("limit", filtered.len())?;
    let shown = &filtered[filtered.len().saturating_sub(limit)..];
    if args.flag("json") {
        for row in shown {
            println!("{}", row.to_canonical_json());
        }
        return Ok(true);
    }
    for row in shown {
        println!(
            "{:<6} {:<10} {:<6} {:<12} kpis {}  meta {}",
            row.source,
            row.kind,
            row.k,
            ellipsize(&row.spec, 12),
            row.kpis,
            row.meta,
        );
    }
    println!(
        "{} row(s) shown of {} matching ({} total)",
        shown.len(),
        filtered.len(),
        rows.len()
    );
    Ok(true)
}

fn tab(args: &Args, rows: &[RegistryRow]) -> Result<bool, Box<dyn std::error::Error>> {
    let kpi = args
        .get("kpi")
        .ok_or("registry tab needs --kpi PATH (a dotted path into `kpis`)")?;
    let by = args.get("by").unwrap_or("kind");
    let column = |r: &RegistryRow| -> String {
        match by {
            "source" => r.source.clone(),
            "kind" => r.kind.clone(),
            "k" => r.k.clone(),
            "spec" => r.spec.clone(),
            other => format!("?{other}"),
        }
    };
    if !matches!(by, "source" | "kind" | "k" | "spec") {
        return Err(format!("option --by expects source|kind|k|spec, got `{by}`").into());
    }
    // Group → (count, min, max, last), in appended order so `last` is
    // the most recent measurement.
    let mut groups: BTreeMap<String, (u64, f64, f64, f64)> = BTreeMap::new();
    for row in rows {
        let Some(value) = lookup(&row.kpis, kpi) else {
            continue;
        };
        let entry = groups
            .entry(column(row))
            .or_insert((0, f64::INFINITY, f64::NEG_INFINITY, 0.0));
        entry.0 += 1;
        entry.1 = entry.1.min(value);
        entry.2 = entry.2.max(value);
        entry.3 = value;
    }
    if args.flag("json") {
        let mut doc = BTreeMap::new();
        for (group, (n, min, max, last)) in &groups {
            doc.insert(
                group.clone(),
                json!({"rows": *n, "min": *min, "max": *max, "last": *last}),
            );
        }
        println!(
            "{}",
            serde_json::to_string_pretty(
                &json!({"kpi": kpi, "by": by, "groups": Value::Object(doc)})
            )?
        );
        return Ok(true);
    }
    println!(
        "{by:<16} {:>6} {:>14} {:>14} {:>14}   kpi {kpi}",
        "rows", "min", "max", "last"
    );
    for (group, (n, min, max, last)) in &groups {
        println!(
            "{group:<16} {n:>6} {:>14} {:>14} {:>14}",
            fmt_num(*min),
            fmt_num(*max),
            fmt_num(*last)
        );
    }
    if groups.is_empty() {
        println!("(no row carries kpi `{kpi}`)");
    }
    Ok(true)
}

fn diff(args: &Args, rows: &[RegistryRow]) -> Result<bool, Box<dyn std::error::Error>> {
    let baseline_path: &Path = args
        .get("baseline")
        .ok_or("registry diff needs --baseline FILE")?
        .as_ref();
    let baseline = read_rows(baseline_path)
        .map_err(|e| format!("cannot read `{}`: {e}", baseline_path.display()))?;
    let tolerance = match args.get("tolerance-pct") {
        None => DEFAULT_TOLERANCE_PCT,
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("option --tolerance-pct expects a number, got `{v}`"))?,
    };
    let selected: Option<Vec<&str>> = args.get("kpi").map(|list| list.split(',').collect());
    let higher_is_better: Vec<String> = args
        .get("higher-is-better")
        .map(|list| list.split(',').map(str::to_owned).collect())
        .unwrap_or_default();

    let base_by_id = latest_by_identity(&baseline);
    let new_by_id = latest_by_identity(rows);
    let mut comparisons = Vec::new();
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for (identity, base_row) in &base_by_id {
        let Some(new_row) = new_by_id.get(identity) else {
            missing += 1;
            continue;
        };
        // Compare the baseline's numeric KPI paths (or the selected
        // subset): a KPI the new run dropped is skipped, not a failure —
        // schema growth must not brick old baselines.
        let mut paths = Vec::new();
        flatten(&base_row.kpis, String::new(), &mut paths);
        for (path, base_value) in paths {
            if selected
                .as_ref()
                .is_some_and(|wanted| !wanted.iter().any(|w| *w == path))
            {
                continue;
            }
            let Some(new_value) = lookup(&new_row.kpis, &path) else {
                continue;
            };
            let change_pct = if base_value == 0.0 {
                if new_value == 0.0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (new_value - base_value) / base_value * 100.0
            };
            let direction = direction_for(&path, &higher_is_better)?;
            let regressed = is_regression(change_pct, tolerance, direction);
            if regressed {
                regressions += 1;
            }
            comparisons.push(json!({
                "identity": identity.clone(),
                "kpi": path,
                "baseline": base_value,
                "current": new_value,
                "change_pct": change_pct,
                "direction": direction.name(),
                "regressed": regressed,
            }));
        }
    }

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "tolerance_pct": tolerance,
                "comparisons": Value::Array(comparisons.clone()),
                "regressions": regressions,
                "baseline_only": missing,
            }))?
        );
    } else {
        for c in &comparisons {
            let marker = if c["regressed"] == true {
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<9} {} {}: {} -> {} ({:+.1}%)",
                marker,
                c["identity"].as_str().unwrap_or("?"),
                c["kpi"].as_str().unwrap_or("?"),
                fmt_num(c["baseline"].as_f64().unwrap_or(0.0)),
                fmt_num(c["current"].as_f64().unwrap_or(0.0)),
                c["change_pct"].as_f64().unwrap_or(0.0),
            );
        }
        println!(
            "{} KPI(s) compared, {} regression(s) beyond {tolerance}% \
             ({} baseline identit(ies) unmatched)",
            comparisons.len(),
            regressions,
            missing
        );
    }
    Ok(regressions == 0)
}

/// Which direction of change is *bad* for a KPI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Cost-like (the default): a rise beyond the tolerance regresses.
    LowerIsBetter,
    /// Throughput-like: a *drop* beyond the tolerance regresses.
    HigherIsBetter,
}

impl Direction {
    fn name(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower_is_better",
            Direction::HigherIsBetter => "higher_is_better",
        }
    }
}

/// Leaf-name suffixes that mark a KPI as cost-like by naming convention
/// (microsecond durations, byte sizes, queue waits).
const LOWER_SUFFIXES: &[&str] = &["_us", "_bytes", "_wait"];

/// The comparison direction of one dotted KPI path: cost-like unless the
/// path is listed in `--higher-is-better`. Listing a suffix-conventioned
/// cost KPI there is a contradiction worth refusing loudly — a silently
/// inverted gate is exactly the bug this exists to fix.
fn direction_for(path: &str, higher_is_better: &[String]) -> Result<Direction, String> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let cost_suffixed = LOWER_SUFFIXES.iter().any(|s| leaf.ends_with(s));
    let listed = higher_is_better.iter().any(|h| h == path);
    if listed && cost_suffixed {
        return Err(format!(
            "KPI `{path}` is cost-like by naming convention \
             (`_us`/`_bytes`/`_wait`) but was listed in --higher-is-better"
        ));
    }
    Ok(if listed {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    })
}

/// `true` iff `change_pct` moved beyond `tolerance` in the KPI's bad
/// direction. Improvements are never regressions, whatever their size.
fn is_regression(change_pct: f64, tolerance: f64, direction: Direction) -> bool {
    match direction {
        Direction::LowerIsBetter => change_pct > tolerance,
        Direction::HigherIsBetter => change_pct < -tolerance,
    }
}

/// The most recent row per identity — the registry is append-only, so
/// later rows supersede earlier measurements of the same workload.
fn latest_by_identity(rows: &[RegistryRow]) -> BTreeMap<String, &RegistryRow> {
    let mut map = BTreeMap::new();
    for row in rows {
        map.insert(row.identity(), row);
    }
    map
}

/// Resolves a dotted path (`counters.states_visited`) into a numeric
/// leaf of a KPI object.
fn lookup(kpis: &Value, path: &str) -> Option<f64> {
    let mut value = kpis;
    for segment in path.split('.') {
        value = match value {
            Value::Object(map) => map.get(segment)?,
            _ => return None,
        };
    }
    value.as_f64()
}

/// Collects every numeric leaf of a KPI object as (dotted path, value).
fn flatten(value: &Value, prefix: String, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(child, path, out);
            }
        }
        _ => {
            if let Some(n) = value.as_f64() {
                out.push((prefix, n));
            }
        }
    }
}

fn ellipsize(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(states: u64) -> RegistryRow {
        RegistryRow {
            source: "serve".into(),
            spec: "abc".into(),
            kind: "verify".into(),
            k: "4..4".into(),
            knobs: json!({"max_states": 100}),
            kpis: json!({"exit_code": 0, "counters": {"states_visited": states}}),
            meta: json!({"commit": "x"}),
        }
    }

    #[test]
    fn lookup_resolves_dotted_paths() {
        let r = row(42);
        assert_eq!(lookup(&r.kpis, "counters.states_visited"), Some(42.0));
        assert_eq!(lookup(&r.kpis, "exit_code"), Some(0.0));
        assert_eq!(lookup(&r.kpis, "counters.missing"), None);
        assert_eq!(lookup(&r.kpis, "counters"), None, "objects are not leaves");
    }

    #[test]
    fn flatten_emits_every_numeric_leaf() {
        let mut out = Vec::new();
        flatten(&row(7).kpis, String::new(), &mut out);
        assert_eq!(
            out,
            vec![
                ("counters.states_visited".to_owned(), 7.0),
                ("exit_code".to_owned(), 0.0),
            ]
        );
    }

    #[test]
    fn direction_defaults_suffixes_and_overrides() {
        let none: Vec<String> = Vec::new();
        let throughput = vec!["counters.cache_hits".to_owned()];
        // Default: cost-like.
        assert_eq!(
            direction_for("counters.states_visited", &none).unwrap(),
            Direction::LowerIsBetter
        );
        // Suffix convention stays cost-like even with overrides around.
        for cost in ["phases.fused_scan_us", "cache.resident_bytes", "queue_wait"] {
            assert_eq!(
                direction_for(cost, &throughput).unwrap(),
                Direction::LowerIsBetter,
                "{cost}"
            );
        }
        // Listed KPIs flip.
        assert_eq!(
            direction_for("counters.cache_hits", &throughput).unwrap(),
            Direction::HigherIsBetter
        );
        // A cost-suffixed KPI in --higher-is-better is a contradiction.
        let err = direction_for("phases.fused_scan_us", &["phases.fused_scan_us".to_owned()])
            .unwrap_err();
        assert!(err.contains("higher-is-better"), "{err}");
    }

    #[test]
    fn regression_is_judged_in_the_kpi_direction() {
        // The original bug: a higher-is-better KPI that *improved* by 50%
        // was flagged REGRESSED. Improvements never regress.
        assert!(!is_regression(50.0, 10.0, Direction::HigherIsBetter));
        assert!(is_regression(50.0, 10.0, Direction::LowerIsBetter));
        // A genuine drop in a higher-is-better KPI regresses.
        assert!(is_regression(-50.0, 10.0, Direction::HigherIsBetter));
        assert!(!is_regression(-50.0, 10.0, Direction::LowerIsBetter));
        // Within tolerance: quiet in both directions.
        assert!(!is_regression(5.0, 10.0, Direction::LowerIsBetter));
        assert!(!is_regression(-5.0, 10.0, Direction::HigherIsBetter));
    }

    #[test]
    fn latest_row_wins_per_identity() {
        let rows = vec![row(10), row(20)];
        let map = latest_by_identity(&rows);
        assert_eq!(map.len(), 1);
        assert_eq!(
            lookup(
                &map.values().next().unwrap().kpis,
                "counters.states_visited"
            ),
            Some(20.0)
        );
    }
}

//! `selfstab dot <file.stab> [--ltg] [--deadlocks] [-o FILE]` — Graphviz
//! export of the RCG or LTG.

use selfstab_core::{ltg::Ltg, rcg::Rcg};
use selfstab_telemetry::logger;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;

    let dot = if args.flag("ltg") {
        Ltg::build(&protocol).to_dot(&protocol, protocol.name())
    } else {
        let rcg = Rcg::build(&protocol);
        match args.get("restrict") {
            Some("deadlocks") => {
                let deadlocks = protocol.local_deadlocks();
                rcg.to_dot(&protocol, protocol.name(), Some(deadlocks.as_bitset()))
            }
            Some(other) => {
                return Err(format!("unknown --restrict `{other}` (expected `deadlocks`)").into())
            }
            None => rcg.to_dot(&protocol, protocol.name(), None),
        }
    };

    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &dot)?;
            logger::info(format!("wrote {path}"));
        }
        None => print!("{dot}"),
    }
    Ok(true)
}

//! `selfstab serve [--port P] [--host H] [--threads T] [--cache-mb M]
//! [--journal PATH] [--fsync always|batch] [--cache-snapshot PATH]
//! [--retries N] [--backoff-ms MS] [--max-pending N]
//! [--max-connections N] [--max-rss-mb M] [--trace PATH]
//! [--registry PATH] [--quiet|--verbose]` — the long-running HTTP
//! verification service.
//!
//! Binds the [`selfstab_serve`] server, prints the listening address to
//! stdout (so scripts and CI can discover an ephemeral `--port 0`), and
//! runs until SIGINT or SIGTERM. Either signal starts a graceful drain —
//! stop accepting, cancel in-flight jobs cooperatively, flush responses —
//! and the process exits 130, mirroring `sweep`'s interrupt convention.
//!
//! With `--journal`, every accepted job and terminal result is persisted
//! through a CRC-framed torn-write-safe journal: restart the process
//! with the same path after any crash (even `SIGKILL`) and completed job
//! ids resolve to the same bytes while interrupted jobs re-enqueue and
//! finish. `--cache-snapshot` does the same for the result cache, so the
//! restarted server answers repeat traffic warm. `--max-pending`,
//! `--max-connections`, and `--max-rss-mb` bound acceptance — overload
//! is shed with `429`/`503` + `Retry-After` instead of queued. The
//! hidden `--chaos SEED` flag arms the deterministic service-fault
//! injector (drill/test use only).
//!
//! `--trace PATH` writes a server-wide Chrome-trace file at drain with
//! every request's span lanes interleaved (load it in Perfetto);
//! `--registry PATH` appends one canonical JSONL row per computed job to
//! the persistent results registry (query with `selfstab registry`).
//!
//! Bind failures (busy port, bad interface), unreadable journals, and
//! invalid flags are ordinary usage errors: a diagnostic on stderr and
//! exit 1, never a panic.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use selfstab_campaign::FsyncPolicy;
use selfstab_serve::{PendingCaps, ServeConfig, Server};
use selfstab_telemetry::logger;

use crate::args::Args;
use crate::signal;

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    logger::set_level_from_flags(args.flag("verbose"), args.flag("quiet"), false);
    let port_raw = args.get_usize("port", 7878)?;
    let port = u16::try_from(port_raw)
        .map_err(|_| format!("option --port expects 0..=65535, got `{port_raw}`"))?;
    let threads = args.get_usize("threads", 2)?;
    if threads == 0 {
        return Err("option --threads expects a positive number".into());
    }
    let cache_mb = args.get_usize("cache-mb", 64)?;
    let fsync = match args.get("fsync") {
        None | Some("batch") => FsyncPolicy::Batch,
        Some("always") => FsyncPolicy::Always,
        Some(other) => {
            return Err(format!("option --fsync expects `always` or `batch`, got `{other}`").into())
        }
    };
    let defaults = ServeConfig::default();
    let caps = match args.get("max-pending") {
        None => PendingCaps::default(),
        Some(_) => {
            let base = args.get_usize("max-pending", 0)?;
            if base == 0 {
                return Err("option --max-pending expects a positive number".into());
            }
            PendingCaps::from_base(base)
        }
    };
    let max_connections = args.get_usize("max-connections", defaults.max_connections)?;
    if max_connections == 0 {
        return Err("option --max-connections expects a positive number".into());
    }
    let config = ServeConfig {
        host: args.get("host").unwrap_or("127.0.0.1").to_owned(),
        port,
        threads,
        cache_bytes: cache_mb.saturating_mul(1024 * 1024),
        journal: args.get("journal").map(PathBuf::from),
        cache_snapshot: args.get("cache-snapshot").map(PathBuf::from),
        fsync,
        retries: u32::try_from(args.get_usize("retries", defaults.retries as usize)?)
            .map_err(|_| "option --retries is out of range")?,
        backoff: Duration::from_millis(
            args.get_u64("backoff-ms", defaults.backoff.as_millis() as u64)?,
        ),
        caps,
        max_connections,
        max_rss_bytes: match args.get("max-rss-mb") {
            None => None,
            Some(_) => {
                let mb = args.get_u64("max-rss-mb", 0)?;
                if mb == 0 {
                    return Err("option --max-rss-mb expects a positive number".into());
                }
                Some(mb.saturating_mul(1024 * 1024))
            }
        },
        idle_timeout: defaults.idle_timeout,
        request_deadline: defaults.request_deadline,
        // Hidden: deterministic service-fault injection for drills.
        chaos: match args.get("chaos") {
            None => None,
            Some(_) => Some(args.get_u64("chaos", 0)?),
        },
        trace: args.get("trace").map(PathBuf::from),
        results_registry: args.get("registry").map(PathBuf::from),
    };

    let server = Server::bind(&config)?;
    let addr = server.local_addr()?;
    // Flushed eagerly: supervisors and tests parse this line to find the
    // resolved (possibly ephemeral) port.
    println!("listening on http://{addr}");
    std::io::stdout().flush()?;

    signal::hook_drain(&server.state().drain_token());
    server.run()?;
    logger::info("drained; exiting");
    std::process::exit(i32::from(signal::EXIT_SIGINT));
}

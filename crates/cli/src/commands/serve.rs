//! `selfstab serve [--port P] [--host H] [--threads T] [--cache-mb M]` —
//! the long-running HTTP verification service.
//!
//! Binds the [`selfstab_serve`] server, prints the listening address to
//! stdout (so scripts and CI can discover an ephemeral `--port 0`), and
//! runs until SIGINT or SIGTERM. Either signal starts a graceful drain —
//! stop accepting, cancel in-flight jobs cooperatively, flush responses —
//! and the process exits 130, mirroring `sweep`'s interrupt convention.
//!
//! Bind failures (busy port, bad interface) and invalid flags are
//! ordinary usage errors: a diagnostic on stderr and exit 1, never a
//! panic.

use std::io::Write;

use selfstab_serve::{ServeConfig, Server};

use crate::args::Args;
use crate::signal;

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let port_raw = args.get_usize("port", 7878)?;
    let port = u16::try_from(port_raw)
        .map_err(|_| format!("option --port expects 0..=65535, got `{port_raw}`"))?;
    let threads = args.get_usize("threads", 2)?;
    if threads == 0 {
        return Err("option --threads expects a positive number".into());
    }
    let cache_mb = args.get_usize("cache-mb", 64)?;
    let config = ServeConfig {
        host: args.get("host").unwrap_or("127.0.0.1").to_owned(),
        port,
        threads,
        cache_bytes: cache_mb.saturating_mul(1024 * 1024),
    };

    let server = Server::bind(&config)
        .map_err(|e| format!("cannot bind {}:{}: {e}", config.host, config.port))?;
    let addr = server.local_addr()?;
    // Flushed eagerly: supervisors and tests parse this line to find the
    // resolved (possibly ephemeral) port.
    println!("listening on http://{addr}");
    std::io::stdout().flush()?;

    signal::hook_drain(&server.state().drain_token());
    server.run()?;
    eprintln!("drained; exiting");
    std::process::exit(i32::from(signal::EXIT_SIGINT));
}

//! `selfstab sizes <file.stab> [--max N]` — exact deadlocked ring sizes.

use selfstab_core::deadlock::DeadlockAnalysis;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let max = args.get_usize("max", 20)?;

    let analysis = DeadlockAnalysis::analyze(&protocol);
    if analysis.is_free_for_all_k() {
        println!("deadlock-free outside I for every ring size (Theorem 4.2)");
        return Ok(());
    }
    let sizes = analysis.deadlocked_ring_sizes(max);
    println!("ring sizes 1..={max} with global deadlocks outside I: {sizes:?}");
    let free: Vec<usize> = (1..=max).filter(|k| !sizes.contains(k)).collect();
    println!("deadlock-free sizes in that range: {free:?}");
    for w in analysis.witnesses().iter().take(5) {
        let states: Vec<String> = w
            .cycle
            .iter()
            .map(|&s| protocol.space().format_compact(s, protocol.domain()))
            .collect();
        println!(
            "  witness cycle (len {}): {}",
            w.base_ring_size,
            states.join(" -> ")
        );
    }
    Ok(())
}

//! `selfstab sizes <file.stab> [--max N] [--json]` — exact deadlocked ring
//! sizes.

use selfstab_core::deadlock::DeadlockAnalysis;
use serde_json::json;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let max = args.get_usize("max", 20)?;

    let analysis = DeadlockAnalysis::analyze(&protocol);
    let sizes = if analysis.is_free_for_all_k() {
        Vec::new()
    } else {
        analysis.deadlocked_ring_sizes(max)
    };
    let free: Vec<usize> = (1..=max).filter(|k| !sizes.contains(k)).collect();
    let witnesses: Vec<Vec<String>> = analysis
        .witnesses()
        .iter()
        .take(5)
        .map(|w| {
            w.cycle
                .iter()
                .map(|&s| protocol.space().format_compact(s, protocol.domain()))
                .collect()
        })
        .collect();

    if args.flag("json") {
        let doc = json!({
            "protocol": protocol.name(),
            "free_for_all_k": analysis.is_free_for_all_k(),
            "max": max,
            "deadlocked_sizes": sizes.clone(),
            "free_sizes": free,
            "witness_cycles": witnesses,
        });
        println!("{}", serde_json::to_string_pretty(&doc)?);
        return Ok(true);
    }

    if analysis.is_free_for_all_k() {
        println!("deadlock-free outside I for every ring size (Theorem 4.2)");
        return Ok(true);
    }
    println!("ring sizes 1..={max} with global deadlocks outside I: {sizes:?}");
    println!("deadlock-free sizes in that range: {free:?}");
    for (w, cycle) in analysis.witnesses().iter().take(5).zip(&witnesses) {
        println!(
            "  witness cycle (len {}): {}",
            w.base_ring_size,
            cycle.join(" -> ")
        );
    }
    Ok(true)
}

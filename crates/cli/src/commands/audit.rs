//! `selfstab audit <file.stab> [--to K] [--threads T] [--symmetry MODE]
//! [--json]` — the full battery: local proofs, global cross-checks at
//! every size up to a bound, and trail reconstruction when the livelock
//! certificate fails. `--threads` parallelizes the global cross-checks
//! and `--symmetry auto|full|reduced` selects the rotation-symmetry
//! reduction policy; neither changes any verdict.
//!
//! Exit code 0 means every checked size is self-stabilizing; 2 means some
//! size FAILS or — far worse — a locally-proven protocol was contradicted
//! globally (a soundness disagreement).

use selfstab_core::report::StabilizationReport;
use selfstab_global::{check, EngineConfig, RingInstance, SymmetryMode};
use selfstab_synth::diagnose::reconstruct_trail;
use serde_json::json;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let to = args.get_usize("to", 6)?;
    let symmetry: SymmetryMode = args.get("symmetry").unwrap_or("auto").parse()?;
    let engine = EngineConfig::with_threads(args.get_usize("threads", 1)?).with_symmetry(symmetry);
    let json_mode = args.flag("json");

    let report = StabilizationReport::analyze(&protocol);
    if !json_mode {
        println!("{protocol}");
        println!("== local analysis (all ring sizes) ==");
        println!("{report}");
    }

    // When the certificate fails, try to realize the trail as a livelock.
    let mut trail_json = serde_json::Value::Null;
    if let Some(trail) = report.livelock.trail() {
        let rec = reconstruct_trail(&protocol, trail, 2..=to)?;
        if json_mode {
            trail_json = json!({
                "blocking_trail": trail.display(&protocol),
                "reconstruction": rec.to_string(),
            });
        } else {
            println!("== trail reconstruction ==");
            println!("blocking trail: {}", trail.display(&protocol));
            println!("{rec}");
        }
    }

    if !json_mode {
        println!("== global cross-check (K = 2..={to}) ==");
    }
    let mut all_ok = true;
    let mut disagreements = 0;
    let mut global_rows = Vec::new();
    for k in 2..=to {
        let ring = RingInstance::symmetric(&protocol, k)?;
        let g = check::ConvergenceReport::check_with(&ring, &engine);
        if !g.self_stabilizing() {
            all_ok = false;
        }
        // Soundness audit: a local "proven" verdict must never be
        // contradicted globally.
        let disagrees = report.is_self_stabilizing_for_all_k() && !g.self_stabilizing();
        if disagrees {
            disagreements += 1;
        }
        if json_mode {
            global_rows.push(crate::json::convergence_report(&g));
        } else {
            let status = if g.self_stabilizing() {
                "self-stabilizing"
            } else {
                "FAILS"
            };
            println!(
                "K={k}: {status} (deadlocks¬I {}, livelock {}, closure {})",
                g.illegitimate_deadlocks.len(),
                g.livelock.is_some(),
                g.closure_violation.is_none()
            );
        }
    }

    if json_mode {
        let doc = json!({
            "local": crate::json::stabilization_report(&protocol, &report),
            "trail_reconstruction": trail_json,
            "global": serde_json::Value::Array(global_rows),
            "checked_up_to": to,
            "soundness_disagreements": disagreements,
            "proven_for_all_k": report.is_self_stabilizing_for_all_k(),
        });
        println!("{}", serde_json::to_string_pretty(&doc)?);
    }
    if disagreements > 0 {
        selfstab_telemetry::logger::warn(format!(
            "SOUNDNESS VIOLATION: local proof contradicted at {disagreements} size(s) — please report this"
        ));
        return Ok(false);
    }
    if !json_mode {
        println!("== verdict ==");
        if report.is_self_stabilizing_for_all_k() {
            println!("PROVEN strongly self-stabilizing for every ring size (local method).");
        } else {
            println!(
                "not established for all K by the local method; global checks up to K={to} shown above."
            );
        }
    }
    Ok(all_ok)
}

//! `selfstab audit <file.stab> [--to K] [--threads T]` — the full battery:
//! local proofs, global cross-checks at every size up to a bound, and trail
//! reconstruction when the livelock certificate fails. `--threads`
//! parallelizes the global cross-checks without changing any verdict.

use selfstab_core::report::StabilizationReport;
use selfstab_global::{check, EngineConfig, RingInstance};
use selfstab_synth::diagnose::reconstruct_trail;

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let to = args.get_usize("to", 6)?;
    let engine = EngineConfig::with_threads(args.get_usize("threads", 1)?);

    println!("{protocol}");
    println!("== local analysis (all ring sizes) ==");
    let report = StabilizationReport::analyze(&protocol);
    println!("{report}");

    // When the certificate fails, try to realize the trail as a livelock.
    if let Some(trail) = report.livelock.trail() {
        println!("== trail reconstruction ==");
        println!("blocking trail: {}", trail.display(&protocol));
        let rec = reconstruct_trail(&protocol, trail, 2..=to)?;
        println!("{rec}");
    }

    println!("== global cross-check (K = 2..={to}) ==");
    let mut disagreements = 0;
    for k in 2..=to {
        let ring = RingInstance::symmetric(&protocol, k)?;
        let g = check::ConvergenceReport::check_with(&ring, &engine);
        let status = if g.self_stabilizing() {
            "self-stabilizing"
        } else {
            "FAILS"
        };
        println!(
            "K={k}: {status} (deadlocks¬I {}, livelock {}, closure {})",
            g.illegitimate_deadlocks.len(),
            g.livelock.is_some(),
            g.closure_violation.is_none()
        );
        // Soundness audit: a local "proven" verdict must never be
        // contradicted globally.
        if report.is_self_stabilizing_for_all_k() && !g.self_stabilizing() {
            disagreements += 1;
        }
    }
    if disagreements > 0 {
        return Err(format!(
            "SOUNDNESS VIOLATION: local proof contradicted at {disagreements} size(s) — please report this"
        )
        .into());
    }
    println!("== verdict ==");
    if report.is_self_stabilizing_for_all_k() {
        println!("PROVEN strongly self-stabilizing for every ring size (local method).");
    } else {
        println!(
            "not established for all K by the local method; global checks up to K={to} shown above."
        );
    }
    Ok(())
}

//! Subcommand implementations.

pub mod analyze;
pub mod audit;
pub mod check;
pub mod dot;
pub mod fmt;
pub mod registry;
pub mod serve;
pub mod simulate;
pub mod sizes;
pub mod stats;
pub mod sweep;
pub mod synthesize;

//! `selfstab check <file.stab> --k N [--to M] [--threads T] [--symmetry MODE]` —
//! explicit-state global model checking at fixed ring sizes.
//!
//! `--threads` parallelizes the fused convergence scan; the verdict and
//! every reported witness are identical for any thread count (default 1,
//! fully sequential). `--symmetry auto|full|reduced` selects the
//! rotation-symmetry reduction policy: `reduced` scans one necklace per
//! rotation orbit and lifts counts by orbit size, producing the
//! byte-identical report at a fraction of the work; `auto` (the default)
//! engages the reduction only where the crossover heuristic predicts a
//! win.

use selfstab_global::{check::ConvergenceReport, EngineConfig, RingInstance, SymmetryMode};

use crate::args::{load_protocol, Args};

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let protocol = load_protocol(&args)?;
    let from = args.require_usize("k")?;
    let to = args.get_usize("to", from)?;
    if to < from {
        return Err("--to must be at least --k".into());
    }
    let symmetry: SymmetryMode = args.get("symmetry").unwrap_or("auto").parse()?;
    let engine = EngineConfig::with_threads(args.get_usize("threads", 1)?).with_symmetry(symmetry);

    let mut all_ok = true;
    let mut json_rows = Vec::new();
    for k in from..=to {
        let ring = RingInstance::symmetric(&protocol, k)?;
        let report = ConvergenceReport::check_with(&ring, &engine);
        if args.flag("json") {
            json_rows.push(crate::json::convergence_report(&report));
            if !report.self_stabilizing() {
                all_ok = false;
            }
            continue;
        }
        print!("{report}");
        if let Some(cycle) = &report.livelock {
            let rendered: Vec<String> = cycle
                .iter()
                .take(12)
                .map(|&s| protocol.domain().format_values(&ring.space().decode(s)))
                .collect();
            println!(
                "  livelock cycle: {}{}",
                rendered.join(" -> "),
                if cycle.len() > 12 { " ..." } else { "" }
            );
        }
        if !report.self_stabilizing() {
            all_ok = false;
        }
    }
    if args.flag("json") {
        // The shared renderer frames the document, so the HTTP service's
        // cached results stay byte-identical to this output.
        print!("{}", selfstab_serve::render::check_document(json_rows));
    } else if all_ok {
        println!("strongly self-stabilizing at every checked size");
    } else {
        println!("some checked size fails");
    }
    Ok(all_ok)
}

//! `selfstab stats <metrics.json> [--json]` — phase-time cross-tab of a
//! sweep's `--metrics` document.
//!
//! Renders one row per executed spec × K job with the instrumented
//! phases as columns (milliseconds), plus a totals row from the
//! campaign-wide `phase_totals_us` section. The cross-tab shape is
//! unconditional: a metrics document with zero executed jobs (a fully
//! replayed `--resume`, say) still renders the header and TOTAL row, and
//! an all-zero phase column renders as `0.000`, never as a hole.
//! `--json` emits the same cross-tab as a machine-readable document with
//! the identical schema for empty and non-empty inputs. Durations here
//! are wall-clock observations — scheduling-dependent by design; the
//! deterministic story lives in the per-job `counters` (see DESIGN.md §8).

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::args::Args;

/// Phase columns in execution order, with the compact header used for
/// each (the full names are unwieldy at 80 columns).
const PHASES: [(&str, &str); 7] = [
    ("parse", "parse"),
    ("local_analysis", "local"),
    ("fused_scan", "scan"),
    ("livelock_dfs", "dfs"),
    ("journal_append", "journal"),
    ("retry_backoff", "backoff"),
    ("synthesis", "synth"),
];

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let path = args.file().map_err(|_| "missing <metrics.json> argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let jobs = doc["jobs"]
        .as_array()
        .ok_or_else(|| format!("{path}: not a sweep metrics document (no `jobs` array)"))?;

    if args.flag("json") {
        println!("{}", serde_json::to_string_pretty(&cross_tab(&doc, jobs))?);
        return Ok(true);
    }

    let c = &doc["campaign"];
    println!(
        "campaign {}: {} of {} job(s) executed ({} replayed), {} worker(s), {} engine thread(s)",
        c["fingerprint"].as_str().unwrap_or("?"),
        c["executed"],
        c["jobs"],
        c["replayed"],
        c["workers"],
        c["engine_threads"]
    );

    let spec_width = jobs
        .iter()
        .map(|row| row["spec"].as_str().unwrap_or("?").len())
        .max()
        .unwrap_or(4)
        .max("TOTAL".len());
    print!("{:<spec_width$}  {:>3}", "spec", "K");
    for (_, header) in PHASES {
        print!("  {header:>8}");
    }
    println!("  {:>8}  outcome", "total");

    for row in jobs {
        print!(
            "{:<spec_width$}  {:>3}",
            row["spec"].as_str().unwrap_or("?"),
            row["k"]
        );
        let mut total_us = 0;
        for (key, _) in PHASES {
            let us = row["phases_us"][key].as_u64().unwrap_or(0);
            total_us += us;
            print!("  {:>8}", millis(us));
        }
        println!(
            "  {:>8}  {}",
            millis(total_us),
            row["outcome"].as_str().unwrap_or("?")
        );
    }

    print!("{:<spec_width$}  {:>3}", "TOTAL", "");
    let mut grand_us = 0;
    for (key, _) in PHASES {
        let us = doc["phase_totals_us"][key].as_u64().unwrap_or(0);
        grand_us += us;
        print!("  {:>8}", millis(us));
    }
    println!("  {:>8}", millis(grand_us));
    if jobs.is_empty() {
        println!("(no jobs executed this run — totals cover journal replay only)");
    }
    println!("(all figures ms of wall-clock phase time; counters, not durations, are the deterministic surface)");
    Ok(true)
}

/// The machine-readable cross-tab: same campaign header, one entry per
/// job with per-phase and total microseconds, and the campaign-wide
/// totals. Every phase key is always present (0 when unobserved) so the
/// schema is identical for empty and non-empty documents.
fn cross_tab(doc: &Value, jobs: &[Value]) -> Value {
    let job_rows: Vec<Value> = jobs
        .iter()
        .map(|row| {
            let mut phases = BTreeMap::new();
            let mut total_us = 0;
            for (key, _) in PHASES {
                let us = row["phases_us"][key].as_u64().unwrap_or(0);
                total_us += us;
                phases.insert(key.to_owned(), json!(us));
            }
            json!({
                "spec": row["spec"].as_str().unwrap_or("?"),
                "k": row["k"].as_u64().unwrap_or(0),
                "outcome": row["outcome"].as_str().unwrap_or("?"),
                "phases_us": Value::Object(phases),
                "total_us": total_us,
            })
        })
        .collect();
    let mut totals = BTreeMap::new();
    let mut grand_us = 0;
    for (key, _) in PHASES {
        let us = doc["phase_totals_us"][key].as_u64().unwrap_or(0);
        grand_us += us;
        totals.insert(key.to_owned(), json!(us));
    }
    json!({
        "campaign": doc["campaign"].clone(),
        "jobs": job_rows,
        "phase_totals_us": Value::Object(totals),
        "grand_total_us": grand_us,
    })
}

/// Microseconds rendered as fixed-point milliseconds.
fn millis(us: u64) -> String {
    format!("{}.{:03}", us / 1000, us % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_is_fixed_point() {
        assert_eq!(millis(0), "0.000");
        assert_eq!(millis(999), "0.999");
        assert_eq!(millis(12_345), "12.345");
    }

    #[test]
    fn cross_tab_schema_is_stable_on_empty_input() {
        // A fully replayed resume produces a metrics document with zero
        // executed jobs and no `phase_totals_us` — the cross-tab must
        // still carry every phase key with a zero, not collapse.
        let doc = json!({"campaign": {"executed": 0}, "jobs": []});
        let tab = cross_tab(&doc, &[]);
        assert_eq!(tab["jobs"].as_array().unwrap().len(), 0);
        assert_eq!(tab["grand_total_us"], 0);
        for (key, _) in PHASES {
            assert_eq!(tab["phase_totals_us"][key], 0, "phase `{key}`");
        }
    }

    #[test]
    fn cross_tab_totals_each_job() {
        let doc = json!({
            "campaign": {"executed": 1},
            "phase_totals_us": {"parse": 10, "fused_scan": 90}
        });
        let jobs = vec![json!({
            "spec": "a.stab", "k": 3, "outcome": "verified",
            "phases_us": {"parse": 10, "fused_scan": 90}
        })];
        let tab = cross_tab(&doc, &jobs);
        let job = &tab["jobs"][0];
        assert_eq!(job["total_us"], 100);
        assert_eq!(job["phases_us"]["livelock_dfs"], 0, "absent phase is 0");
        assert_eq!(tab["grand_total_us"], 100);
    }
}

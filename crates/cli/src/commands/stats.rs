//! `selfstab stats <metrics.json|serve.journal> [--json]` — phase-time
//! cross-tab of a sweep's `--metrics` document or a serve `--journal`.
//!
//! The input format is auto-detected: a file that parses as one JSON
//! document is a sweep metrics document; anything else is replayed as a
//! CRC-framed serve journal (the terminal records carry each job's
//! `phases_us` breakdown). Either way the output is the same cross-tab:
//! one row per job with the instrumented phases as columns
//! (milliseconds), plus a TOTAL row. The cross-tab shape is
//! unconditional: a metrics document with zero executed jobs (a fully
//! replayed `--resume`, say) still renders the header and TOTAL row, and
//! an all-zero phase column renders as `0.000`, never as a hole.
//! `--json` emits the same cross-tab as a machine-readable document with
//! the identical schema for empty and non-empty inputs. Durations here
//! are wall-clock observations — scheduling-dependent by design; the
//! deterministic story lives in the per-job `counters` (see DESIGN.md §8).

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::args::Args;

/// Phase columns in execution order, with the compact header used for
/// each (the full names are unwieldy at 80 columns).
const PHASES: [(&str, &str); 7] = [
    ("parse", "parse"),
    ("local_analysis", "local"),
    ("fused_scan", "scan"),
    ("livelock_dfs", "dfs"),
    ("journal_append", "journal"),
    ("retry_backoff", "backoff"),
    ("synthesis", "synth"),
];

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let path = args.file().map_err(|_| "missing <metrics.json> argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    // Auto-detect the input: a sweep --metrics file is one JSON document;
    // a serve --journal is CRC-framed lines that are not valid JSON as a
    // whole. Anything that parses but has no `jobs` array is neither.
    let Ok(doc) = serde_json::from_str(&text) else {
        return serve_journal_stats(std::path::Path::new(path), &args);
    };
    let doc: Value = doc;
    let jobs = doc["jobs"]
        .as_array()
        .ok_or_else(|| format!("{path}: not a sweep metrics document (no `jobs` array)"))?;

    if args.flag("json") {
        println!("{}", serde_json::to_string_pretty(&cross_tab(&doc, jobs))?);
        return Ok(true);
    }

    let c = &doc["campaign"];
    println!(
        "campaign {}: {} of {} job(s) executed ({} replayed), {} worker(s), {} engine thread(s)",
        c["fingerprint"].as_str().unwrap_or("?"),
        c["executed"],
        c["jobs"],
        c["replayed"],
        c["workers"],
        c["engine_threads"]
    );

    let spec_width = jobs
        .iter()
        .map(|row| row["spec"].as_str().unwrap_or("?").len())
        .max()
        .unwrap_or(4)
        .max("TOTAL".len());
    print!("{:<spec_width$}  {:>3}", "spec", "K");
    for (_, header) in PHASES {
        print!("  {header:>8}");
    }
    println!("  {:>8}  outcome", "total");

    for row in jobs {
        print!(
            "{:<spec_width$}  {:>3}",
            row["spec"].as_str().unwrap_or("?"),
            row["k"]
        );
        let mut total_us = 0;
        for (key, _) in PHASES {
            let us = row["phases_us"][key].as_u64().unwrap_or(0);
            total_us += us;
            print!("  {:>8}", millis(us));
        }
        println!(
            "  {:>8}  {}",
            millis(total_us),
            row["outcome"].as_str().unwrap_or("?")
        );
    }

    print!("{:<spec_width$}  {:>3}", "TOTAL", "");
    let mut grand_us = 0;
    for (key, _) in PHASES {
        let us = doc["phase_totals_us"][key].as_u64().unwrap_or(0);
        grand_us += us;
        print!("  {:>8}", millis(us));
    }
    println!("  {:>8}", millis(grand_us));
    if jobs.is_empty() {
        println!("(no jobs executed this run — totals cover journal replay only)");
    }
    println!("(all figures ms of wall-clock phase time; counters, not durations, are the deterministic surface)");
    Ok(true)
}

/// The serve-journal path: replays the CRC-framed journal at the record
/// level (torn tails are dropped, exactly as the server's own boot
/// replay does) and cross-tabs the `phases_us` carried by the terminal
/// `done`/`failed`/`timed_out` records. Jobs the crash interrupted have
/// no terminal record and render as `pending` with zero phase time —
/// they are the restart's re-enqueue set, not measured work.
fn serve_journal_stats(
    path: &std::path::Path,
    args: &Args,
) -> Result<bool, Box<dyn std::error::Error>> {
    let frames = selfstab_campaign::journal::replay_frames(path).map_err(|e| e.to_string())?;
    let is_serve = frames.events.first().is_some_and(|ev| ev["ev"] == "serve");
    if !is_serve {
        return Err(format!(
            "{}: neither a sweep metrics document nor a serve journal",
            path.display()
        )
        .into());
    }
    let tab = serve_cross_tab(&frames.events);

    if args.flag("json") {
        println!("{}", serde_json::to_string_pretty(&tab)?);
        return Ok(true);
    }

    let jobs = tab["jobs"].as_array().map(Vec::as_slice).unwrap_or(&[]);
    println!(
        "serve journal {}: {} job(s) accepted, {} reached a terminal state",
        path.display(),
        jobs.len(),
        tab["serve"]["terminal"]
    );
    let kind_width = jobs
        .iter()
        .map(|row| row["kind"].as_str().unwrap_or("?").len())
        .max()
        .unwrap_or(4)
        .max("TOTAL".len());
    print!("{:<kind_width$}  {:>4}", "kind", "id");
    for (_, header) in PHASES {
        print!("  {header:>8}");
    }
    println!("  {:>8}  outcome", "total");
    for row in jobs {
        print!(
            "{:<kind_width$}  {:>4}",
            row["kind"].as_str().unwrap_or("?"),
            row["id"].as_u64().unwrap_or(0)
        );
        for (key, _) in PHASES {
            print!(
                "  {:>8}",
                millis(row["phases_us"][key].as_u64().unwrap_or(0))
            );
        }
        println!(
            "  {:>8}  {}",
            millis(row["total_us"].as_u64().unwrap_or(0)),
            row["outcome"].as_str().unwrap_or("?")
        );
    }
    print!("{:<kind_width$}  {:>4}", "TOTAL", "");
    for (key, _) in PHASES {
        print!(
            "  {:>8}",
            millis(tab["phase_totals_us"][key].as_u64().unwrap_or(0))
        );
    }
    println!(
        "  {:>8}",
        millis(tab["grand_total_us"].as_u64().unwrap_or(0))
    );
    if jobs.is_empty() {
        println!("(no jobs journaled — header-only journal)");
    }
    println!("(all figures ms of wall-clock phase time; counters, not durations, are the deterministic surface)");
    Ok(true)
}

/// Folds serve-journal events into the cross-tab document: one entry per
/// accepted job (id order), per-phase and total microseconds from its
/// terminal record, and phase totals across the journal. The schema
/// mirrors the sweep cross-tab with a `serve` header in place of
/// `campaign`.
fn serve_cross_tab(events: &[Value]) -> Value {
    let mut order: Vec<u64> = Vec::new();
    let mut kinds: BTreeMap<u64, String> = BTreeMap::new();
    let mut terminals: BTreeMap<u64, (&'static str, Value)> = BTreeMap::new();
    for ev in events {
        let Some(id) = ev["id"].as_u64() else {
            continue;
        };
        match ev["ev"].as_str() {
            Some("submitted")
                if kinds
                    .insert(id, ev["kind"].as_str().unwrap_or("?").to_owned())
                    .is_none() =>
            {
                order.push(id);
            }
            Some("done") => {
                terminals.insert(id, ("done", ev["phases_us"].clone()));
            }
            Some("failed") => {
                terminals.insert(id, ("failed", ev["phases_us"].clone()));
            }
            Some("timed_out") => {
                terminals.insert(id, ("timed_out", ev["phases_us"].clone()));
            }
            _ => {}
        }
    }
    order.sort_unstable();
    let mut phase_totals: BTreeMap<&str, u64> = PHASES.iter().map(|(key, _)| (*key, 0)).collect();
    let mut grand_us = 0u64;
    let job_rows: Vec<Value> = order
        .iter()
        .map(|id| {
            let (outcome, phases_ev) = terminals
                .get(id)
                .map(|(o, p)| (*o, p.clone()))
                .unwrap_or(("pending", Value::Null));
            let mut phases = BTreeMap::new();
            let mut total_us = 0;
            for (key, _) in PHASES {
                let us = phases_ev[key].as_u64().unwrap_or(0);
                total_us += us;
                *phase_totals.get_mut(key).expect("seeded above") += us;
                phases.insert(key.to_owned(), json!(us));
            }
            grand_us += total_us;
            json!({
                "id": *id,
                "kind": kinds[id].clone(),
                "outcome": outcome,
                "phases_us": Value::Object(phases),
                "total_us": total_us,
            })
        })
        .collect();
    let totals: BTreeMap<String, Value> = phase_totals
        .into_iter()
        .map(|(key, us)| (key.to_owned(), json!(us)))
        .collect();
    json!({
        "serve": {
            "jobs": order.len() as u64,
            "terminal": terminals.len() as u64,
        },
        "jobs": Value::Array(job_rows),
        "phase_totals_us": Value::Object(totals),
        "grand_total_us": grand_us,
    })
}

/// The machine-readable cross-tab: same campaign header, one entry per
/// job with per-phase and total microseconds, and the campaign-wide
/// totals. Every phase key is always present (0 when unobserved) so the
/// schema is identical for empty and non-empty documents.
fn cross_tab(doc: &Value, jobs: &[Value]) -> Value {
    let job_rows: Vec<Value> = jobs
        .iter()
        .map(|row| {
            let mut phases = BTreeMap::new();
            let mut total_us = 0;
            for (key, _) in PHASES {
                let us = row["phases_us"][key].as_u64().unwrap_or(0);
                total_us += us;
                phases.insert(key.to_owned(), json!(us));
            }
            json!({
                "spec": row["spec"].as_str().unwrap_or("?"),
                "k": row["k"].as_u64().unwrap_or(0),
                "outcome": row["outcome"].as_str().unwrap_or("?"),
                "phases_us": Value::Object(phases),
                "total_us": total_us,
            })
        })
        .collect();
    let mut totals = BTreeMap::new();
    let mut grand_us = 0;
    for (key, _) in PHASES {
        let us = doc["phase_totals_us"][key].as_u64().unwrap_or(0);
        grand_us += us;
        totals.insert(key.to_owned(), json!(us));
    }
    json!({
        "campaign": doc["campaign"].clone(),
        "jobs": job_rows,
        "phase_totals_us": Value::Object(totals),
        "grand_total_us": grand_us,
    })
}

/// Microseconds rendered as fixed-point milliseconds.
fn millis(us: u64) -> String {
    format!("{}.{:03}", us / 1000, us % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_is_fixed_point() {
        assert_eq!(millis(0), "0.000");
        assert_eq!(millis(999), "0.999");
        assert_eq!(millis(12_345), "12.345");
    }

    #[test]
    fn cross_tab_schema_is_stable_on_empty_input() {
        // A fully replayed resume produces a metrics document with zero
        // executed jobs and no `phase_totals_us` — the cross-tab must
        // still carry every phase key with a zero, not collapse.
        let doc = json!({"campaign": {"executed": 0}, "jobs": []});
        let tab = cross_tab(&doc, &[]);
        assert_eq!(tab["jobs"].as_array().unwrap().len(), 0);
        assert_eq!(tab["grand_total_us"], 0);
        for (key, _) in PHASES {
            assert_eq!(tab["phase_totals_us"][key], 0, "phase `{key}`");
        }
    }

    #[test]
    fn serve_cross_tab_joins_submits_with_terminals() {
        let events = vec![
            json!({"ev": "serve", "version": 1}),
            json!({"ev": "submitted", "id": 1, "kind": "verify", "key": "a"}),
            json!({"ev": "submitted", "id": 2, "kind": "sweep", "key": "b"}),
            json!({"ev": "submitted", "id": 3, "kind": "synthesize", "key": "c"}),
            json!({"ev": "done", "id": 1, "exit_code": 0, "body": "{}",
                   "phases_us": {"parse": 5, "fused_scan": 95}}),
            json!({"ev": "failed", "id": 3, "status": 500, "message": "x",
                   "phases_us": {"synthesis": 40}}),
        ];
        let tab = serve_cross_tab(&events);
        assert_eq!(tab["serve"]["jobs"], 3u64);
        assert_eq!(tab["serve"]["terminal"], 2u64);
        let jobs = tab["jobs"].as_array().unwrap();
        assert_eq!(jobs[0]["outcome"], "done");
        assert_eq!(jobs[0]["total_us"], 100u64);
        assert_eq!(
            jobs[0]["phases_us"]["livelock_dfs"], 0u64,
            "absent phase is 0"
        );
        assert_eq!(jobs[1]["outcome"], "pending", "the crash's collateral");
        assert_eq!(jobs[1]["total_us"], 0u64);
        assert_eq!(jobs[2]["outcome"], "failed");
        assert_eq!(tab["phase_totals_us"]["synthesis"], 40u64);
        assert_eq!(tab["grand_total_us"], 140u64);
    }

    #[test]
    fn serve_cross_tab_is_well_formed_for_a_header_only_journal() {
        let tab = serve_cross_tab(&[json!({"ev": "serve", "version": 1})]);
        assert_eq!(tab["serve"]["jobs"], 0u64);
        assert!(tab["jobs"].as_array().unwrap().is_empty());
        for (key, _) in PHASES {
            assert_eq!(tab["phase_totals_us"][key], 0u64, "phase `{key}`");
        }
    }

    #[test]
    fn cross_tab_totals_each_job() {
        let doc = json!({
            "campaign": {"executed": 1},
            "phase_totals_us": {"parse": 10, "fused_scan": 90}
        });
        let jobs = vec![json!({
            "spec": "a.stab", "k": 3, "outcome": "verified",
            "phases_us": {"parse": 10, "fused_scan": 90}
        })];
        let tab = cross_tab(&doc, &jobs);
        let job = &tab["jobs"][0];
        assert_eq!(job["total_us"], 100);
        assert_eq!(job["phases_us"]["livelock_dfs"], 0, "absent phase is 0");
        assert_eq!(tab["grand_total_us"], 100);
    }
}

//! `selfstab stats <metrics.json>` — phase-time cross-tab of a sweep's
//! `--metrics` document.
//!
//! Renders one row per executed spec × K job with the instrumented
//! phases as columns (milliseconds), plus a totals row from the
//! campaign-wide `phase_totals_us` section. Durations here are wall-clock
//! observations — scheduling-dependent by design; the deterministic story
//! lives in the per-job `counters` (see DESIGN.md §8).

use serde_json::Value;

use crate::args::Args;

/// Phase columns in execution order, with the compact header used for
/// each (the full names are unwieldy at 80 columns).
const PHASES: [(&str, &str); 7] = [
    ("parse", "parse"),
    ("local_analysis", "local"),
    ("fused_scan", "scan"),
    ("livelock_dfs", "dfs"),
    ("journal_append", "journal"),
    ("retry_backoff", "backoff"),
    ("synthesis", "synth"),
];

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    let path = args.file().map_err(|_| "missing <metrics.json> argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let jobs = doc["jobs"]
        .as_array()
        .ok_or_else(|| format!("{path}: not a sweep metrics document (no `jobs` array)"))?;

    let c = &doc["campaign"];
    println!(
        "campaign {}: {} of {} job(s) executed ({} replayed), {} worker(s), {} engine thread(s)",
        c["fingerprint"].as_str().unwrap_or("?"),
        c["executed"],
        c["jobs"],
        c["replayed"],
        c["workers"],
        c["engine_threads"]
    );
    if jobs.is_empty() {
        println!("no jobs executed this run — nothing to tabulate");
        return Ok(true);
    }

    let spec_width = jobs
        .iter()
        .map(|row| row["spec"].as_str().unwrap_or("?").len())
        .max()
        .unwrap_or(4)
        .max("TOTAL".len());
    print!("{:<spec_width$}  {:>3}", "spec", "K");
    for (_, header) in PHASES {
        print!("  {header:>8}");
    }
    println!("  {:>8}  outcome", "total");

    for row in jobs {
        print!(
            "{:<spec_width$}  {:>3}",
            row["spec"].as_str().unwrap_or("?"),
            row["k"]
        );
        let mut total_us = 0;
        for (key, _) in PHASES {
            let us = row["phases_us"][key].as_u64().unwrap_or(0);
            total_us += us;
            print!("  {:>8}", millis(us));
        }
        println!(
            "  {:>8}  {}",
            millis(total_us),
            row["outcome"].as_str().unwrap_or("?")
        );
    }

    print!("{:<spec_width$}  {:>3}", "TOTAL", "");
    let mut grand_us = 0;
    for (key, _) in PHASES {
        let us = doc["phase_totals_us"][key].as_u64().unwrap_or(0);
        grand_us += us;
        print!("  {:>8}", millis(us));
    }
    println!("  {:>8}", millis(grand_us));
    println!("(all figures ms of wall-clock phase time; counters, not durations, are the deterministic surface)");
    Ok(true)
}

/// Microseconds rendered as fixed-point milliseconds.
fn millis(us: u64) -> String {
    format!("{}.{:03}", us / 1000, us % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_is_fixed_point() {
        assert_eq!(millis(0), "0.000");
        assert_eq!(millis(999), "0.999");
        assert_eq!(millis(12_345), "12.345");
    }
}

//! `selfstab sweep <manifest.json> [--jobs J] [--threads T]
//! [--symmetry MODE] [--resume] [--journal FILE] [--retries N]
//! [--backoff-ms MS] [--fsync always|batch] [--metrics FILE]
//! [--trace FILE] [-o report.json] [--json] [--verbose|--quiet]` —
//! batch verification of a whole spec corpus.
//!
//! The manifest names the specs (paths or `*` globs), the `K` range, and
//! the per-job budgets; the campaign runs the full spec × K matrix on a
//! work-stealing pool of `--jobs` workers, journaling every event to a
//! CRC-framed JSONL file that doubles as the checkpoint for `--resume`.
//! The report is canonical JSON — byte-identical for every worker count,
//! symmetry mode, resume split and retry budget — so it can be diffed,
//! archived, and gated on in CI. `--symmetry auto|full|reduced` overrides
//! the manifest's rotation-symmetry reduction policy for every job.
//!
//! Observability: `--metrics FILE` writes a metrics document (per-job
//! engine counters and phase breakdowns, campaign phase totals, pool
//! scheduling stats — see `selfstab stats`); `--trace FILE` writes a
//! Chrome trace-event file loadable in Perfetto / `chrome://tracing`;
//! `--registry FILE` appends one canonical row per job to the persistent
//! results registry (see `selfstab registry`) after a non-interrupted
//! run — deterministic KPIs (outcome, states, legit) keyed by spec hash
//! × K × knobs, volatile context isolated in `meta`.
//! Neither flag perturbs stdout: the `--json` report stays byte-identical
//! with or without them. When stderr is a terminal, a single-line live
//! meter shows jobs done/failed and an ETA.
//!
//! Resilience: a panicking job is isolated and retried `--retries` times
//! with exponential backoff (base `--backoff-ms`) before degrading to a
//! failed outcome; `--fsync always` makes every journal record durable the
//! moment it is written (batched fsync is the default). A SIGINT syncs the
//! journal, prints a resume hint, and exits 130 — `--resume` then loses no
//! completed job. The hidden `--chaos SEED` flag runs the sweep under the
//! deterministic fault-injection harness (see `selfstab_campaign::chaos`).
//!
//! Exit code 0 means every job verified; 2 means some job failed, errored,
//! panicked out of its retry budget, or contradicted its local proof
//! (over-budget jobs are inconclusive and do not fail the sweep).

use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use selfstab_campaign::{
    report, run_campaign, CampaignConfig, CampaignOutcome, ChaosPlan, FsyncPolicy, Manifest,
};
use selfstab_core::registry_row::{append_row, RegistryRow};
use selfstab_telemetry::{logger, Progress};
use serde_json::{json, Value};

use crate::args::Args;
use crate::signal;

/// How often the live meter repaints. Slow enough to cost nothing, fast
/// enough that the ETA feels alive.
const METER_PERIOD: Duration = Duration::from_millis(200);

pub fn run(raw: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(raw)?;
    logger::set_level_from_flags(args.flag("verbose"), args.flag("quiet"), args.flag("json"));
    let manifest_path: &Path = args
        .file()
        .map_err(|_| "missing <manifest.json> argument")?
        .as_ref();
    let manifest = Manifest::from_file(manifest_path)?;

    let engine_threads = match args.get("threads") {
        None => None,
        Some(_) => Some(args.get_usize("threads", 1)?),
    };
    let symmetry = match args.get("symmetry") {
        None => None,
        Some(mode) => Some(mode.parse::<selfstab_global::SymmetryMode>()?),
    };
    let journal_path: PathBuf = match args.get("journal") {
        Some(path) => path.into(),
        None => manifest_path.with_extension("journal.jsonl"),
    };
    let fsync = match args.get("fsync") {
        None => FsyncPolicy::default(),
        Some("always") => FsyncPolicy::Always,
        Some("batch") => FsyncPolicy::Batch,
        Some(other) => {
            return Err(format!("option --fsync expects `always` or `batch`, got `{other}`").into())
        }
    };
    let chaos = match args.get("chaos") {
        None => None,
        Some(_) => Some(ChaosPlan::from_seed(args.get_u64("chaos", 0)?)),
    };
    let metrics_path = args.get("metrics").map(PathBuf::from);
    let trace_path = args.get("trace").map(PathBuf::from);
    let progress = Arc::new(Progress::new());
    let config = CampaignConfig {
        workers: args.get_usize("jobs", 1)?,
        engine_threads,
        symmetry,
        journal_path: Some(journal_path.clone()),
        resume: args.flag("resume"),
        retries: args.get_usize("retries", 0)? as u32,
        backoff: Duration::from_millis(args.get_u64("backoff-ms", 100)?),
        fsync,
        interrupt: Some(signal::interrupt_token()),
        chaos,
        telemetry: metrics_path.is_some(),
        trace: trace_path.is_some(),
        progress: Some(Arc::clone(&progress)),
    };

    // Live meter: only when a human is plausibly watching — stderr is a
    // terminal and neither `--quiet` nor `--json` lowered the level.
    // Everything it paints stays on one line and is erased before any
    // final output, so it never contaminates captured stderr.
    let meter =
        (std::io::stderr().is_terminal() && logger::level() >= logger::Level::Info).then(|| {
            let progress = Arc::clone(&progress);
            let stop = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let handle = std::thread::spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    eprint!("\r\x1b[K{}", progress.render());
                    std::thread::sleep(METER_PERIOD);
                }
                eprint!("\r\x1b[K");
            });
            (stop, handle)
        });
    let outcome = run_campaign(&manifest, &config);
    if let Some((stop, handle)) = meter {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    let outcome = outcome?;

    if outcome.interrupted {
        // The journal is synced; nothing completed is lost. Skip the
        // report (it is partial and must not overwrite a published one)
        // and exit with the conventional SIGINT code.
        logger::warn(format!(
            "interrupted: {} job(s) completed and journaled to {}; \
             rerun with --resume to continue",
            outcome.results.len(),
            journal_path.display()
        ));
        std::process::exit(signal::EXIT_SIGINT as i32);
    }
    if let Some(path) = args.get("registry") {
        append_registry_rows(path.as_ref(), &manifest, symmetry, &outcome)?;
    }
    if let Some(path) = &metrics_path {
        write_json_doc(path, outcome.metrics.as_ref().expect("telemetry was on"))?;
    }
    if let Some(path) = &trace_path {
        write_json_doc(path, outcome.trace.as_ref().expect("tracing was on"))?;
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, &outcome.rendered_report)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        logger::info(format!("wrote {path}"));
    }
    if args.flag("json") {
        print!("{}", outcome.rendered_report);
        return Ok(report::is_clean(&outcome.report));
    }

    let r = &outcome.report;
    println!(
        "campaign {}: {} spec(s) × K={}..={} = {} job(s)",
        r["campaign"]["fingerprint"].as_str().unwrap_or("?"),
        manifest.specs.len(),
        manifest.k_from,
        manifest.k_to,
        r["campaign"]["job_count"]
    );
    println!(
        "  executed {} job(s) this run ({} replayed from {}), {:.2}s wall clock",
        outcome.executed,
        outcome.results.len() - outcome.executed,
        journal_path.display(),
        outcome.elapsed.as_secs_f64()
    );
    println!(
        "  verified {}  failed {}  over budget {}  errors {}  ({} states swept)",
        r["totals"]["verified"],
        r["totals"]["failed"],
        r["totals"]["over_budget"],
        r["totals"]["error"],
        r["states_swept"]
    );
    if outcome.panics_caught > 0 {
        logger::info(format!(
            "  caught {} worker panic(s); see job_panicked events in {}",
            outcome.panics_caught,
            journal_path.display()
        ));
    }
    for row in r["jobs"].as_array().into_iter().flatten() {
        if row["outcome"] == "verified" {
            continue;
        }
        let detail = match row["outcome"].as_str() {
            Some("over_budget") => format!("budget: {}", row["reason"].as_str().unwrap_or("?")),
            Some("error") => row["message"].as_str().unwrap_or("?").to_owned(),
            _ if row["panic"].as_str().is_some() => format!(
                "panicked on all {} attempt(s): {}",
                row["attempts"],
                row["panic"].as_str().unwrap_or("?")
            ),
            _ => format!(
                "deadlocks¬I {}, livelock {}, closure {}",
                row["deadlocks"],
                !row["livelock_len"].is_null(),
                row["closure_ok"]
            ),
        };
        println!(
            "  {} K={}: {} ({detail})",
            row["spec"].as_str().unwrap_or("?"),
            row["k"],
            row["outcome"].as_str().unwrap_or("?")
        );
    }
    let disagreements = r["soundness"]["disagreements"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if disagreements.is_empty() {
        println!("  soundness: local verdicts and global outcomes agree on every job");
    } else {
        for d in disagreements {
            logger::warn(format!(
                "  SOUNDNESS VIOLATION: {} proven locally but fails globally at K={} — please report this",
                d["spec"].as_str().unwrap_or("?"),
                d["k"]
            ));
        }
    }
    Ok(report::is_clean(r))
}

/// Appends one registry row per job of a completed (non-interrupted)
/// sweep to the persistent results registry at `path` — source `sweep`,
/// joined on spec hash × K × knobs by `selfstab registry diff`. KPIs are
/// the deterministic per-job outcomes from the canonical report (states
/// visited, legitimate-state count, outcome); the campaign fingerprint
/// and wall clock land in volatile `meta`.
fn append_registry_rows(
    path: &Path,
    manifest: &Manifest,
    symmetry_override: Option<selfstab_global::SymmetryMode>,
    outcome: &CampaignOutcome,
) -> Result<(), Box<dyn std::error::Error>> {
    let r = &outcome.report;
    let effective = symmetry_override.unwrap_or(manifest.symmetry);
    let symmetry = format!("{effective:?}").to_lowercase();
    let fingerprint = r["campaign"]["fingerprint"].as_str().unwrap_or("?");
    let wall_us = outcome.elapsed.as_micros() as u64;
    let mut appended = 0usize;
    for row in r["jobs"].as_array().into_iter().flatten() {
        let mut kpis = json!({
            "outcome": row["outcome"].clone(),
            "states": row["states"].clone(),
            "legit": row["legit"].clone(),
        });
        if let Value::Object(map) = &mut kpis {
            map.retain(|_, v| !v.is_null());
        }
        let mut meta = RegistryRow::meta_now(wall_us);
        if let Value::Object(map) = &mut meta {
            map.insert(
                "fingerprint".to_owned(),
                Value::String(fingerprint.to_owned()),
            );
        }
        let registry_row = RegistryRow {
            source: "sweep".to_owned(),
            spec: row["spec"].as_str().unwrap_or("?").to_owned(),
            kind: "check".to_owned(),
            k: format!("{}..{}", row["k"], row["k"]),
            knobs: json!({"max_states": manifest.max_states, "symmetry": symmetry.clone()}),
            kpis,
            meta,
        };
        append_row(path, &registry_row)
            .map_err(|e| format!("cannot append to `{}`: {e}", path.display()))?;
        appended += 1;
    }
    logger::info(format!(
        "appended {appended} registry row(s) to {}",
        path.display()
    ));
    Ok(())
}

/// Writes one telemetry document as pretty JSON with a trailing newline.
fn write_json_doc(path: &Path, doc: &Value) -> Result<(), Box<dyn std::error::Error>> {
    let mut text = serde_json::to_string_pretty(doc)?;
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    logger::info(format!("wrote {}", path.display()));
    Ok(())
}

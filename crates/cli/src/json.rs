//! JSON rendering of analysis results (the `--json` flag), for piping into
//! other tooling.
//!
//! The builders shared with the HTTP service — the per-K convergence row
//! and the synthesis outcome — live in [`selfstab_serve::render`] so the
//! service's result documents are byte-identical to the CLI's by
//! construction; they are re-exported here for the commands. Only the
//! purely local [`stabilization_report`] has no service counterpart.

use selfstab_core::livelock::CertificateScope;
use selfstab_core::report::StabilizationReport;
use selfstab_protocol::Protocol;
pub use selfstab_serve::render::{convergence_report, synthesis_outcome};
use serde_json::{json, Value};

/// The local [`StabilizationReport`] as JSON.
pub fn stabilization_report(protocol: &Protocol, report: &StabilizationReport) -> Value {
    let witnesses: Vec<Value> = report
        .deadlock
        .witnesses()
        .iter()
        .map(|w| {
            json!({
                "ring_size": w.base_ring_size,
                "cycle": w.cycle.iter()
                    .map(|&s| protocol.space().format_compact(s, protocol.domain()))
                    .collect::<Vec<_>>(),
                "configuration": w.configuration.iter()
                    .map(|&v| protocol.domain().label(v))
                    .collect::<Vec<_>>(),
            })
        })
        .collect();
    json!({
        "protocol": protocol.name(),
        "deadlock": {
            "free_for_all_k": report.deadlock.is_free_for_all_k(),
            "local_deadlocks": report.deadlock.local_deadlock_count(),
            "illegitimate_deadlocks": report.deadlock.illegitimate_deadlock_count(),
            "witnesses": witnesses,
            "witnesses_truncated": report.deadlock.witnesses_truncated(),
            "deadlocked_ring_sizes_up_to_20": report.deadlock.deadlocked_ring_sizes(20),
        },
        "livelock": {
            "certified_free": report.livelock.certified_free(),
            "scope": match report.livelock.scope() {
                CertificateScope::AllLivelocks => "all_livelocks",
                CertificateScope::ContiguousLivelocksOnly => "contiguous_livelocks_only",
            },
            "self_terminating": report.livelock.self_terminating(),
            "process_self_disabling": report.livelock.process_self_disabling(),
            "pseudo_livelock_support": report.livelock.pseudo_livelock_support().len(),
            "blocking_trail": report.livelock.trail().map(|t| t.display(protocol)),
        },
        "closure": match &report.closure {
            Ok(()) => json!({"closed": true}),
            Err(v) => json!({"closed": false, "violation": v.to_string()}),
        },
        "self_stabilizing_for_all_k": report.is_self_stabilizing_for_all_k(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_global::check::ConvergenceReport;
    use selfstab_global::RingInstance;
    use selfstab_protocol::{Domain, Locality};

    fn protocol() -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn stabilization_json_shape() {
        let p = protocol();
        let r = StabilizationReport::analyze(&p);
        let v = stabilization_report(&p, &r);
        assert_eq!(v["protocol"], "ag");
        assert_eq!(v["deadlock"]["free_for_all_k"], true);
        assert_eq!(v["livelock"]["certified_free"], true);
        assert_eq!(v["self_stabilizing_for_all_k"], true);
        assert!(v["livelock"]["blocking_trail"].is_null());
    }

    #[test]
    fn convergence_json_shape() {
        let p = protocol();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let r = ConvergenceReport::check(&ring);
        let v = convergence_report(&r);
        assert_eq!(v["ring_size"], 4);
        assert_eq!(v["self_stabilizing"], true);
        assert!(v["livelock_length"].is_null());
    }
}

//! JSON rendering of analysis results (the `--json` flag), for piping into
//! other tooling.

use selfstab_core::livelock::CertificateScope;
use selfstab_core::report::StabilizationReport;
use selfstab_global::check::ConvergenceReport;
use selfstab_protocol::file::render_protocol_file;
use selfstab_protocol::Protocol;
use selfstab_synth::{SynthesisOutcome, SynthesisVerdict};
use selfstab_telemetry::SynthesisCountersSnapshot;
use serde_json::{json, Value};

/// The local [`StabilizationReport`] as JSON.
pub fn stabilization_report(protocol: &Protocol, report: &StabilizationReport) -> Value {
    let witnesses: Vec<Value> = report
        .deadlock
        .witnesses()
        .iter()
        .map(|w| {
            json!({
                "ring_size": w.base_ring_size,
                "cycle": w.cycle.iter()
                    .map(|&s| protocol.space().format_compact(s, protocol.domain()))
                    .collect::<Vec<_>>(),
                "configuration": w.configuration.iter()
                    .map(|&v| protocol.domain().label(v))
                    .collect::<Vec<_>>(),
            })
        })
        .collect();
    json!({
        "protocol": protocol.name(),
        "deadlock": {
            "free_for_all_k": report.deadlock.is_free_for_all_k(),
            "local_deadlocks": report.deadlock.local_deadlock_count(),
            "illegitimate_deadlocks": report.deadlock.illegitimate_deadlock_count(),
            "witnesses": witnesses,
            "witnesses_truncated": report.deadlock.witnesses_truncated(),
            "deadlocked_ring_sizes_up_to_20": report.deadlock.deadlocked_ring_sizes(20),
        },
        "livelock": {
            "certified_free": report.livelock.certified_free(),
            "scope": match report.livelock.scope() {
                CertificateScope::AllLivelocks => "all_livelocks",
                CertificateScope::ContiguousLivelocksOnly => "contiguous_livelocks_only",
            },
            "self_terminating": report.livelock.self_terminating(),
            "process_self_disabling": report.livelock.process_self_disabling(),
            "pseudo_livelock_support": report.livelock.pseudo_livelock_support().len(),
            "blocking_trail": report.livelock.trail().map(|t| t.display(protocol)),
        },
        "closure": match &report.closure {
            Ok(()) => json!({"closed": true}),
            Err(v) => json!({"closed": false, "violation": v.to_string()}),
        },
        "self_stabilizing_for_all_k": report.is_self_stabilizing_for_all_k(),
    })
}

/// A [`SynthesisOutcome`] as JSON. Only deterministic values appear (no
/// durations, no thread count, no scheduling-dependent counters), so the
/// document is byte-identical for every `--threads` setting.
pub fn synthesis_outcome(
    protocol: &Protocol,
    outcome: &SynthesisOutcome,
    counters: &SynthesisCountersSnapshot,
) -> Value {
    let solutions: Vec<Value> = outcome
        .solutions()
        .iter()
        .map(|s| {
            json!({
                "verdict": match s.verdict {
                    SynthesisVerdict::NoPseudoLivelock => "no_pseudo_livelock",
                    SynthesisVerdict::PseudoLivelocksWithoutTrails =>
                        "pseudo_livelocks_without_trails",
                },
                "resolve": s.resolve.iter()
                    .map(|&st| protocol.space().format_compact(st, protocol.domain()))
                    .collect::<Vec<_>>(),
                "added": s.added.iter()
                    .map(|t| json!({
                        "from": protocol.space().format_compact(t.source, protocol.domain()),
                        "to": protocol.domain().label(t.target),
                    }))
                    .collect::<Vec<_>>(),
                "protocol_file": render_protocol_file(&s.protocol),
            })
        })
        .collect();
    json!({
        "protocol": protocol.name(),
        "success": outcome.is_success(),
        "truncated": outcome.truncated(),
        "cancelled": outcome.cancelled(),
        "counters": counters.deterministic_json(),
        "solutions": solutions,
    })
}

/// A fixed-size global [`ConvergenceReport`] as JSON.
pub fn convergence_report(report: &ConvergenceReport) -> Value {
    json!({
        "ring_size": report.ring_size,
        "state_count": report.state_count,
        "legit_count": report.legit_count,
        "closure_ok": report.closure_violation.is_none(),
        "illegitimate_deadlocks": report.illegitimate_deadlocks.len(),
        "livelock_length": report.livelock.as_ref().map(Vec::len),
        "self_stabilizing": report.self_stabilizing(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_global::RingInstance;
    use selfstab_protocol::{Domain, Locality};

    fn protocol() -> Protocol {
        Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn stabilization_json_shape() {
        let p = protocol();
        let r = StabilizationReport::analyze(&p);
        let v = stabilization_report(&p, &r);
        assert_eq!(v["protocol"], "ag");
        assert_eq!(v["deadlock"]["free_for_all_k"], true);
        assert_eq!(v["livelock"]["certified_free"], true);
        assert_eq!(v["self_stabilizing_for_all_k"], true);
        assert!(v["livelock"]["blocking_trail"].is_null());
    }

    #[test]
    fn convergence_json_shape() {
        let p = protocol();
        let ring = RingInstance::symmetric(&p, 4).unwrap();
        let r = ConvergenceReport::check(&ring);
        let v = convergence_report(&r);
        assert_eq!(v["ring_size"], 4);
        assert_eq!(v["self_stabilizing"], true);
        assert!(v["livelock_length"].is_null());
    }
}

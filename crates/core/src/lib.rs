//! Local reasoning for global convergence of parameterized rings.
//!
//! This crate implements the contribution of Farahat & Ebnenasir (ICDCS
//! 2012): verification of self-stabilization properties of *parameterized*
//! ring protocols — for **every** ring size `K` at once — using only the
//! local state space of the representative process.
//!
//! * [`rcg`] — the Right Continuation Graph of Definition 4.1: arcs between
//!   local states that can be adjacent on a ring.
//! * [`deadlock`] — the **Theorem 4.2** check: `p(K)` is deadlock-free
//!   outside `I(K)` for every `K` *iff* the RCG induced over local deadlocks
//!   has no directed cycle through an illegitimate local state. The check is
//!   exact, and each offending cycle is reported with the ring sizes it
//!   witnesses (multiples of the cycle length).
//! * [`ltg`] — the Local Transition Graph of Definition 5.3 (RCG + t-arcs),
//!   Assumption 1/2 checks and the self-disabling transformation.
//! * [`pseudo`] — pseudo-livelocks (Definition 5.13): subsets of `δ_r`
//!   whose projection on the written variable repeats.
//! * [`trail`] — contiguous trails (Lemma 5.12): the alternating
//!   t-arc/s-arc structures that any livelock must leave in the LTG.
//! * [`livelock`] — the **Theorem 5.14** certificate: if no contiguous
//!   trail with pseudo-livelocking t-arcs and an illegitimate state exists,
//!   the protocol is livelock-free on unidirectional rings of every size.
//! * [`closure`] — a window-local closure check for `I(K)`.
//! * [`report`] — [`StabilizationReport`], bundling everything.
//! * [`hash`] — canonical, parse-tree-based spec hashing for
//!   content-addressed result caching (the `selfstab serve` layer).
//! * [`registry_row`] — the persistent results registry's canonical
//!   JSONL row schema (appended by serve/sweep/bench, queried by
//!   `selfstab registry`).
//!
//! # Examples
//!
//! The 3-coloring protocol synthesized with t-arcs `{t01, t12, t20}`
//! passes the deadlock check but fails the livelock certificate — exactly
//! the situation of the paper's Section 6.1 walk-through:
//!
//! ```
//! use selfstab_protocol::{Domain, Locality, Protocol};
//! use selfstab_core::{deadlock::DeadlockAnalysis, livelock::LivelockAnalysis};
//!
//! let p = Protocol::builder("3col", Domain::numeric("c", 3), Locality::unidirectional())
//!     .action("c[r-1] == 0 && c[r] == 0 -> c[r] := 1")?
//!     .action("c[r-1] == 1 && c[r] == 1 -> c[r] := 2")?
//!     .action("c[r-1] == 2 && c[r] == 2 -> c[r] := 0")?
//!     .legit("c[r] != c[r-1]")?
//!     .build()?;
//!
//! assert!(DeadlockAnalysis::analyze(&p).is_free_for_all_k());
//! assert!(!LivelockAnalysis::analyze(&p).certified_free());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod deadlock;
pub mod hash;
pub mod livelock;
pub mod ltg;
pub mod pseudo;
pub mod rcg;
pub mod registry_row;
pub mod report;
pub mod trail;

pub use closure::{local_closure_check, ClosureViolation};
pub use deadlock::DeadlockAnalysis;
pub use hash::{spec_hash, SpecHash};
pub use livelock::LivelockAnalysis;
pub use ltg::Ltg;
pub use rcg::Rcg;
pub use registry_row::{append_row, read_rows, RegistryRow};
pub use report::StabilizationReport;
pub use trail::{ContiguousTrail, TrailStep};

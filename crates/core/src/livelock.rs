//! Livelock-freedom for every ring size: the Theorem 5.14 certificate.

use selfstab_protocol::{LocalTransition, Protocol};

use crate::ltg::{is_process_self_disabling, is_self_terminating, Ltg};
use crate::pseudo::{minimal_pseudo_livelocks, pseudo_livelock_support};
use crate::trail::{find_contiguous_trail, ContiguousTrail, TrailQuery};

/// How far the Theorem 5.14 certificate reaches for a protocol's topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateScope {
    /// Unidirectional ring: the certificate rules out **all** livelocks at
    /// every ring size.
    AllLivelocks,
    /// Bidirectional ring: contiguous livelocks are ruled out, but other
    /// livelock shapes are beyond Theorem 5.14 (the paper, end of §5).
    ContiguousLivelocksOnly,
}

/// The result of the Theorem 5.14 livelock-freedom analysis.
///
/// The theorem gives *sufficient* conditions: when
/// [`LivelockAnalysis::certified_free`] is `true`, the protocol has no
/// livelock outside `I(K)` on unidirectional rings of any size. When it is
/// `false`, a trail witness is reported, but a real livelock need not exist
/// (the paper's sum-not-two example exhibits exactly this gap).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_core::LivelockAnalysis;
///
/// let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// assert!(LivelockAnalysis::analyze(&p).certified_free());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct LivelockAnalysis {
    certified: bool,
    scope: CertificateScope,
    self_terminating: bool,
    process_self_disabling: bool,
    support: Vec<LocalTransition>,
    trail: Option<ContiguousTrail>,
    pseudo_livelock_trails: Vec<(Vec<LocalTransition>, ContiguousTrail)>,
}

impl LivelockAnalysis {
    /// Runs the analysis.
    pub fn analyze(protocol: &Protocol) -> Self {
        Self::analyze_with_ltg(protocol, &Ltg::build(protocol))
    }

    /// Runs the analysis against a pre-built LTG.
    pub fn analyze_with_ltg(protocol: &Protocol, ltg: &Ltg) -> Self {
        let scope = if protocol.locality().right() == 0 {
            CertificateScope::AllLivelocks
        } else {
            CertificateScope::ContiguousLivelocksOnly
        };
        let self_terminating = is_self_terminating(protocol);
        // Theorem 5.14's supporting lemmas (5.5, 5.12) rely on a process
        // being *disabled* after each of its transitions ("every local
        // transition of any process P_i disables P_i"). Transition-granular
        // actions satisfy the action-level Assumption 2 by construction,
        // but an enablement *chain* — a transition whose target state is
        // again enabled — breaks the process-level reading, and protocols
        // with such chains can livelock without leaving a Lemma 5.12 trail
        // (found by this workspace's property tests). The certificate
        // therefore also requires the process-level normal form.
        let process_self_disabling = is_process_self_disabling(protocol);
        // Theorem 5.14's condition 1 ("the trail visits an illegitimate
        // local state") is justified by Lemma 5.9, whose proof uses closure
        // of I in p — an input assumption of Problem 3.1. Closure must hold
        // for *every* K: at a single size it can hold vacuously (e.g. odd
        // rings of 2-coloring have empty I) while failing at another, so
        // the K-independent window-local check is required. High-volume
        // property testing surfaced exactly this: an unclosed protocol
        // whose K=3 livelock ran entirely through legitimate enabled
        // windows.
        let closed = crate::closure::local_closure_check(protocol).is_ok();
        let assumptions_hold = self_terminating && process_self_disabling && closed;

        let transitions: Vec<LocalTransition> = protocol.transitions().collect();
        // Theorem 5.14 condition 2: the *used* t-arcs of a qualifying trail
        // must form pseudo-livelocks, and every such arc lies in the
        // pseudo-livelock support of δ_r. The search therefore enumerates
        // the subsets of the support that are unions of pseudo-livelocks
        // and looks for a trail using each subset exactly (`cover_all`) —
        // complete, because a qualifying trail's used set is one of these
        // subsets. When the support is too large to enumerate, it falls
        // back to a single search over the whole support, which
        // over-approximates (may reject certifiable protocols) but never
        // certifies unsoundly.
        let support = pseudo_livelock_support(&transitions, protocol.space(), protocol.locality());
        let illegit = protocol.legit().negated();

        // A protocol that is not self-terminating can loop locally; the
        // theorem's assumptions fail, so nothing is certified.
        let trail = if !assumptions_hold {
            None
        } else if support.len() <= 12 {
            let mut found = None;
            for mask in 1u32..(1u32 << support.len()) {
                let subset: Vec<LocalTransition> = support
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, t)| *t)
                    .collect();
                if !crate::pseudo::forms_pseudo_livelock_union(
                    &subset,
                    protocol.space(),
                    protocol.locality(),
                ) {
                    continue;
                }
                if let Some(t) = find_contiguous_trail(
                    ltg,
                    protocol,
                    &TrailQuery {
                        allowed: &subset,
                        must_visit: Some(illegit.as_bitset()),
                        cover_all: true,
                    },
                ) {
                    found = Some(t);
                    break;
                }
            }
            found
        } else {
            find_contiguous_trail(
                ltg,
                protocol,
                &TrailQuery {
                    allowed: &support,
                    must_visit: Some(illegit.as_bitset()),
                    cover_all: false,
                },
            )
        };

        // Diagnostics: which minimal pseudo-livelocks can realize a trail on
        // their own (the per-candidate view of the synthesis methodology).
        let mut pseudo_livelock_trails = Vec::new();
        if assumptions_hold {
            for pl in
                minimal_pseudo_livelocks(&transitions, protocol.space(), protocol.locality(), 64)
            {
                if pl.len() > 16 {
                    continue;
                }
                if let Some(t) = find_contiguous_trail(
                    ltg,
                    protocol,
                    &TrailQuery {
                        allowed: &pl,
                        must_visit: Some(illegit.as_bitset()),
                        cover_all: true,
                    },
                ) {
                    pseudo_livelock_trails.push((pl, t));
                }
            }
        }

        LivelockAnalysis {
            certified: assumptions_hold && trail.is_none(),
            scope,
            self_terminating,
            process_self_disabling,
            support,
            trail,
            pseudo_livelock_trails,
        }
    }

    /// `true` iff the sufficient conditions hold: no contiguous trail with
    /// pseudo-livelocking t-arcs visits an illegitimate state. On
    /// unidirectional rings this certifies livelock-freedom for **every**
    /// `K`; see [`LivelockAnalysis::scope`].
    pub fn certified_free(&self) -> bool {
        self.certified
    }

    /// What the certificate covers for this protocol's topology.
    pub fn scope(&self) -> CertificateScope {
        self.scope
    }

    /// Whether Assumption 1 (self-termination) holds; if not, nothing is
    /// certified.
    pub fn self_terminating(&self) -> bool {
        self.self_terminating
    }

    /// Whether the process-level self-disabling normal form holds (no
    /// transition lands in an enabled state); if not, nothing is certified.
    /// Apply [`crate::ltg::make_self_disabling`]-style normalization — or
    /// redesign the actions — to restore it.
    pub fn process_self_disabling(&self) -> bool {
        self.process_self_disabling
    }

    /// The t-arcs that could participate in a pseudo-livelock.
    pub fn pseudo_livelock_support(&self) -> &[LocalTransition] {
        &self.support
    }

    /// The blocking trail witness, when certification failed.
    pub fn trail(&self) -> Option<&ContiguousTrail> {
        self.trail.as_ref()
    }

    /// Minimal pseudo-livelocks that realize a covering trail on their own,
    /// with their witnesses.
    pub fn pseudo_livelock_trails(&self) -> &[(Vec<LocalTransition>, ContiguousTrail)] {
        &self.pseudo_livelock_trails
    }
}

impl std::fmt::Display for LivelockAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "livelock-freedom (Theorem 5.14): {}",
            if self.certified {
                match self.scope {
                    CertificateScope::AllLivelocks => "CERTIFIED free for all K",
                    CertificateScope::ContiguousLivelocksOnly => {
                        "CERTIFIED free of contiguous livelocks for all K"
                    }
                }
            } else if !self.self_terminating {
                "UNKNOWN (protocol is not self-terminating; Assumption 1 fails)"
            } else if !self.process_self_disabling {
                "UNKNOWN (a transition lands in an enabled state; the self-disabling normal form of Assumption 2 fails)"
            } else if self.trail.is_none() {
                "UNKNOWN (I is not closed in the protocol; Problem 3.1's input assumption fails)"
            } else {
                "UNKNOWN (a qualifying contiguous trail exists)"
            }
        )?;
        writeln!(
            f,
            "  pseudo-livelock support: {} of the protocol's t-arcs",
            self.support.len()
        )?;
        if let Some(t) = &self.trail {
            writeln!(f, "  blocking trail: {} steps", t.steps.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    #[test]
    fn one_sided_agreement_certified() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(a.certified_free());
        assert_eq!(a.scope(), CertificateScope::AllLivelocks);
        assert!(a.pseudo_livelock_support().is_empty());
    }

    #[test]
    fn two_sided_agreement_not_certified() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions([
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ])
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(!a.certified_free());
        assert!(a.trail().is_some());
        assert_eq!(a.pseudo_livelock_support().len(), 2);
        // The minimal pseudo-livelock {t01, t10} has a covering trail.
        assert_eq!(a.pseudo_livelock_trails().len(), 1);
    }

    #[test]
    fn two_coloring_not_certified() {
        let p = Protocol::builder("2col", Domain::numeric("c", 2), Locality::unidirectional())
            .actions([
                "c[r-1] == 0 && c[r] == 0 -> c[r] := 1",
                "c[r-1] == 1 && c[r] == 1 -> c[r] := 0",
            ])
            .unwrap()
            .legit("c[r] != c[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(!a.certified_free());
    }

    #[test]
    fn sum_not_two_accepted_candidate_certified() {
        // {t21, t12, t01}: t21/t12 form a pseudo-livelock but no trail where
        // they solely participate (paper, §6.2).
        let p = Protocol::builder("sn2", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 2], 1) // t21 (from ⟨0,2⟩: 2 -> 1)
            .unwrap()
            .transition(&[1, 1], 2) // t12
            .unwrap()
            .transition(&[2, 0], 1) // t01
            .unwrap()
            .legit("x[r] + x[r-1] != 2")
            .unwrap()
            .build()
            .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(a.certified_free(), "{a}");
    }

    #[test]
    fn sum_not_two_rejected_candidate_not_certified() {
        // {t21, t10, t02}: forms a pseudo-livelock AND participates in a
        // trail (paper, §6.2) — cannot be certified.
        let p = Protocol::builder("sn2", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 2], 1) // t21
            .unwrap()
            .transition(&[1, 1], 0) // t10
            .unwrap()
            .transition(&[2, 0], 2) // t02
            .unwrap()
            .legit("x[r] + x[r-1] != 2")
            .unwrap()
            .build()
            .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(!a.certified_free());
        assert!(a.trail().is_some());
    }

    #[test]
    fn enablement_chains_are_not_certified() {
        // Regression: found by property testing. With the chain
        // ⟨0,2⟩ →B ⟨0,1⟩ →A ⟨0,0⟩ (B's target is enabled), the protocol
        // below livelocks at K = 3 *without* leaving a Lemma 5.12 trail —
        // the lemma's derivation assumes a process is disabled after each
        // of its transitions. Action-level self-disabling (the paper's
        // literal Assumption 2, automatic at transition granularity) is
        // NOT enough; the certificate must require the process-level
        // normal form.
        let p = Protocol::builder("chain", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 1], 0) // A
            .unwrap()
            .transition(&[0, 2], 1) // B (target ⟨0,1⟩ is enabled!)
            .unwrap()
            .transition(&[2, 0], 1) // C
            .unwrap()
            .transition(&[2, 0], 2) // D
            .unwrap()
            .legit_fn(|id, _| id.index() == 8) // only ⟨2,2⟩ legitimate
            .build()
            .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(a.self_terminating());
        assert!(!a.process_self_disabling());
        assert!(
            !a.certified_free(),
            "would be unsound: the protocol livelocks at K=3"
        );
    }

    #[test]
    fn non_self_terminating_protocols_are_not_certified() {
        let p = Protocol::builder(
            "toggle",
            Domain::numeric("x", 2),
            Locality::unidirectional(),
        )
        .transition(&[1, 0], 1)
        .unwrap()
        .transition(&[1, 1], 0)
        .unwrap()
        .legit("x[r] == x[r-1]")
        .unwrap()
        .build()
        .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert!(!a.self_terminating());
        assert!(!a.certified_free());
    }

    #[test]
    fn bidirectional_scope_is_contiguous_only() {
        let p = Protocol::builder(
            "mm",
            Domain::named("m", ["left", "right", "self"]),
            Locality::bidirectional(),
        )
        .legit_all()
        .build()
        .unwrap();
        let a = LivelockAnalysis::analyze(&p);
        assert_eq!(a.scope(), CertificateScope::ContiguousLivelocksOnly);
    }
}

//! The Right Continuation Graph (Definition 4.1).

use selfstab_graph::{dot, BitSet, DiGraph};
use selfstab_protocol::{LocalPredicate, LocalStateId, Protocol};

/// The Right Continuation Graph `RCG_p` of a ring protocol.
///
/// Vertices are the local states of the representative process `P_r`; there
/// is an arc `s₁ → s₂` iff `s₂` is a possible local state of `P_{r+1}` when
/// `P_r` is in `s₁` — i.e. the windows agree on the shared variables
/// `R_r ∩ R_{r+1}` (the last `left+right` entries of `s₁` equal the first
/// `left+right` entries of `s₂`).
///
/// The RCG depends only on the domain and locality, not on `δ_r`: it
/// captures how *any* ring of local states can be assembled. Analyses
/// restrict it to interesting vertex sets (e.g. local deadlocks) via
/// [`Rcg::induced`].
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_core::Rcg;
///
/// let p = Protocol::builder("mm", Domain::named("m", ["left", "right", "self"]),
///                           Locality::bidirectional())
///     .legit_all()
///     .build()?;
/// let rcg = Rcg::build(&p);
/// // 27 local states, 3 continuations each (the overlap fixes 2 of 3 vars).
/// assert_eq!(rcg.graph().vertex_count(), 27);
/// assert_eq!(rcg.graph().arc_count(), 81);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Rcg {
    graph: DiGraph,
}

impl Rcg {
    /// Builds the full RCG of the protocol's local state space.
    pub fn build(protocol: &Protocol) -> Self {
        let space = protocol.space();
        let overlap = protocol.locality().overlap();
        let n = space.len();
        let mut graph = DiGraph::new(n);
        // The continuation relation is a shift: group states by their
        // overlap prefix to avoid the quadratic scan.
        let d = space.domain_size();
        let prefix_count = d.pow(overlap as u32);
        let mut by_prefix: Vec<Vec<u32>> = vec![Vec::new(); prefix_count];
        for id in space.ids() {
            let mut key = 0usize;
            for i in 0..overlap {
                key = key * d + space.value_at(id, i) as usize;
            }
            by_prefix[key].push(id.0);
        }
        for a in space.ids() {
            let mut key = 0usize;
            for i in 0..overlap {
                key = key * d + space.value_at(a, space.width() - overlap + i) as usize;
            }
            for &b in &by_prefix[key] {
                graph.add_arc(a.index(), b as usize);
            }
        }
        Rcg { graph }
    }

    /// The underlying directed graph (vertex `i` is local state `i`).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The subgraph induced over a set of local states (vertex identities
    /// are preserved; arcs incident to dropped states vanish).
    pub fn induced(&self, keep: &LocalPredicate) -> DiGraph {
        self.graph.induced(keep.as_bitset())
    }

    /// The right continuations of a local state.
    pub fn continuations(&self, s: LocalStateId) -> impl Iterator<Item = LocalStateId> + '_ {
        self.graph
            .successors(s.index())
            .iter()
            .map(|&v| LocalStateId(v))
    }

    /// Renders the RCG (or a subgraph of it) in Graphviz DOT, shading
    /// illegitimate local states like the paper's figures.
    ///
    /// `show` selects the vertices to draw (e.g. local deadlocks); pass
    /// `None` to draw everything.
    pub fn to_dot(&self, protocol: &Protocol, name: &str, show: Option<&BitSet>) -> String {
        let space = protocol.space();
        let domain = protocol.domain();
        dot::to_dot(
            &self.graph,
            name,
            |v| {
                if show.is_some_and(|s| !s.contains(v)) {
                    return None;
                }
                let id = LocalStateId(v as u32);
                Some(dot::VertexStyle {
                    label: space.format_compact(id, domain),
                    fill: if protocol.legit().holds(id) {
                        String::new()
                    } else {
                        "lightgray".to_owned()
                    },
                    shape: String::new(),
                })
            },
            |_, _| None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    fn protocol(d: usize, loc: Locality) -> Protocol {
        Protocol::builder("p", Domain::numeric("x", d), loc)
            .legit_all()
            .build()
            .unwrap()
    }

    #[test]
    fn unidirectional_rcg_is_de_bruijn() {
        // d=2, window [x_{r-1}, x_r]: arcs (a,b) -> (b,c): the de Bruijn
        // graph B(2,2): 4 vertices, 8 arcs, out-degree 2.
        let p = protocol(2, Locality::unidirectional());
        let rcg = Rcg::build(&p);
        assert_eq!(rcg.graph().vertex_count(), 4);
        assert_eq!(rcg.graph().arc_count(), 8);
        let sp = p.space();
        let s01 = sp.encode(&[0, 1]);
        let conts: Vec<_> = rcg.continuations(s01).collect();
        assert_eq!(conts, vec![sp.encode(&[1, 0]), sp.encode(&[1, 1])]);
    }

    #[test]
    fn bidirectional_overlap_two() {
        let p = protocol(3, Locality::bidirectional());
        let rcg = Rcg::build(&p);
        assert_eq!(rcg.graph().arc_count(), 27 * 3);
        let sp = p.space();
        // ⟨2,0,1⟩ continues to ⟨0,1,*⟩ only.
        let conts: Vec<Vec<u8>> = rcg
            .continuations(sp.encode(&[2, 0, 1]))
            .map(|c| sp.decode(c))
            .collect();
        assert_eq!(conts, vec![vec![0, 1, 0], vec![0, 1, 1], vec![0, 1, 2]]);
    }

    #[test]
    fn self_loops_on_constant_states() {
        let p = protocol(2, Locality::unidirectional());
        let rcg = Rcg::build(&p);
        let sp = p.space();
        assert!(rcg
            .graph()
            .has_arc(sp.encode(&[0, 0]).index(), sp.encode(&[0, 0]).index()));
        assert!(!rcg
            .graph()
            .has_arc(sp.encode(&[0, 1]).index(), sp.encode(&[0, 1]).index()));
    }

    #[test]
    fn matches_brute_force_definition() {
        for loc in [
            Locality::unidirectional(),
            Locality::bidirectional(),
            Locality::new(2, 1),
        ] {
            let p = protocol(2, loc);
            let rcg = Rcg::build(&p);
            let sp = p.space();
            for a in sp.ids() {
                for b in sp.ids() {
                    let expected = sp.is_right_continuation(a, b, loc.overlap());
                    assert_eq!(rcg.graph().has_arc(a.index(), b.index()), expected);
                }
            }
        }
    }

    #[test]
    fn dot_shades_illegitimate_states() {
        let p = Protocol::builder("p", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] != x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let rcg = Rcg::build(&p);
        let dot = rcg.to_dot(&p, "rcg", None);
        assert!(dot.contains("lightgray"));
        assert!(dot.contains("digraph"));
    }
}

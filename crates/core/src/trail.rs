//! Contiguous trails (Lemma 5.12): the footprint a livelock leaves in the
//! Local Transition Graph.
//!
//! Lemma 5.12 shows that a contiguous livelock with `|E|` circulating
//! enablements appears in the LTG as a closed *contiguous trail*:
//!
//! * `|E| = 1` — an alternation of t-arcs and s-arcs: `(t s)⁺`;
//! * `|E| > 1` — an alternation of walks `w₁` (`|E|` consecutive s-arcs,
//!   every vertex of which has an outgoing t-arc of the trail) and `w₂`
//!   (`2(K−|E|)` arcs alternating t and s).
//!
//! The searcher below looks for closed walks in a 3-phase product automaton
//! accepting the union of those shapes (allowing the block lengths to vary
//! between rounds — a superset, which keeps the Theorem 5.14 certificate
//! sound: a trail is never missed).

use std::collections::VecDeque;

use selfstab_graph::BitSet;
use selfstab_protocol::{LocalStateId, LocalTransition, Protocol};

use crate::ltg::Ltg;

/// The kind of an LTG arc in a trail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrailStep {
    /// A t-arc: the representative process executes a local transition.
    T(LocalTransition),
    /// An s-arc: attention moves to a right continuation.
    S(LocalStateId, LocalStateId),
}

impl TrailStep {
    /// The source local state of the step.
    pub fn from(&self) -> LocalStateId {
        match self {
            TrailStep::T(t) => t.source,
            TrailStep::S(a, _) => *a,
        }
    }
}

/// A closed contiguous trail found in the LTG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContiguousTrail {
    /// The steps, in order; the walk is closed (the last step's target is
    /// the first step's source).
    pub steps: Vec<TrailStep>,
}

impl ContiguousTrail {
    /// The t-arcs used by the trail (deduplicated, sorted).
    pub fn t_arcs(&self) -> Vec<LocalTransition> {
        let mut out: Vec<LocalTransition> = self
            .steps
            .iter()
            .filter_map(|s| match s {
                TrailStep::T(t) => Some(*t),
                TrailStep::S(..) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The local states visited.
    pub fn states(&self) -> Vec<LocalStateId> {
        let mut out: Vec<LocalStateId> = self.steps.iter().map(TrailStep::from).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Renders the trail in the paper's inline notation, e.g.
    /// `≪01, t, 00, s, 01, s, 10, t, 11≫`.
    pub fn display(&self, protocol: &Protocol) -> String {
        let sp = protocol.space();
        let dom = protocol.domain();
        let mut parts = Vec::new();
        for step in &self.steps {
            parts.push(sp.format_compact(step.from(), dom));
            parts.push(
                match step {
                    TrailStep::T(_) => "t",
                    TrailStep::S(..) => "s",
                }
                .to_owned(),
            );
        }
        format!("≪{}≫", parts.join(", "))
    }
}

/// Phases of the trail automaton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Inside `w₂`, a t-arc was just taken; an s-arc must follow.
    AfterT,
    /// Inside `w₂`, the s-arc following a t-arc was just taken; either
    /// another t-arc (continuing `w₂`) or the first s-arc of a `w₁` block
    /// may follow.
    AfterS,
    /// Inside a `w₁` s-block; another s-arc or the t-arc opening `w₂` may
    /// follow. Every vertex entered in this phase must have an outgoing
    /// allowed t-arc (Lemma 5.12's side condition on `w₁`).
    W1,
}

fn phase_index(p: Phase) -> usize {
    match p {
        Phase::AfterT => 0,
        Phase::AfterS => 1,
        Phase::W1 => 2,
    }
}

/// Options for the trail search.
#[derive(Clone, Debug)]
pub struct TrailQuery<'a> {
    /// The t-arcs the trail may use.
    pub allowed: &'a [LocalTransition],
    /// Require the trail to visit at least one state of this set (pass the
    /// illegitimate states for Theorem 5.14's condition 1).
    pub must_visit: Option<&'a BitSet>,
    /// Require the trail to use *every* allowed t-arc at least once (the
    /// synthesis methodology's per-pseudo-livelock check). Limited to 16
    /// allowed arcs.
    pub cover_all: bool,
}

/// Searches the LTG for a closed contiguous trail satisfying `query`.
///
/// Returns a witness trail, or `None` if no trail of the Lemma 5.12 shapes
/// exists under the constraints. The search is complete for the constraint
/// language above (it never misses a qualifying trail).
///
/// # Panics
///
/// Panics if `query.cover_all` is set with more than 16 allowed t-arcs.
pub fn find_contiguous_trail(
    ltg: &Ltg,
    protocol: &Protocol,
    query: &TrailQuery<'_>,
) -> Option<ContiguousTrail> {
    let n = protocol.space().len();
    let allowed = query.allowed;
    if allowed.is_empty() {
        return None;
    }
    assert!(
        !query.cover_all || allowed.len() <= 16,
        "cover_all trail search supports at most 16 t-arcs"
    );
    // The mask tracks t-arc usage: per-arc bits under `cover_all`, a single
    // any-t-arc bit otherwise. A trail of Lemma 5.12's shapes always
    // contains a t-arc, so a pure-s cycle must never satisfy the goal.
    let mask_bits = if query.cover_all { allowed.len() } else { 1 };
    let mask_count: usize = 1 << mask_bits;
    let full_mask: u32 = (mask_count - 1) as u32;

    // Per-vertex allowed t-arcs and the w₁ side condition.
    let mut t_from: Vec<Vec<(usize, LocalTransition)>> = vec![Vec::new(); n];
    for (i, t) in allowed.iter().enumerate() {
        t_from[t.source.index()].push((i, *t));
    }
    let has_out_t: Vec<bool> = (0..n).map(|v| !t_from[v].is_empty()).collect();

    let visit_bit = |v: usize| -> bool { query.must_visit.map(|s| s.contains(v)).unwrap_or(true) };

    // Product node encoding: ((v * 3 + phase) * mask_count + mask) * 2 + visited.
    let node = |v: usize, ph: Phase, mask: u32, visited: bool| -> usize {
        ((v * 3 + phase_index(ph)) * mask_count + mask as usize) * 2 + visited as usize
    };
    let total = n * 3 * mask_count * 2;

    // Start points: immediately before taking an allowed t-arc; trying both
    // possible phases at that point covers every closed walk (each contains
    // at least one t-arc).
    let mut starts: Vec<(usize, Phase)> = Vec::new();
    for t in allowed {
        let v = t.source.index();
        starts.push((v, Phase::AfterS));
        starts.push((v, Phase::W1));
    }
    starts.sort_unstable_by_key(|&(v, p)| (v, phase_index(p)));
    starts.dedup();

    for &(sv, sphase) in &starts {
        // W1 starts require the side condition on the start vertex.
        if sphase == Phase::W1 && !has_out_t[sv] {
            continue;
        }
        // BFS with parent pointers.
        let mut parent: Vec<Option<(usize, TrailStep)>> = vec![None; total];
        let mut seen = vec![false; total];
        let start_node = node(sv, sphase, 0, visit_bit(sv));
        seen[start_node] = true;
        let mut queue = VecDeque::new();
        queue.push_back((sv, sphase, 0u32, visit_bit(sv)));
        let goal = node(sv, sphase, full_mask, true);

        let mut found = false;
        while let Some((v, ph, mask, visited)) = queue.pop_front() {
            let cur = node(v, ph, mask, visited);
            let push = |nv: usize,
                        nph: Phase,
                        nmask: u32,
                        step: TrailStep,
                        parent_vec: &mut Vec<Option<(usize, TrailStep)>>,
                        seen: &mut Vec<bool>,
                        queue: &mut VecDeque<(usize, Phase, u32, bool)>|
             -> bool {
                let nvisited = visited || visit_bit(nv);
                let nn = node(nv, nph, nmask, nvisited);
                if nn == goal {
                    // Reaching the goal closes the walk — record the closing
                    // step even if the node was already seen (in particular
                    // when the goal *is* the start node).
                    if parent_vec[nn].is_none() {
                        parent_vec[nn] = Some((cur, step));
                    }
                    return true;
                }
                if !seen[nn] {
                    seen[nn] = true;
                    parent_vec[nn] = Some((cur, step));
                    queue.push_back((nv, nph, nmask, nvisited));
                }
                false
            };

            match ph {
                Phase::AfterT => {
                    for &u in ltg.s_arcs().successors(v) {
                        if push(
                            u as usize,
                            Phase::AfterS,
                            mask,
                            TrailStep::S(LocalStateId(v as u32), LocalStateId(u)),
                            &mut parent,
                            &mut seen,
                            &mut queue,
                        ) {
                            found = true;
                        }
                    }
                }
                Phase::AfterS => {
                    for &(i, t) in &t_from[v] {
                        let nmask = if query.cover_all { mask | (1 << i) } else { 1 };
                        let u = t.target_state(protocol.space(), protocol.locality());
                        if push(
                            u.index(),
                            Phase::AfterT,
                            nmask,
                            TrailStep::T(t),
                            &mut parent,
                            &mut seen,
                            &mut queue,
                        ) {
                            found = true;
                        }
                    }
                    if has_out_t[v] {
                        for &u in ltg.s_arcs().successors(v) {
                            if has_out_t[u as usize]
                                && push(
                                    u as usize,
                                    Phase::W1,
                                    mask,
                                    TrailStep::S(LocalStateId(v as u32), LocalStateId(u)),
                                    &mut parent,
                                    &mut seen,
                                    &mut queue,
                                )
                            {
                                found = true;
                            }
                        }
                    }
                }
                Phase::W1 => {
                    for &(i, t) in &t_from[v] {
                        let nmask = if query.cover_all { mask | (1 << i) } else { 1 };
                        let u = t.target_state(protocol.space(), protocol.locality());
                        if push(
                            u.index(),
                            Phase::AfterT,
                            nmask,
                            TrailStep::T(t),
                            &mut parent,
                            &mut seen,
                            &mut queue,
                        ) {
                            found = true;
                        }
                    }
                    for &u in ltg.s_arcs().successors(v) {
                        if has_out_t[u as usize]
                            && push(
                                u as usize,
                                Phase::W1,
                                mask,
                                TrailStep::S(LocalStateId(v as u32), LocalStateId(u)),
                                &mut parent,
                                &mut seen,
                                &mut queue,
                            )
                        {
                            found = true;
                        }
                    }
                }
            }
            if found {
                break;
            }
        }

        if found && parent[goal].is_some() {
            // Reconstruct the closed walk.
            let mut steps = Vec::new();
            let mut cur = goal;
            while let Some((prev, step)) = parent[cur] {
                steps.push(step);
                cur = prev;
                if cur == start_node {
                    break;
                }
            }
            steps.reverse();
            if !steps.is_empty() {
                return Some(ContiguousTrail { steps });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pseudo::pseudo_livelock_support;
    use selfstab_protocol::{Domain, Locality, Protocol};

    fn two_coloring_resolved() -> Protocol {
        Protocol::builder("2col", Domain::numeric("c", 2), Locality::unidirectional())
            .action("c[r-1] == 0 && c[r] == 0 -> c[r] := 1")
            .unwrap()
            .action("c[r-1] == 1 && c[r] == 1 -> c[r] := 0")
            .unwrap()
            .legit("c[r] != c[r-1]")
            .unwrap()
            .build()
            .unwrap()
    }

    fn query<'a>(
        allowed: &'a [LocalTransition],
        must_visit: Option<&'a BitSet>,
        cover_all: bool,
    ) -> TrailQuery<'a> {
        TrailQuery {
            allowed,
            must_visit,
            cover_all,
        }
    }

    #[test]
    fn two_coloring_trail_exists() {
        // The paper's Section 6.2: resolving both 00 and 11 yields the trail
        // ≪00, t, 01, s, 11, t, 10, s, 00≫.
        let p = two_coloring_resolved();
        let ltg = Ltg::build(&p);
        let allowed: Vec<LocalTransition> = p.transitions().collect();
        let support = pseudo_livelock_support(&allowed, p.space(), p.locality());
        assert_eq!(support.len(), 2);
        let illegit = p.legit().negated();
        let trail =
            find_contiguous_trail(&ltg, &p, &query(&support, Some(illegit.as_bitset()), false))
                .expect("the 2-coloring trail must be found");
        // Trail is closed.
        let first = trail.steps.first().unwrap().from();
        let last = match *trail.steps.last().unwrap() {
            TrailStep::T(t) => t.target_state(p.space(), p.locality()),
            TrailStep::S(_, b) => b,
        };
        assert_eq!(first, last);
        // It uses t-arcs and visits an illegitimate state.
        assert!(!trail.t_arcs().is_empty());
        assert!(trail.states().iter().any(|&s| illegit.holds(s)));
    }

    #[test]
    fn one_sided_agreement_has_no_trail() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ltg = Ltg::build(&p);
        let allowed: Vec<LocalTransition> = p.transitions().collect();
        let support = pseudo_livelock_support(&allowed, p.space(), p.locality());
        assert!(support.is_empty());
        assert!(find_contiguous_trail(&ltg, &p, &query(&support, None, false)).is_none());
    }

    #[test]
    fn agreement_with_both_actions_has_the_papers_trail() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .actions([
                "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
                "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
            ])
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ltg = Ltg::build(&p);
        let allowed: Vec<LocalTransition> = p.transitions().collect();
        let illegit = p.legit().negated();
        let trail =
            find_contiguous_trail(&ltg, &p, &query(&allowed, Some(illegit.as_bitset()), true))
                .expect("Section 6.2 exhibits this trail");
        assert_eq!(trail.t_arcs().len(), 2, "both t-arcs participate");
    }

    #[test]
    fn cover_all_unsatisfiable_when_arcs_disconnected() {
        // Allowed arcs on disjoint value cycles cannot appear in one trail
        // where each must be used: {0<->1} in an d=4 domain plus {2<->3}
        // living in disconnected parts of the projection.
        let p = Protocol::builder("p", Domain::numeric("x", 4), Locality::unidirectional())
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[1, 1], 0)
            .unwrap()
            .transition(&[2, 2], 3)
            .unwrap()
            .transition(&[3, 3], 2)
            .unwrap()
            .legit("x[r] != x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ltg = Ltg::build(&p);
        let allowed: Vec<LocalTransition> = p.transitions().collect();
        // All four arcs in a single covering trail: the s-arcs do connect
        // the 01 and 23 regions (any window can follow any other via the
        // overlap), so this asserts only that the search terminates and the
        // result (if any) covers everything.
        if let Some(trail) = find_contiguous_trail(&ltg, &p, &query(&allowed, None, true)) {
            assert_eq!(trail.t_arcs().len(), 4);
        }
    }

    #[test]
    fn display_renders_paper_notation() {
        let p = two_coloring_resolved();
        let ltg = Ltg::build(&p);
        let allowed: Vec<LocalTransition> = p.transitions().collect();
        let trail = find_contiguous_trail(&ltg, &p, &query(&allowed, None, false)).unwrap();
        let text = trail.display(&p);
        assert!(text.starts_with('≪') && text.ends_with('≫'));
        assert!(text.contains(", t") || text.contains("t,"));
    }
}

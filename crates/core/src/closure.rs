//! Window-local closure check for locally conjunctive predicates.
//!
//! Problem 3.1 requires the input predicate `I(K) = ∧_r LC_r` to be closed
//! in the protocol. Closure is a global property, but for ring protocols it
//! is determined by a bounded window: a transition of `P_i` can only affect
//! the `LC_j` of processes that read `x_i`, i.e. `j ∈ [i−right, i+left]`.
//! Quantifying over all valuations of the joint window of those processes
//! (width `2·(left+right) + 1`) decides closure for every ring larger than
//! the window; smaller rings are wrap-around instances of the same
//! valuations, so a pass here implies closure for all `K`.

use selfstab_protocol::{Protocol, Value};

/// A concrete closure violation found by [`local_closure_check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosureViolation {
    /// The joint window valuation around the moving process (the moving
    /// process is at the center).
    pub window: Vec<Value>,
    /// The value the center process writes.
    pub written: Value,
    /// Offset (relative to the writer) of the process whose `LC` breaks.
    pub broken_offset: isize,
}

impl std::fmt::Display for ClosureViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "closure violation: window {:?}, write {} breaks LC at offset {}",
            self.window, self.written, self.broken_offset
        )
    }
}

/// Checks that `LC_r` is closed in the protocol on every ring.
///
/// Returns the first violation found, or `Ok(())` if `I(K)` is closed in
/// `p(K)` for every `K` greater than the joint window (and, by wrap-around,
/// for smaller `K` too: a smaller ring's neighborhoods are a subset of the
/// checked valuations with repeated values).
///
/// The check is *sound*: `Ok(())` implies closure at every ring size. A
/// reported violation is a violation of the window condition; it lifts to a
/// real global closure violation whenever the window embeds in a fully
/// legitimate ring (true for all of the paper's predicates — cross-checked
/// against the global model checker in the integration tests).
///
/// # Errors
///
/// Returns the violating window assignment as a [`ClosureViolation`].
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_core::local_closure_check;
///
/// let good = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// assert!(local_closure_check(&good).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn local_closure_check(protocol: &Protocol) -> Result<(), ClosureViolation> {
    let loc = protocol.locality();
    let space = protocol.space();
    let d = protocol.domain().size();
    let (l, r) = (loc.left() as isize, loc.right() as isize);
    // Joint window spans offsets −(l+r) ..= (l+r) around the writer.
    let span = l + r;
    let width = (2 * span + 1) as usize;

    // Enumerate all joint valuations (d^width; small for the supported
    // localities).
    let total = d.pow(width as u32);
    let mut window = vec![0 as Value; width];
    for code in 0..total {
        let mut rest = code;
        for slot in window.iter_mut().rev() {
            *slot = (rest % d) as Value;
            rest /= d;
        }
        // Local state of the process at joint offset `o` (its window is
        // offsets o−l ..= o+r of the joint window).
        let local_at = |win: &[Value], o: isize| {
            let vals: Vec<Value> = (-l..=r).map(|dx| win[(o + dx + span) as usize]).collect();
            space.encode(&vals)
        };
        let writer_state = local_at(&window, 0);
        // Only consider globally legitimate neighborhoods: all processes
        // whose LC could be affected must currently satisfy it.
        let all_affected_legit = (-r..=l).all(|o| protocol.legit().holds(local_at(&window, o)));
        if !all_affected_legit {
            continue;
        }
        for &written in protocol.transitions_from(writer_state) {
            let mut after = window.clone();
            after[span as usize] = written;
            for o in -r..=l {
                if !protocol.legit().holds(local_at(&after, o)) {
                    return Err(ClosureViolation {
                        window: window.clone(),
                        written,
                        broken_offset: o,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    #[test]
    fn empty_protocol_is_trivially_closed() {
        let p = Protocol::builder("e", Domain::numeric("x", 3), Locality::unidirectional())
            .legit("x[r] != x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        assert!(local_closure_check(&p).is_ok());
    }

    #[test]
    fn violation_by_own_lc() {
        // From a legitimate window, flip to break own LC.
        let p = Protocol::builder("bad", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let v = local_closure_check(&p).unwrap_err();
        assert_eq!(v.broken_offset, 0);
        assert_eq!(v.written, 0);
    }

    #[test]
    fn violation_by_successor_lc() {
        // Writer keeps its own LC (LC is about own value vs predecessor) but
        // breaks the successor's: x=1 everywhere; P writes 0 when its window
        // is ⟨1,1⟩? That breaks its own LC. Use LC "x[r] == 1" style
        // instead: LC depends only on own+pred; to break only the
        // *successor*, the writer's new window must stay legit while the
        // successor's becomes illegitimate.
        // LC: x[r] >= x[r-1] over d=3. Window ⟨0,1⟩ legit; write 2 from
        // ⟨0,1⟩? then successor reading ⟨2, y⟩ breaks when y < 2.
        let p = Protocol::builder("bad", Domain::numeric("x", 3), Locality::unidirectional())
            .action("x[r-1] == 0 && x[r] == 1 -> x[r] := 2")
            .unwrap()
            .legit("x[r] >= x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let v = local_closure_check(&p).unwrap_err();
        assert_eq!(v.broken_offset, 1, "the successor's LC breaks");
    }

    #[test]
    fn maximal_matching_style_closure_holds_for_convergent_action() {
        // Action only fires in illegitimate windows: closure cannot break.
        let p = Protocol::builder("ok", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        assert!(local_closure_check(&p).is_ok());
    }

    #[test]
    fn bidirectional_joint_window_is_checked() {
        // Bidirectional: predecessor's LC can break too (broken_offset may
        // be positive up to left span; negative down to -right span).
        let d = Domain::named("m", ["left", "right", "self"]);
        let p = Protocol::builder("mm", d, Locality::bidirectional())
            // From a matched pair (right,left), unilaterally unmatch. The
            // window [self,right,left,self,right] is fully legitimate, so
            // the write breaks closure.
            .action("m[r-1] == right && m[r] == left && m[r+1] == self -> m[r] := self")
            .unwrap()
            .legit(
                "(m[r] == right && m[r+1] == left) || (m[r-1] == right && m[r] == left) || \
                 (m[r-1] == left && m[r] == self && m[r+1] == right)",
            )
            .unwrap()
            .build()
            .unwrap();
        assert!(local_closure_check(&p).is_err());
    }
}

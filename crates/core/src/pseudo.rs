//! Pseudo-livelocks (Definition 5.13): subsets of local transitions whose
//! projection on the writable variable forms a repeating value sequence.

use selfstab_graph::{
    cycles::{simple_cycles, CycleBudget},
    scc::strongly_connected_components,
    DiGraph,
};
use selfstab_protocol::{LocalStateSpace, LocalTransition, Locality, Value};

/// The projection of a set of local transitions on the writable variable:
/// a directed graph over domain values with an arc `old → new` for each
/// transition writing `new` from a state whose own value is `old`.
pub fn value_projection(
    transitions: &[LocalTransition],
    space: &LocalStateSpace,
    locality: Locality,
) -> DiGraph {
    let mut g = DiGraph::new(space.domain_size());
    for t in transitions {
        let (old, new) = t.write_projection(space, locality);
        g.add_arc(old as usize, new as usize);
    }
    g
}

/// Returns `true` if `transitions` *as a whole* form a pseudo-livelock:
/// the set is non-empty and its value projection admits a closed walk
/// covering every projected arc — equivalently, all projected arcs lie in a
/// single strongly connected component.
///
/// This matches the paper's examples: `{t01, t12, t20}` projects to the
/// cycle `0→1→2→0` (a pseudo-livelock), while `{t01, t12, t21}` projects to
/// `0→1` plus the cycle `1⇄2` — the arc `0→1` is not on any cycle, so the
/// set as a whole is not a pseudo-livelock (though its subset `{t12, t21}`
/// is).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, LocalStateSpace, LocalTransition};
/// use selfstab_core::pseudo::forms_pseudo_livelock;
///
/// let d = Domain::numeric("x", 3);
/// let loc = Locality::unidirectional();
/// let sp = LocalStateSpace::new(&d, loc);
/// let t01 = LocalTransition::new(sp.encode(&[0, 0]), 1);
/// let t12 = LocalTransition::new(sp.encode(&[1, 1]), 2);
/// let t20 = LocalTransition::new(sp.encode(&[2, 2]), 0);
/// let t21 = LocalTransition::new(sp.encode(&[2, 2]), 1);
///
/// assert!(forms_pseudo_livelock(&[t01, t12, t20], &sp, loc));
/// assert!(!forms_pseudo_livelock(&[t01, t12, t21], &sp, loc));
/// assert!(forms_pseudo_livelock(&[t12, t21], &sp, loc));
/// ```
pub fn forms_pseudo_livelock(
    transitions: &[LocalTransition],
    space: &LocalStateSpace,
    locality: Locality,
) -> bool {
    if transitions.is_empty() {
        return false;
    }
    let g = value_projection(transitions, space, locality);
    let sccs = strongly_connected_components(&g);
    // Every arc must lie inside one common SCC (and on a cycle within it).
    let mut component = None;
    for (u, v) in g.arcs() {
        let cu = sccs.component_of(u);
        if sccs.component_of(v) != cu {
            return false; // arc between components: not on any cycle
        }
        if sccs.components()[cu].len() == 1 && !g.has_arc(u, u) {
            return false; // singleton without self-loop: no cycle
        }
        match component {
            None => component = Some(cu),
            Some(c) if c == cu => {}
            Some(_) => return false, // two disjoint cyclic families
        }
    }
    true
}

/// Returns `true` if `transitions` form a (possibly disjoint) *union of
/// pseudo-livelocks*: the set is non-empty and every projected value arc
/// lies on a directed cycle within the set's own projection.
///
/// This is Theorem 5.14's condition 2 as it applies to the t-arcs of a
/// trail: in a livelock every process's write sequence repeats, so each
/// used t-arc's projection must close into a cycle among the used arcs —
/// but different processes may follow different cycles, hence the union.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, LocalStateSpace, LocalTransition};
/// use selfstab_core::pseudo::forms_pseudo_livelock_union;
///
/// let d = Domain::numeric("x", 4);
/// let loc = Locality::unidirectional();
/// let sp = LocalStateSpace::new(&d, loc);
/// let swap01 = [
///     LocalTransition::new(sp.encode(&[0, 0]), 1),
///     LocalTransition::new(sp.encode(&[0, 1]), 0),
/// ];
/// let swap23 = [
///     LocalTransition::new(sp.encode(&[0, 2]), 3),
///     LocalTransition::new(sp.encode(&[0, 3]), 2),
/// ];
/// let both: Vec<_> = swap01.iter().chain(&swap23).copied().collect();
/// // Two disjoint cycles: a union of pseudo-livelocks (though not a single
/// // pseudo-livelock).
/// assert!(forms_pseudo_livelock_union(&both, &sp, loc));
/// // A dangling arc disqualifies the set.
/// let with_dangling: Vec<_> = both
///     .iter()
///     .copied()
///     .chain([LocalTransition::new(sp.encode(&[1, 0]), 2)])
///     .collect();
/// assert!(!forms_pseudo_livelock_union(&with_dangling, &sp, loc));
/// ```
pub fn forms_pseudo_livelock_union(
    transitions: &[LocalTransition],
    space: &LocalStateSpace,
    locality: Locality,
) -> bool {
    if transitions.is_empty() {
        return false;
    }
    let g = value_projection(transitions, space, locality);
    let sccs = strongly_connected_components(&g);
    let ok = g.arcs().all(|(u, v)| {
        sccs.component_of(u) == sccs.component_of(v)
            && (sccs.components()[sccs.component_of(u)].len() > 1 || g.has_arc(u, u))
    });
    ok
}

/// Returns the subset of `transitions` that can participate in *some*
/// pseudo-livelock: transitions whose projected value arc lies on a
/// directed cycle of the full value projection.
///
/// Theorem 5.14's condition 2 requires the t-arcs of a livelock's trail to
/// form pseudo-livelocks; since any pseudo-livelock within a candidate set
/// projects into cycles of the candidate set's value projection, a trail's
/// t-arcs are always drawn from this subset. Restricting the trail search
/// to it is therefore complete (never misses a qualifying trail).
pub fn pseudo_livelock_support(
    transitions: &[LocalTransition],
    space: &LocalStateSpace,
    locality: Locality,
) -> Vec<LocalTransition> {
    let g = value_projection(transitions, space, locality);
    let sccs = strongly_connected_components(&g);
    transitions
        .iter()
        .copied()
        .filter(|t| {
            let (old, new) = t.write_projection(space, locality);
            let (u, v) = (old as usize, new as usize);
            sccs.component_of(u) == sccs.component_of(v)
                && (sccs.components()[sccs.component_of(u)].len() > 1 || g.has_arc(u, u))
        })
        .collect()
}

/// Enumerates the *minimal* pseudo-livelocks within `transitions`: for each
/// simple cycle of the value projection, every way of realizing each value
/// arc with one transition.
///
/// Minimal pseudo-livelocks are the units the synthesis methodology reasons
/// about in its step 5 (each is checked for participation in a contiguous
/// trail). The enumeration is budgeted by `max_results`.
pub fn minimal_pseudo_livelocks(
    transitions: &[LocalTransition],
    space: &LocalStateSpace,
    locality: Locality,
    max_results: usize,
) -> Vec<Vec<LocalTransition>> {
    let g = value_projection(transitions, space, locality);
    let cycles = simple_cycles(&g, CycleBudget::default());
    let mut out = Vec::new();
    for cycle in &cycles.cycles {
        // Realizations per arc of the cycle.
        let n = cycle.len();
        let arcs: Vec<(Value, Value)> = (0..n)
            .map(|i| (cycle[i] as Value, cycle[(i + 1) % n] as Value))
            .collect();
        let choices: Vec<Vec<LocalTransition>> = arcs
            .iter()
            .map(|&(a, b)| {
                transitions
                    .iter()
                    .copied()
                    .filter(|t| t.write_projection(space, locality) == (a, b))
                    .collect()
            })
            .collect();
        // Cartesian product, budgeted.
        let mut stack: Vec<Vec<LocalTransition>> = vec![Vec::new()];
        for opts in &choices {
            let mut next = Vec::new();
            for partial in &stack {
                for &t in opts {
                    let mut np = partial.clone();
                    np.push(t);
                    next.push(np);
                    if next.len() + out.len() > max_results {
                        break;
                    }
                }
            }
            stack = next;
        }
        for mut pl in stack {
            pl.sort_unstable();
            pl.dedup();
            if !pl.is_empty() && !out.contains(&pl) {
                out.push(pl);
                if out.len() >= max_results {
                    return out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::Domain;

    fn setup() -> (LocalStateSpace, Locality) {
        let d = Domain::numeric("x", 3);
        let loc = Locality::unidirectional();
        (LocalStateSpace::new(&d, loc), loc)
    }

    fn t(sp: &LocalStateSpace, pred: u8, old: u8, new: u8) -> LocalTransition {
        LocalTransition::new(sp.encode(&[pred, old]), new)
    }

    #[test]
    fn empty_set_is_not_a_pseudo_livelock() {
        let (sp, loc) = setup();
        assert!(!forms_pseudo_livelock(&[], &sp, loc));
    }

    #[test]
    fn single_transition_is_not_cyclic() {
        let (sp, loc) = setup();
        assert!(!forms_pseudo_livelock(&[t(&sp, 0, 0, 1)], &sp, loc));
    }

    #[test]
    fn two_way_swap_is_a_pseudo_livelock() {
        let (sp, loc) = setup();
        // Different guards (predecessor values) — projections 0->2 and 2->0.
        let set = [t(&sp, 0, 0, 2), t(&sp, 1, 2, 0)];
        assert!(forms_pseudo_livelock(&set, &sp, loc));
    }

    #[test]
    fn disjoint_cycles_are_not_one_repetitive_sequence() {
        let d = Domain::numeric("x", 4);
        let loc = Locality::unidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        let set = [
            LocalTransition::new(sp.encode(&[0, 0]), 1),
            LocalTransition::new(sp.encode(&[0, 1]), 0),
            LocalTransition::new(sp.encode(&[0, 2]), 3),
            LocalTransition::new(sp.encode(&[0, 3]), 2),
        ];
        assert!(!forms_pseudo_livelock(&set, &sp, loc));
        // But each half is.
        assert!(forms_pseudo_livelock(&set[..2], &sp, loc));
        assert!(forms_pseudo_livelock(&set[2..], &sp, loc));
    }

    #[test]
    fn support_filters_acyclic_arcs() {
        let (sp, loc) = setup();
        let t01 = t(&sp, 0, 0, 1);
        let t12 = t(&sp, 1, 1, 2);
        let t21 = t(&sp, 2, 2, 1);
        let support = pseudo_livelock_support(&[t01, t12, t21], &sp, loc);
        assert_eq!(support, vec![t12, t21]);
    }

    #[test]
    fn minimal_enumeration_realizes_each_cycle() {
        let (sp, loc) = setup();
        // Two realizations of 1->2 (different guards), one of 2->1.
        let a = t(&sp, 0, 1, 2);
        let b = t(&sp, 1, 1, 2);
        let c = t(&sp, 2, 2, 1);
        let pls = minimal_pseudo_livelocks(&[a, b, c], &sp, loc, 100);
        assert_eq!(pls.len(), 2);
        for pl in &pls {
            assert!(forms_pseudo_livelock(pl, &sp, loc));
            assert_eq!(pl.len(), 2);
            assert!(pl.contains(&c));
        }
    }

    #[test]
    fn three_cycle_enumeration() {
        let (sp, loc) = setup();
        let set = [t(&sp, 0, 0, 1), t(&sp, 1, 1, 2), t(&sp, 2, 2, 0)];
        let pls = minimal_pseudo_livelocks(&set, &sp, loc, 100);
        assert_eq!(pls.len(), 1);
        assert_eq!(pls[0].len(), 3);
    }

    #[test]
    fn budget_caps_enumeration() {
        let (sp, loc) = setup();
        // 3 realizations each way: up to 9 minimal pseudo-livelocks.
        let set = [
            t(&sp, 0, 0, 1),
            t(&sp, 1, 0, 1),
            t(&sp, 2, 0, 1),
            t(&sp, 0, 1, 0),
            t(&sp, 1, 1, 0),
            t(&sp, 2, 1, 0),
        ];
        let pls = minimal_pseudo_livelocks(&set, &sp, loc, 4);
        assert_eq!(pls.len(), 4);
    }
}

//! The persistent results registry: canonical, append-only JSONL rows
//! recording every measured result the toolkit produces.
//!
//! ROADMAP item 2 asks for "a persistent registry of verification
//! results" — the queryable perf trajectory that the one-off
//! `BENCH_*.json` documents are not. This module is the shared row
//! schema and encoding; the producers (`selfstab serve --registry`,
//! `selfstab sweep --registry`, the scaling bench) each append rows,
//! and `selfstab registry` filters, cross-tabs, and diffs them.
//!
//! **Canonical encoding.** A row serializes as one compact JSON line
//! with sorted keys (the `serde_json` object is BTreeMap-backed), so
//! two identical runs append byte-identical lines — *except* for the
//! `meta` object, which isolates everything volatile: the recording
//! commit, the wall-clock timestamp, and scheduling-dependent durations.
//! Consumers that compare rows across runs (`selfstab registry diff`,
//! the CI regression gate) must read deterministic KPIs from `kpis` and
//! may only report, never gate on, `meta`.
//!
//! **Durability.** Rows are plain lines, appended with a single
//! `write_all`; a torn tail (crash mid-append) is skipped by
//! [`read_rows`], mirroring the journal's longest-valid-prefix rule
//! without the CRC framing — a registry row is not a recovery record,
//! losing the last one costs one measurement, not correctness.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

use serde_json::Value;

/// Registry row schema version, bumped on incompatible changes.
pub const REGISTRY_SCHEMA_VERSION: u64 = 1;

/// One measured result: who produced it, what was measured, and the
/// KPIs.
#[derive(Clone, Debug, PartialEq)]
pub struct RegistryRow {
    /// The producing subsystem: `serve`, `sweep`, or `bench`.
    pub source: String,
    /// Content identity of the spec(s) measured: a canonical spec hash
    /// (see [`crate::hash`]), or a campaign fingerprint for multi-spec
    /// sweeps.
    pub spec: String,
    /// What was computed (`verify`, `sweep`, `synthesize`,
    /// `campaign`, `verify_scaling`, …).
    pub kind: String,
    /// The ring-size range, rendered `from..to` (`-` when not
    /// applicable).
    pub k: String,
    /// Input knobs the result depends on (budgets, symmetry, …) — part
    /// of the row's identity when diffing.
    pub knobs: Value,
    /// The measured outcomes. Deterministic values (states visited,
    /// verdicts, exit codes) belong here; scheduling-dependent
    /// durations belong in `meta` unless the row's whole point is a
    /// timing (bench rows).
    pub kpis: Value,
    /// Volatile context: `commit`, `recorded_at` (unix seconds), and
    /// any wall-clock observations. Never gated on.
    pub meta: Value,
}

impl RegistryRow {
    /// The canonical single-line encoding (sorted keys, compact, no
    /// trailing newline).
    pub fn to_canonical_json(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("k".to_owned(), Value::String(self.k.clone()));
        map.insert("kind".to_owned(), Value::String(self.kind.clone()));
        map.insert("knobs".to_owned(), self.knobs.clone());
        map.insert("kpis".to_owned(), self.kpis.clone());
        map.insert("meta".to_owned(), self.meta.clone());
        map.insert("schema".to_owned(), Value::from(REGISTRY_SCHEMA_VERSION));
        map.insert("source".to_owned(), Value::String(self.source.clone()));
        map.insert("spec".to_owned(), Value::String(self.spec.clone()));
        Value::Object(map).to_string()
    }

    /// Parses one registry line. `None` for rows that are not valid
    /// objects of this schema (torn tails, foreign lines).
    pub fn from_json(value: &Value) -> Option<Self> {
        let obj = match value {
            Value::Object(map) => map,
            _ => return None,
        };
        Some(RegistryRow {
            source: obj.get("source")?.as_str()?.to_owned(),
            spec: obj.get("spec")?.as_str()?.to_owned(),
            kind: obj.get("kind")?.as_str()?.to_owned(),
            k: obj.get("k")?.as_str()?.to_owned(),
            knobs: obj.get("knobs").cloned().unwrap_or(Value::Null),
            kpis: obj.get("kpis").cloned().unwrap_or(Value::Null),
            meta: obj.get("meta").cloned().unwrap_or(Value::Null),
        })
    }

    /// The identity a diff joins rows on: everything except KPIs and
    /// volatile meta. Two runs of the same workload produce rows with
    /// equal identity.
    pub fn identity(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.source, self.spec, self.kind, self.k, self.knobs
        )
    }

    /// The standard `meta` object: volatile columns in dedicated
    /// fields. `commit` comes from the `SELFSTAB_COMMIT` environment
    /// variable (CI sets it from the build SHA), `recorded_at` is unix
    /// seconds, and `wall_us` is the run's scheduling-dependent
    /// duration.
    pub fn meta_now(wall_us: u64) -> Value {
        let commit = std::env::var("SELFSTAB_COMMIT").unwrap_or_else(|_| "unknown".to_owned());
        let recorded_at = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut map = BTreeMap::new();
        map.insert("commit".to_owned(), Value::String(commit));
        map.insert("recorded_at".to_owned(), Value::from(recorded_at));
        map.insert("wall_us".to_owned(), Value::from(wall_us));
        Value::Object(map)
    }
}

/// Appends one row to the registry at `path` (creating it, and its
/// parent directory, on first use).
///
/// # Errors
///
/// Propagates filesystem failures; the caller decides whether a lost
/// measurement is fatal (the CLI warns and continues).
pub fn append_row(path: &Path, row: &RegistryRow) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(format!("{}\n", row.to_canonical_json()).as_bytes())
}

/// Reads every valid row from the registry at `path`, in append order.
/// Lines that do not parse (a torn tail, foreign content) are skipped —
/// the registry is an accumulating log, not a recovery journal. A
/// missing file reads as empty.
///
/// # Errors
///
/// Propagates read failures other than the file not existing.
pub fn read_rows(path: &Path) -> io::Result<Vec<RegistryRow>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter_map(|line| serde_json::from_str(line).ok())
        .filter_map(|v| RegistryRow::from_json(&v))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("selfstab-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn row(kpi: u64) -> RegistryRow {
        RegistryRow {
            source: "serve".to_owned(),
            spec: "deadbeef".to_owned(),
            kind: "verify".to_owned(),
            k: "4..4".to_owned(),
            knobs: json!({"max_states": 1000000, "symmetry": "auto"}),
            kpis: json!({"exit_code": 0, "states_visited": kpi}),
            meta: json!({"commit": "abc", "recorded_at": 1, "wall_us": 17}),
        }
    }

    #[test]
    fn canonical_encoding_is_stable_modulo_meta() {
        let mut a = row(16);
        let mut b = row(16);
        a.meta = json!({"commit": "abc", "recorded_at": 100, "wall_us": 5});
        b.meta = json!({"commit": "def", "recorded_at": 200, "wall_us": 9});
        // Identical modulo the volatile meta object.
        let strip = |s: &str| {
            let mut v: Value = serde_json::from_str(s).unwrap();
            if let Value::Object(map) = &mut v {
                map.remove("meta");
            }
            v.to_string()
        };
        assert_ne!(a.to_canonical_json(), b.to_canonical_json());
        assert_eq!(strip(&a.to_canonical_json()), strip(&b.to_canonical_json()));
        // Keys render sorted: "k" < "kind" < "knobs" < "kpis" < "meta"
        // < "schema" < "source" < "spec".
        let text = a.to_canonical_json();
        assert!(
            text.starts_with("{\"k\":\"4..4\",\"kind\":\"verify\","),
            "{text}"
        );
    }

    #[test]
    fn append_read_roundtrip_and_torn_tail_tolerance() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        append_row(&path, &row(16)).unwrap();
        append_row(&path, &row(81)).unwrap();
        // Simulate a crash mid-append: a torn, unparsable tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"source\":\"serve\",\"spe");
        std::fs::write(&path, text).unwrap();

        let rows = read_rows(&path).unwrap();
        assert_eq!(rows.len(), 2, "torn tail skipped, valid rows kept");
        assert_eq!(rows[0], row(16));
        assert_eq!(rows[1].kpis["states_visited"], 81u64);
    }

    #[test]
    fn identity_joins_on_inputs_not_outcomes() {
        assert_eq!(row(16).identity(), row(99).identity());
        let mut other = row(16);
        other.knobs = json!({"max_states": 5, "symmetry": "auto"});
        assert_ne!(row(16).identity(), other.identity());
    }

    #[test]
    fn missing_registry_reads_empty() {
        assert!(read_rows(Path::new("/nonexistent/registry.jsonl"))
            .unwrap()
            .is_empty());
    }
}

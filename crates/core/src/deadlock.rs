//! Deadlock-freedom for every ring size: the Theorem 4.2 check.

use selfstab_graph::{
    cycles::{simple_cycles, CycleBudget},
    scc::vertices_on_cycles,
    BitSet,
};
use selfstab_protocol::{LocalStateId, Protocol, Value};

use crate::rcg::Rcg;

/// A witness that global deadlocks outside `I(K)` exist: a directed cycle of
/// local deadlocks in the RCG passing through an illegitimate local state.
///
/// Per the proof of Theorem 4.2, assigning the cycle's local states around a
/// ring of size `k·n` (any `k ≥ 1`, `n` the cycle length) yields a global
/// deadlock outside `I`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockWitness {
    /// The cycle of local deadlock states in the RCG.
    pub cycle: Vec<LocalStateId>,
    /// The smallest ring size this cycle witnesses (its length).
    pub base_ring_size: usize,
    /// A concrete deadlocked configuration `⟨x_0, …, x_{n-1}⟩` for a ring of
    /// size `base_ring_size` (the centers of the cycle's local states).
    pub configuration: Vec<Value>,
}

impl DeadlockWitness {
    /// Returns `true` if this witness covers ring size `k` (i.e. `k` is a
    /// positive multiple of the cycle length).
    pub fn covers_ring_size(&self, k: usize) -> bool {
        k > 0 && k.is_multiple_of(self.base_ring_size)
    }
}

/// The result of the Theorem 4.2 deadlock-freedom analysis.
///
/// The verdict ([`DeadlockAnalysis::is_free_for_all_k`]) is **exact** — the
/// theorem is necessary and sufficient — and is computed from strongly
/// connected components, independent of the (budgeted) witness enumeration.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_core::DeadlockAnalysis;
///
/// // Empty 3-coloring protocol: every illegitimate state ⟨c,c⟩ is a local
/// // deadlock with an RCG self-loop, so deadlocks exist at every ring size.
/// let p = Protocol::builder("3col", Domain::numeric("c", 3), Locality::unidirectional())
///     .legit("c[r] != c[r-1]")?
///     .build()?;
/// let a = DeadlockAnalysis::analyze(&p);
/// assert!(!a.is_free_for_all_k());
/// assert!(a.deadlocked_ring_sizes(6).contains(&1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct DeadlockAnalysis {
    free: bool,
    witnesses: Vec<DeadlockWitness>,
    witnesses_truncated: bool,
    local_deadlock_count: usize,
    illegitimate_deadlock_count: usize,
    induced: selfstab_graph::DiGraph,
    bad_states: BitSet,
}

impl DeadlockAnalysis {
    /// Runs the analysis with the default cycle-enumeration budget.
    pub fn analyze(protocol: &Protocol) -> Self {
        Self::analyze_with_budget(protocol, CycleBudget::default())
    }

    /// Runs the analysis with an explicit cycle-enumeration budget (the
    /// verdict is exact regardless; the budget only limits witnesses).
    pub fn analyze_with_budget(protocol: &Protocol, budget: CycleBudget) -> Self {
        let rcg = Rcg::build(protocol);
        Self::analyze_prepared(protocol, &rcg, budget)
    }

    /// Runs the analysis against a pre-built RCG (useful when many revisions
    /// of the same protocol are analyzed, as in synthesis).
    pub fn analyze_prepared(protocol: &Protocol, rcg: &Rcg, budget: CycleBudget) -> Self {
        let deadlocks = protocol.local_deadlocks();
        let illegit = protocol.legit().negated();
        let bad_states: BitSet = {
            let mut b = deadlocks.as_bitset().clone();
            b.intersect_with(illegit.as_bitset());
            b
        };

        let induced = rcg.induced(&deadlocks);

        // Exact verdict: an illegitimate local deadlock on a cycle of the
        // induced RCG ⟺ global deadlocks outside I exist for some K.
        let on_cycles = vertices_on_cycles(&induced);
        let free = bad_states.iter().all(|v| !on_cycles.contains(v));

        // Witness enumeration (budgeted): cycles through bad states.
        let mut witnesses = Vec::new();
        let mut truncated = false;
        if !free {
            let e = simple_cycles(&induced, budget);
            truncated = e.truncated;
            for cycle in e.through(&bad_states) {
                let ids: Vec<LocalStateId> =
                    cycle.iter().map(|&v| LocalStateId(v as u32)).collect();
                let configuration = ids
                    .iter()
                    .map(|&s| protocol.space().value_at(s, protocol.locality().center()))
                    .collect();
                witnesses.push(DeadlockWitness {
                    base_ring_size: ids.len(),
                    cycle: ids,
                    configuration,
                });
            }
            witnesses.sort_by_key(|w| w.base_ring_size);
        }

        DeadlockAnalysis {
            free,
            witnesses,
            witnesses_truncated: truncated,
            local_deadlock_count: deadlocks.len(),
            illegitimate_deadlock_count: bad_states.len(),
            induced,
            bad_states,
        }
    }

    /// The Theorem 4.2 verdict: `true` iff `p(K)` has no global deadlock
    /// outside `I(K)` for **every** `K ≥ 1`.
    pub fn is_free_for_all_k(&self) -> bool {
        self.free
    }

    /// The witness cycles (empty when free; possibly truncated by budget).
    pub fn witnesses(&self) -> &[DeadlockWitness] {
        &self.witnesses
    }

    /// `true` if the witness list was cut short by the enumeration budget
    /// (the verdict itself is never affected).
    pub fn witnesses_truncated(&self) -> bool {
        self.witnesses_truncated
    }

    /// Number of local deadlock states.
    pub fn local_deadlock_count(&self) -> usize {
        self.local_deadlock_count
    }

    /// Number of illegitimate local deadlock states.
    pub fn illegitimate_deadlock_count(&self) -> usize {
        self.illegitimate_deadlock_count
    }

    /// The **exact** set of ring sizes `1..=max_k` at which a global
    /// deadlock outside `I` exists.
    ///
    /// A ring of size `k` can be assembled entirely from local deadlocks
    /// with an illegitimate one included iff the deadlock-induced RCG has a
    /// *closed walk* of length exactly `k` through an illegitimate state —
    /// note: a closed walk, not necessarily a simple cycle. Combinations of
    /// cycles sharing vertices produce ring sizes beyond the multiples of
    /// single cycle lengths. (For the paper's Example 4.3 this matters: the
    /// TR claims deadlock-freedom for all `K` not divisible by 4 or 6, but
    /// `K = 7` is deadlocked via the walk `llsrlsr` combining the 4-cycle
    /// with a legitimate-deadlock detour — confirmed by global model
    /// checking in this workspace's experiments.)
    ///
    /// Computed by dynamic programming over walk lengths, independent of
    /// the witness enumeration budget.
    pub fn deadlocked_ring_sizes(&self, max_k: usize) -> Vec<usize> {
        let n = self.induced.vertex_count();
        let mut out = Vec::new();
        if self.bad_states.is_empty() {
            return out;
        }
        // reach[u] = can reach u from some bad vertex in exactly j steps
        // (per source; iterate sources to keep memory small).
        let mut sizes = vec![false; max_k + 1];
        for b in self.bad_states.iter() {
            let mut cur = vec![false; n];
            cur[b] = true;
            #[allow(clippy::needless_range_loop)] // k is the walk length, not just an index
            for k in 1..=max_k {
                let mut next = vec![false; n];
                #[allow(clippy::needless_range_loop)] // u indexes `cur` and the graph
                for u in 0..n {
                    if cur[u] {
                        for &v in self.induced.successors(u) {
                            next[v as usize] = true;
                        }
                    }
                }
                if next[b] {
                    sizes[k] = true;
                }
                cur = next;
            }
        }
        for (k, &hit) in sizes.iter().enumerate().skip(1) {
            if hit {
                out.push(k);
            }
        }
        out
    }
}

impl std::fmt::Display for DeadlockAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deadlock-freedom (Theorem 4.2): {}",
            if self.free {
                "FREE for all K"
            } else {
                "NOT free"
            }
        )?;
        writeln!(
            f,
            "  local deadlocks: {} ({} illegitimate)",
            self.local_deadlock_count, self.illegitimate_deadlock_count
        )?;
        if !self.free {
            let lens: Vec<String> = self
                .witnesses
                .iter()
                .map(|w| w.base_ring_size.to_string())
                .collect();
            writeln!(
                f,
                "  witness cycle lengths: [{}]{}",
                lens.join(", "),
                if self.witnesses_truncated {
                    " (truncated)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    #[test]
    fn one_sided_agreement_is_free() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let a = DeadlockAnalysis::analyze(&p);
        assert!(a.is_free_for_all_k());
        assert!(a.witnesses().is_empty());
        // deadlocks: 00, 11 (legitimate), 01 (illegitimate but acyclic in
        // the induced RCG? 01 -> 11/10; 10 resolved; so induced over
        // deadlocks {00,11,01}: 01 -> 11, 00 -> 01? 00's continuations are
        // 00,01 — both deadlocked. Cycle 00->00 is legitimate-only.)
        assert_eq!(a.local_deadlock_count(), 3);
        assert_eq!(a.illegitimate_deadlock_count(), 1);
    }

    #[test]
    fn empty_agreement_has_self_loop_witnesses_only_legit() {
        // Empty protocol: deadlocks everywhere. Cycles through 01/10 exist
        // (e.g. 01->10->01), so not free.
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let a = DeadlockAnalysis::analyze(&p);
        assert!(!a.is_free_for_all_k());
        // The 2-cycle 01<->10 witnesses even ring sizes.
        assert!(a.deadlocked_ring_sizes(8).contains(&2));
    }

    #[test]
    fn witness_configuration_matches_cycle() {
        let p = Protocol::builder("3col", Domain::numeric("c", 3), Locality::unidirectional())
            .legit("c[r] != c[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let a = DeadlockAnalysis::analyze(&p);
        assert!(!a.is_free_for_all_k());
        for w in a.witnesses() {
            assert_eq!(w.cycle.len(), w.base_ring_size);
            assert_eq!(w.configuration.len(), w.base_ring_size);
            // The configuration's windows are exactly the cycle's states.
            let sp = p.space();
            let n = w.base_ring_size;
            for (i, &s) in w.cycle.iter().enumerate() {
                let expect = vec![w.configuration[(i + n - 1) % n], w.configuration[i]];
                assert_eq!(sp.decode(s), expect);
            }
            assert!(w.covers_ring_size(w.base_ring_size * 3));
            assert!(!w.covers_ring_size(0));
        }
    }

    #[test]
    fn display_summarizes() {
        let p = Protocol::builder("3col", Domain::numeric("c", 3), Locality::unidirectional())
            .legit("c[r] != c[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let text = DeadlockAnalysis::analyze(&p).to_string();
        assert!(text.contains("NOT free"));
        assert!(text.contains("witness cycle lengths"));
    }
}

//! The combined stabilization report: everything the local method can say
//! about a parameterized protocol, for every ring size at once.

use selfstab_protocol::Protocol;

use crate::closure::{local_closure_check, ClosureViolation};
use crate::deadlock::DeadlockAnalysis;
use crate::livelock::{CertificateScope, LivelockAnalysis};
use crate::ltg::Ltg;
use crate::rcg::Rcg;

/// The full local analysis of a parameterized ring protocol.
///
/// Bundles the Theorem 4.2 deadlock verdict (exact), the Theorem 5.14
/// livelock certificate (sufficient), and the closure check — all computed
/// in the local state space of the representative process, in time
/// independent of any ring size.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_core::StabilizationReport;
///
/// let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// let report = StabilizationReport::analyze(&p);
/// assert!(report.is_self_stabilizing_for_all_k());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct StabilizationReport {
    /// The Theorem 4.2 deadlock analysis.
    pub deadlock: DeadlockAnalysis,
    /// The Theorem 5.14 livelock analysis.
    pub livelock: LivelockAnalysis,
    /// The closure check result.
    pub closure: Result<(), ClosureViolation>,
}

impl StabilizationReport {
    /// Runs all local analyses.
    pub fn analyze(protocol: &Protocol) -> Self {
        let rcg = Rcg::build(protocol);
        let ltg = Ltg::with_rcg(protocol, rcg);
        StabilizationReport {
            deadlock: DeadlockAnalysis::analyze_prepared(
                protocol,
                ltg.rcg(),
                selfstab_graph::cycles::CycleBudget::default(),
            ),
            livelock: LivelockAnalysis::analyze_with_ltg(protocol, &ltg),
            closure: local_closure_check(protocol),
        }
    }

    /// `true` iff the local method *proves* strong self-stabilization for
    /// every ring size: closure holds, no illegitimate deadlocks exist
    /// (exact), and livelock-freedom is certified (for unidirectional
    /// rings; on bidirectional rings only contiguous livelocks are ruled
    /// out, so this returns `false` there unless the protocol has no
    /// t-arcs at all).
    pub fn is_self_stabilizing_for_all_k(&self) -> bool {
        self.closure.is_ok()
            && self.deadlock.is_free_for_all_k()
            && self.livelock.certified_free()
            && self.livelock.scope() == CertificateScope::AllLivelocks
    }

    /// `true` iff strong *convergence* (deadlock- and livelock-freedom
    /// outside `I`) is established, ignoring closure.
    pub fn converges_for_all_k(&self) -> bool {
        self.deadlock.is_free_for_all_k()
            && self.livelock.certified_free()
            && self.livelock.scope() == CertificateScope::AllLivelocks
    }
}

impl std::fmt::Display for StabilizationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.deadlock)?;
        write!(f, "{}", self.livelock)?;
        match &self.closure {
            Ok(()) => writeln!(f, "closure: OK for all K")?,
            Err(v) => writeln!(f, "closure: {v}")?,
        }
        writeln!(
            f,
            "verdict: {}",
            if self.is_self_stabilizing_for_all_k() {
                "strongly self-stabilizing for every ring size"
            } else {
                "not established by the local method"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    #[test]
    fn report_for_converging_protocol() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let r = StabilizationReport::analyze(&p);
        assert!(r.is_self_stabilizing_for_all_k());
        assert!(r.converges_for_all_k());
        let text = r.to_string();
        assert!(text.contains("FREE for all K"));
        assert!(text.contains("CERTIFIED"));
        assert!(text.contains("strongly self-stabilizing"));
    }

    #[test]
    fn report_for_failing_protocol() {
        let p = Protocol::builder("2col", Domain::numeric("c", 2), Locality::unidirectional())
            .actions([
                "c[r-1] == 0 && c[r] == 0 -> c[r] := 1",
                "c[r-1] == 1 && c[r] == 1 -> c[r] := 0",
            ])
            .unwrap()
            .legit("c[r] != c[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let r = StabilizationReport::analyze(&p);
        assert!(r.deadlock.is_free_for_all_k());
        assert!(!r.livelock.certified_free());
        assert!(!r.is_self_stabilizing_for_all_k());
    }
}

//! Content addressing of protocol specs: a canonical, parse-tree-based
//! hash that is invariant under everything that cannot change a verdict.
//!
//! The service layer (`selfstab serve`) memoizes verification results by
//! spec identity, so two requests that *mean* the same protocol must map
//! to the same cache line no matter how their `.stab` sources are spelled.
//! Hashing the raw bytes would miss almost every real repeat — reformatted
//! whitespace, added comments, reordered `action` lines, commuted guard
//! operands. [`spec_hash`] therefore hashes the **parsed semantics**
//! instead of the text:
//!
//! * the protocol name (result documents embed it);
//! * the domain: variable name and value labels in declaration order
//!   (label order *is* semantic — it defines the value encoding that
//!   witness states are rendered in);
//! * the locality offsets `(left, right)`;
//! * the legitimate-state predicate **extensionally**: the sorted set of
//!   legitimate local-window ids, not the predicate's source text — so
//!   `x[r] == x[r-1]` and `x[r-1] == x[r]` collapse;
//! * the transition relation `δ_r` as the sorted set of
//!   `(source window, written value)` pairs — so action order, guard
//!   spelling and split/merged actions all collapse.
//!
//! Anything that *can* change a verdict or a rendered witness (domain
//! size, label spelling, the relation itself) feeds the hash; anything
//! that cannot (whitespace, comments, declaration order) never reaches it
//! because the parser already erased it.
//!
//! The digest is 128-bit FNV-1a over an injectively framed byte encoding
//! (every field is length- or tag-delimited, so concatenation ambiguities
//! cannot alias two different protocols). FNV is not cryptographic — the
//! cache is a memo, not a trust boundary — but 128 bits make accidental
//! collisions across a corpus astronomically unlikely, and the collision
//! smoke tests below pin the corpus pairwise-distinct.

use std::fmt;

use selfstab_protocol::Protocol;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A canonical 128-bit content hash of a protocol spec.
///
/// Obtained from [`spec_hash`]; renders as 32 lowercase hex digits.
/// Equal hashes mean "the same protocol up to spelling" (same name,
/// domain, locality, legitimate windows, transition relation), which is
/// exactly the equivalence under which every verification document is
/// byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash(pub u128);

impl fmt::Display for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An incremental FNV-1a-128 sink with injective framing helpers.
struct Fnv(u128);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// A length-prefixed string: no two different string sequences can
    /// produce the same byte stream.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// The canonical content hash of `protocol`. See the module docs for what
/// the hash covers and what it deliberately ignores.
pub fn spec_hash(protocol: &Protocol) -> SpecHash {
    let mut h = Fnv::new();
    h.str(protocol.name());

    let domain = protocol.domain();
    h.str(domain.variable());
    h.u64(domain.size() as u64);
    for v in domain.values() {
        h.str(domain.label(v));
    }

    let locality = protocol.locality();
    h.u64(locality.left() as u64);
    h.u64(locality.right() as u64);

    // The legitimate predicate, extensionally: sorted window ids.
    let mut legit: Vec<u32> = protocol.legit().states().map(|id| id.0).collect();
    legit.sort_unstable();
    h.u64(legit.len() as u64);
    for id in legit {
        h.u64(id as u64);
    }

    // The transition relation, sorted. `Protocol` stores `δ_r` as a
    // `BTreeSet`, so iteration is already canonical; sorting again here
    // keeps the hash correct even if that representation ever changes.
    let mut delta: Vec<(u32, u8)> = protocol
        .transitions()
        .map(|t| (t.source.0, t.target))
        .collect();
    delta.sort_unstable();
    h.u64(delta.len() as u64);
    for (source, target) in delta {
        h.u64(source as u64);
        h.u64(target as u64);
    }

    SpecHash(h.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::file::parse_protocol_file;
    use std::path::Path;

    fn hash_of(source: &str) -> SpecHash {
        spec_hash(&parse_protocol_file(source).expect("test spec parses"))
    }

    const SUM_NOT_TWO: &str = "
protocol sum-not-two
domain x { 0 1 2 }
locality unidirectional
legit x[r] + x[r-1] != 2
action (x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3
action (x[r] + x[r-1] == 2) && (x[r] == 2) -> x[r] := (x[r] - 1) % 3
";

    #[test]
    fn whitespace_and_comments_do_not_perturb_the_hash() {
        let noisy = "
# a comment          \t
protocol sum-not-two


domain   x   {  0   1 2 }   # trailing comment
locality     unidirectional
legit    x[r] + x[r-1] != 2
action (x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3
# interleaved comment
action (x[r] + x[r-1] == 2) && (x[r] == 2) -> x[r] := (x[r] - 1) % 3
";
        assert_eq!(hash_of(SUM_NOT_TWO), hash_of(noisy));
    }

    #[test]
    fn declaration_and_action_order_do_not_perturb_the_hash() {
        let reordered = "
action (x[r] + x[r-1] == 2) && (x[r] == 2) -> x[r] := (x[r] - 1) % 3
action (x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3
legit x[r] + x[r-1] != 2
locality unidirectional
domain x { 0 1 2 }
protocol sum-not-two
";
        assert_eq!(hash_of(SUM_NOT_TWO), hash_of(reordered));
    }

    #[test]
    fn guard_spelling_does_not_perturb_the_hash() {
        // Commuted conjuncts and commuted equality operands denote the
        // same guard, hence the same transition set, hence the same hash.
        let a = "
protocol ag
domain x { 0 1 }
locality unidirectional
legit x[r] == x[r-1]
action x[r-1] == 1 && x[r] == 0 -> x[r] := 1
";
        let b = "
protocol ag
domain x { 0 1 }
locality unidirectional
legit x[r-1] == x[r]
action (0 == x[r]) && (1 == x[r-1]) -> x[r] := 1
";
        assert_eq!(hash_of(a), hash_of(b));
    }

    #[test]
    fn semantic_differences_do_perturb_the_hash() {
        let base = hash_of(SUM_NOT_TWO);
        // Different name.
        let renamed = SUM_NOT_TWO.replace("protocol sum-not-two", "protocol sum-not-2");
        assert_ne!(base, hash_of(&renamed));
        // Different legitimate predicate.
        let other_legit = SUM_NOT_TWO.replace("!= 2", "!= 3");
        assert_ne!(base, hash_of(&other_legit));
        // One action dropped: a strictly smaller transition relation.
        let truncated: String = SUM_NOT_TWO
            .lines()
            .filter(|l| !l.contains("x[r] == 2"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(base, hash_of(&truncated));
    }

    #[test]
    fn label_order_is_semantic_and_perturbs_the_hash() {
        // `{ 0 1 2 }` and `{ 2 1 0 }` encode values differently, so
        // rendered witness states differ — the hashes must too.
        let swapped = SUM_NOT_TWO.replace("{ 0 1 2 }", "{ 2 1 0 }");
        assert_ne!(hash_of(SUM_NOT_TWO), hash_of(&swapped));
    }

    #[test]
    fn corpus_specs_never_collide() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
        let mut hashes: Vec<(String, SpecHash)> = Vec::new();
        for entry in std::fs::read_dir(&dir).expect("spec corpus directory") {
            let path = entry.expect("corpus entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("stab") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("corpus spec readable");
            let protocol = parse_protocol_file(&source).expect("corpus spec parses");
            hashes.push((path.display().to_string(), spec_hash(&protocol)));
        }
        assert!(hashes.len() >= 10, "expected the corpus, got {hashes:?}");
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(
                    hashes[i].1, hashes[j].1,
                    "collision between {} and {}",
                    hashes[i].0, hashes[j].0
                );
            }
        }
    }

    #[test]
    fn hash_renders_as_32_hex_digits() {
        let h = hash_of(SUM_NOT_TWO);
        let text = h.to_string();
        assert_eq!(text.len(), 32);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
        // And is stable across calls (pure function of the parse tree).
        assert_eq!(text, hash_of(SUM_NOT_TWO).to_string());
    }
}

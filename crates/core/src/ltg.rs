//! The Local Transition Graph (Definition 5.3), Assumption 1/2 checks, and
//! the self-disabling transformation.

use selfstab_graph::{dot, DiGraph};
use selfstab_protocol::{LocalStateId, LocalTransition, Protocol, ProtocolError};

use crate::rcg::Rcg;

/// The Local Transition Graph `LTG_p`: the RCG (*s-arcs*, the continuation
/// relation) augmented with the local transitions of the representative
/// process (*t-arcs*).
///
/// Computations of a ring appear in the LTG as interleavings of t-arcs
/// (a process moves) and s-arcs (attention shifts to the successor
/// process); livelocks leave *contiguous trails* (see
/// [`crate::trail`]).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
/// use selfstab_core::Ltg;
///
/// let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// let ltg = Ltg::build(&p);
/// assert_eq!(ltg.t_arcs().vertex_count(), 4);
/// assert_eq!(ltg.t_arcs().arc_count(), 1); // the single local transition
/// assert_eq!(ltg.s_arcs().arc_count(), 8); // the full continuation relation
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Ltg {
    s: Rcg,
    t: DiGraph,
    transitions: Vec<LocalTransition>,
}

impl Ltg {
    /// Builds the LTG of a protocol.
    pub fn build(protocol: &Protocol) -> Self {
        Self::with_rcg(protocol, Rcg::build(protocol))
    }

    /// Builds the LTG reusing a pre-built RCG.
    pub fn with_rcg(protocol: &Protocol, rcg: Rcg) -> Self {
        let space = protocol.space();
        let mut t = DiGraph::new(space.len());
        let mut transitions = Vec::new();
        for tr in protocol.transitions() {
            t.add_arc(
                tr.source.index(),
                tr.target_state(space, protocol.locality()).index(),
            );
            transitions.push(tr);
        }
        Ltg {
            s: rcg,
            t,
            transitions,
        }
    }

    /// Rebuilds only the t-arcs (and their backing transitions) against
    /// `protocol`, keeping the s-arcs: the RCG depends only on the domain
    /// and the locality, so revisions of one protocol (same space, different
    /// `δ_r`) can delta-apply their transition relation instead of paying a
    /// full [`Ltg::build`] per revision.
    pub fn retarget(&mut self, protocol: &Protocol) {
        let space = protocol.space();
        let mut t = DiGraph::new(space.len());
        self.transitions.clear();
        for tr in protocol.transitions() {
            t.add_arc(
                tr.source.index(),
                tr.target_state(space, protocol.locality()).index(),
            );
            self.transitions.push(tr);
        }
        self.t = t;
    }

    /// The s-arcs: the continuation relation (an [`Rcg`]).
    pub fn rcg(&self) -> &Rcg {
        &self.s
    }

    /// The s-arc graph.
    pub fn s_arcs(&self) -> &DiGraph {
        self.s.graph()
    }

    /// The t-arc graph: `s → s'` for each local transition.
    pub fn t_arcs(&self) -> &DiGraph {
        &self.t
    }

    /// The local transitions backing the t-arcs.
    pub fn transitions(&self) -> &[LocalTransition] {
        &self.transitions
    }

    /// Renders the LTG in DOT: solid arcs are t-arcs, dashed arcs are
    /// (right) s-arcs; illegitimate local states are shaded.
    pub fn to_dot(&self, protocol: &Protocol, name: &str) -> String {
        let space = protocol.space();
        let domain = protocol.domain();
        // Render both arc families into one digraph by emitting the s-graph
        // with styles, then appending t-arcs manually.
        let mut out = dot::to_dot(
            self.s.graph(),
            name,
            |v| {
                let id = LocalStateId(v as u32);
                Some(dot::VertexStyle {
                    label: space.format_compact(id, domain),
                    fill: if protocol.legit().holds(id) {
                        String::new()
                    } else {
                        "lightgray".to_owned()
                    },
                    shape: String::new(),
                })
            },
            |_, _| Some("s".to_owned()),
        );
        // Splice t-arcs before the closing brace.
        let insert = out.rfind('}').unwrap_or(out.len());
        let mut t_lines = String::new();
        for (u, v) in self.t.arcs() {
            t_lines.push_str(&format!("  v{u} -> v{v} [label=\"t\", style=bold];\n"));
        }
        out.insert_str(insert, &t_lines);
        out
    }
}

/// Checks Assumption 1 (*self-termination*): every sequence of local
/// transitions of a process terminates in a local deadlock — i.e. the
/// t-arc graph is acyclic.
pub fn is_self_terminating(protocol: &Protocol) -> bool {
    let ltg = Ltg::build(protocol);
    !selfstab_graph::cycles::has_cycle(ltg.t_arcs())
}

/// Checks whether the protocol is *self-disabling at the process level*: no
/// local transition lands in a state where the process is again enabled.
///
/// Transition-granular actions are always self-disabling at the *action*
/// level (Assumption 2); this stricter check corresponds to the paper's
/// normal form where enablement chains have been collapsed.
pub fn is_process_self_disabling(protocol: &Protocol) -> bool {
    let space = protocol.space();
    let loc = protocol.locality();
    protocol
        .transitions()
        .all(|t| !protocol.is_enabled(t.target_state(space, loc)))
}

/// The self-disabling transformation described with Assumption 2: replaces
/// every local transition `(s, s₁)` whose target is itself enabled by the
/// transitions `(s, s_k)` for every local deadlock `s_k` reachable from `s₁`
/// through t-arcs. Preserves reachability of terminal states, introduces no
/// new local deadlocks (so the Theorem 4.2 verdict is unchanged), and
/// removes process-level self-enabling.
///
/// **Warning — not livelock-preserving.** The paper presents this
/// transformation as at-no-loss-of-generality ("without adding neither
/// deadlocks nor livelocks"), but collapsing a chain hides its intermediate
/// writes from the successor process, and those writes can be exactly what
/// sustains a livelock: there are protocols that livelock while their
/// transformed forms do not (see
/// `tests/transform_counterexample.rs` and EXPERIMENTS.md finding #4).
/// Consequently livelock-freedom of the transformed protocol says nothing
/// about the original, and [`crate::livelock::LivelockAnalysis`] refuses to
/// certify chain protocols instead of normalizing them.
///
/// # Errors
///
/// Returns [`ProtocolError::Invalid`] if the protocol is not
/// self-terminating (Assumption 1 fails: a t-arc cycle exists, so chains do
/// not terminate), or if collapsing a chain would create an identity
/// transition (the chain returns to the source's own value, which would
/// require a self-loop).
pub fn make_self_disabling(protocol: &Protocol) -> Result<Protocol, ProtocolError> {
    if !is_self_terminating(protocol) {
        return Err(ProtocolError::Invalid {
            message: "protocol is not self-terminating (t-arc cycle); Assumption 1 fails".into(),
        });
    }
    let space = protocol.space();
    let loc = protocol.locality();

    // Terminal states reachable from each state through t-arcs (memoized;
    // the t-graph is acyclic so plain recursion-by-worklist terminates).
    let n = space.len();
    let mut terminals: Vec<Option<Vec<LocalStateId>>> = vec![None; n];
    fn collect(
        protocol: &Protocol,
        id: LocalStateId,
        terminals: &mut Vec<Option<Vec<LocalStateId>>>,
    ) -> Vec<LocalStateId> {
        if let Some(t) = &terminals[id.index()] {
            return t.clone();
        }
        let space = protocol.space();
        let loc = protocol.locality();
        let targets = protocol.transitions_from(id);
        let mut out = Vec::new();
        if targets.is_empty() {
            out.push(id);
        } else {
            for &v in targets {
                let next = space.with_value(id, loc.center(), v);
                out.extend(collect(protocol, next, terminals));
            }
            out.sort_unstable();
            out.dedup();
        }
        terminals[id.index()] = Some(out.clone());
        out
    }

    let mut new_transitions = Vec::new();
    for t in protocol.transitions() {
        let target_state = t.target_state(space, loc);
        if !protocol.is_enabled(target_state) {
            new_transitions.push(t);
            continue;
        }
        let src_value = space.value_at(t.source, loc.center());
        for terminal in collect(protocol, target_state, &mut terminals) {
            let v = space.value_at(terminal, loc.center());
            if v == src_value {
                return Err(ProtocolError::Invalid {
                    message: format!(
                        "collapsing the chain from {} returns to its own value {v}; \
                         the transformation would need an identity transition",
                        t.source
                    ),
                });
            }
            new_transitions.push(LocalTransition::new(t.source, v));
        }
    }
    protocol.with_transitions(&format!("{}-sd", protocol.name()), new_transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    fn base(d: usize) -> selfstab_protocol::ProtocolBuilder {
        Protocol::builder("p", Domain::numeric("x", d), Locality::unidirectional())
    }

    #[test]
    fn chain_protocol_is_not_process_self_disabling() {
        // (0,1)->2 then (0,2)->... chain: with predecessor 0: 1 -> 2 -> done.
        let p = base(3)
            .transition(&[0, 1], 2)
            .unwrap()
            .transition(&[0, 2], 1)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        // (0,1)->(0,2) and (0,2)->(0,1): a t-cycle — not self-terminating.
        assert!(!is_self_terminating(&p));
        assert!(!is_process_self_disabling(&p));
        assert!(make_self_disabling(&p).is_err());
    }

    #[test]
    fn transform_collapses_chains() {
        // (0,1)->2 and (0,2)->... wait: make an acyclic chain
        // (0,0)->1, (0,1)->2 ; from (0,0) the chain is 0->1->2.
        let p = base(3)
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[0, 1], 2)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        assert!(is_self_terminating(&p));
        assert!(!is_process_self_disabling(&p));
        let q = make_self_disabling(&p).unwrap();
        assert!(is_process_self_disabling(&q));
        // (0,0) now jumps directly to the terminal value 2.
        let sp = q.space();
        assert_eq!(q.transitions_from(sp.encode(&[0, 0])), &[2]);
        // (0,1)->2 is kept (its target is a deadlock).
        assert_eq!(q.transitions_from(sp.encode(&[0, 1])), &[2]);
        // No new local deadlocks: enabled set unchanged.
        assert_eq!(
            p.enabled_states().as_bitset().iter().collect::<Vec<_>>(),
            q.enabled_states().as_bitset().iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn transform_is_identity_on_self_disabling_protocols() {
        let p = base(2)
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        assert!(is_process_self_disabling(&p));
        let q = make_self_disabling(&p).unwrap();
        assert_eq!(
            p.transitions().collect::<Vec<_>>(),
            q.transitions().collect::<Vec<_>>()
        );
    }

    #[test]
    fn transform_rejects_chains_returning_to_source_value() {
        // (0,0)->1, (0,1)->... chain ending back at value 0: (0,1)->0 has
        // target (0,0) which is enabled, so chain 0->1->0->1... is a cycle:
        // caught as non-self-terminating. Construct instead 0->1->0 acyclic?
        // Impossible with d=2; use d=3: (0,0)->1, (0,1)->0? target (0,0)
        // enabled -> cycle again. A chain returning to the source value
        // without a t-cycle needs distinct intermediate states; with one
        // writable variable target states repeat, so the error arm requires
        // nondeterministic branches: (0,0)->{1}, (0,1)->{2}, (0,2) deadlock,
        // plus (0,1)->{0}? then (0,0) enabled -> cycle. So the arm is
        // unreachable for deterministic chains; assert the cycle diagnosis.
        let p = base(3)
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[0, 1], 0)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let e = make_self_disabling(&p).unwrap_err();
        assert!(e.to_string().contains("self-terminating"));
    }

    #[test]
    fn retarget_matches_a_fresh_build() {
        let p = base(3)
            .transition(&[0, 0], 1)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let q = p
            .with_added_transitions("q", [LocalTransition::new(p.space().encode(&[0, 1]), 2)])
            .unwrap();
        let mut ltg = Ltg::build(&p);
        ltg.retarget(&q);
        let fresh = Ltg::build(&q);
        assert_eq!(
            ltg.t_arcs().arcs().collect::<Vec<_>>(),
            fresh.t_arcs().arcs().collect::<Vec<_>>()
        );
        assert_eq!(ltg.transitions(), fresh.transitions());
        assert_eq!(
            ltg.s_arcs().arcs().collect::<Vec<_>>(),
            fresh.s_arcs().arcs().collect::<Vec<_>>(),
            "the s-arcs are space-determined and must be untouched"
        );
        // Retargeting back restores the original t-graph.
        ltg.retarget(&p);
        let orig = Ltg::build(&p);
        assert_eq!(ltg.transitions(), orig.transitions());
    }

    #[test]
    fn ltg_dot_contains_both_arc_kinds() {
        let p = base(2)
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let ltg = Ltg::build(&p);
        let dot = ltg.to_dot(&p, "ltg");
        assert!(dot.contains("label=\"s\""));
        assert!(dot.contains("label=\"t\""));
    }
}

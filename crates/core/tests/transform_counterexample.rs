//! Regression: the paper's Assumption-2 chain-collapsing transformation is
//! **not** livelock-preserving (finding #4 of EXPERIMENTS.md).
//!
//! Section 5 claims "self-enabling actions can be transformed into
//! self-disabling without adding neither deadlocks nor livelocks in ¬I",
//! presenting the reduction as at-no-loss-of-generality. Randomized search
//! found a 3-transition protocol that *livelocks at K = 3* while its
//! chain-collapsed form is livelock-free there — so reasoning about the
//! transformed protocol and transferring livelock-freedom back to the
//! original would be unsound. `LivelockAnalysis` therefore refuses to
//! certify chain protocols instead of normalizing them.

use selfstab_core::livelock::LivelockAnalysis;
use selfstab_core::ltg::{is_process_self_disabling, is_self_terminating, make_self_disabling};
use selfstab_global::{check, RingInstance};
use selfstab_protocol::{Domain, LocalStateId, LocalTransition, Locality, Protocol};

/// d = 3, unidirectional; legit local states {⟨0,2⟩, ⟨1,0⟩, ⟨1,1⟩};
/// transitions ⟨0,0⟩→1 (chains into) ⟨0,1⟩→2, plus ⟨1,1⟩→0.
fn counterexample() -> Protocol {
    let base = Protocol::builder("cx4", Domain::numeric("x", 3), Locality::unidirectional())
        .legit_fn(|id, _| [2usize, 3, 4].contains(&id.index()))
        .build()
        .unwrap();
    base.with_transitions(
        "cx4",
        [
            LocalTransition::new(LocalStateId(0), 1),
            LocalTransition::new(LocalStateId(1), 2),
            LocalTransition::new(LocalStateId(4), 0),
        ],
    )
    .unwrap()
}

#[test]
fn transform_can_remove_livelocks() {
    let p = counterexample();
    assert!(is_self_terminating(&p));
    assert!(
        !is_process_self_disabling(&p),
        "⟨0,0⟩→⟨0,1⟩ chains into ⟨0,1⟩→⟨0,2⟩"
    );

    let q = make_self_disabling(&p).unwrap();
    assert!(is_process_self_disabling(&q));

    let ring_p = RingInstance::symmetric(&p, 3).unwrap();
    let ring_q = RingInstance::symmetric(&q, 3).unwrap();
    assert!(
        check::find_livelock(&ring_p).is_some(),
        "the original livelocks at K = 3"
    );
    assert!(
        check::find_livelock(&ring_q).is_none(),
        "the transformed protocol does not — the transformation removed a livelock"
    );
}

#[test]
fn certificate_refuses_rather_than_normalizes() {
    // Because of the above, certifying p by analyzing transform(p) would be
    // unsound; the analysis must (and does) report Unknown for p itself.
    let p = counterexample();
    let a = LivelockAnalysis::analyze(&p);
    assert!(!a.certified_free());
    assert!(!a.process_self_disabling());
}

#[test]
fn transform_preserves_deadlock_analysis() {
    // What the transformation *does* preserve: the local deadlock set, and
    // with it the Theorem 4.2 verdict.
    let p = counterexample();
    let q = make_self_disabling(&p).unwrap();
    assert_eq!(
        p.local_deadlocks().as_bitset().iter().collect::<Vec<_>>(),
        q.local_deadlocks().as_bitset().iter().collect::<Vec<_>>()
    );
    let da_p = selfstab_core::deadlock::DeadlockAnalysis::analyze(&p);
    let da_q = selfstab_core::deadlock::DeadlockAnalysis::analyze(&q);
    assert_eq!(da_p.is_free_for_all_k(), da_q.is_free_for_all_k());
}

//! Cross-validation of the paper's theorems against the global model
//! checker, on randomized protocols.
//!
//! * **Theorem 4.2** is necessary *and* sufficient, so the local verdict
//!   must agree exactly with global deadlock detection (both directions).
//! * **Theorem 5.14** is sufficient only: when the local certificate says
//!   livelock-free, the global checker must find no livelock at any tested
//!   ring size (the converse need not hold).

use proptest::prelude::*;
use selfstab_core::{
    deadlock::DeadlockAnalysis, livelock::LivelockAnalysis, local_closure_check,
    ltg::is_self_terminating, report::StabilizationReport,
};
use selfstab_global::{check, RingInstance};
use selfstab_protocol::{Domain, LocalStateId, LocalTransition, Locality, Protocol};

/// Random unidirectional protocol over domain size `d`.
fn arb_protocol(d: usize) -> impl Strategy<Value = Protocol> {
    let nstates = d * d;
    (
        proptest::collection::vec((0..nstates as u32, 0..d as u8), 0..(2 * nstates)),
        proptest::collection::vec(any::<bool>(), nstates),
    )
        .prop_map(move |(arcs, legit)| {
            let base =
                Protocol::builder("rand", Domain::numeric("x", d), Locality::unidirectional())
                    .legit_fn(|id, _| legit.get(id.index()).copied().unwrap_or(false))
                    .build()
                    .or_else(|_| {
                        Protocol::builder(
                            "rand",
                            Domain::numeric("x", d),
                            Locality::unidirectional(),
                        )
                        .legit_all()
                        .build()
                    })
                    .unwrap();
            let sp = *base.space();
            let loc = base.locality();
            let ts: Vec<LocalTransition> = arcs
                .into_iter()
                .map(|(s, t)| LocalTransition::new(LocalStateId(s), t))
                .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
                .collect();
            base.with_transitions("rand", ts).unwrap()
        })
}

/// Random bidirectional protocol over a small domain (used for the
/// deadlock theorem, which covers bidirectional rings too).
fn arb_bidirectional(d: usize) -> impl Strategy<Value = Protocol> {
    let nstates = d * d * d;
    (
        proptest::collection::vec((0..nstates as u32, 0..d as u8), 0..nstates),
        proptest::collection::vec(any::<bool>(), nstates),
    )
        .prop_map(move |(arcs, legit)| {
            let base =
                Protocol::builder("rand", Domain::numeric("x", d), Locality::bidirectional())
                    .legit_fn(|id, _| legit.get(id.index()).copied().unwrap_or(false))
                    .build()
                    .or_else(|_| {
                        Protocol::builder(
                            "rand",
                            Domain::numeric("x", d),
                            Locality::bidirectional(),
                        )
                        .legit_all()
                        .build()
                    })
                    .unwrap();
            let sp = *base.space();
            let loc = base.locality();
            let ts: Vec<LocalTransition> = arcs
                .into_iter()
                .map(|(s, t)| LocalTransition::new(LocalStateId(s), t))
                .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
                .collect();
            base.with_transitions("rand", ts).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.2, soundness direction: if the local analysis says
    /// deadlock-free for all K, no instance up to K=7 has an illegitimate
    /// global deadlock.
    #[test]
    fn theorem_4_2_sound(p in arb_protocol(3)) {
        let a = DeadlockAnalysis::analyze(&p);
        if a.is_free_for_all_k() {
            for k in 1..=7 {
                let ring = RingInstance::symmetric(&p, k).unwrap();
                let bad = check::illegitimate_deadlocks(&ring);
                prop_assert!(
                    bad.is_empty(),
                    "local verdict FREE but global deadlock at K={k}: {:?}",
                    bad.first()
                );
            }
        }
    }

    /// Theorem 4.2, completeness direction: every witness cycle's base ring
    /// size really exhibits a global deadlock outside I, at the predicted
    /// configuration.
    #[test]
    fn theorem_4_2_complete(p in arb_protocol(3)) {
        let a = DeadlockAnalysis::analyze(&p);
        for w in a.witnesses().iter().take(5) {
            if w.base_ring_size > 9 {
                continue;
            }
            // The theorem also covers multiples; check the base and double.
            for mult in [1usize, 2] {
                let k = w.base_ring_size * mult;
                if k > 9 { continue; }
                let ring = RingInstance::symmetric(&p, k).unwrap();
                let config: Vec<u8> = (0..k).map(|i| w.configuration[i % w.base_ring_size]).collect();
                let gid = ring.space().encode(&config);
                prop_assert!(ring.is_deadlock(gid), "witness configuration is not deadlocked at K={k}");
                prop_assert!(!ring.is_legit(gid), "witness configuration is legitimate at K={k}");
            }
        }
    }

    /// Theorem 4.2 exactness: the local verdict agrees with exhaustive
    /// global deadlock detection over K=1..=6 *when the verdict is FREE*;
    /// when NOT free, some ring size in the witnesses' span must exhibit a
    /// deadlock (checked via the witnesses above). Additionally, if any
    /// global instance K≤6 has an illegitimate deadlock, the local verdict
    /// must be NOT free.
    #[test]
    fn theorem_4_2_exact_on_small_rings(p in arb_protocol(3)) {
        let a = DeadlockAnalysis::analyze(&p);
        let mut any_global = false;
        for k in 1..=6 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            if !check::illegitimate_deadlocks(&ring).is_empty() {
                any_global = true;
            }
        }
        if any_global {
            prop_assert!(!a.is_free_for_all_k(), "global deadlock exists but local verdict is FREE");
        }
    }

    /// `deadlocked_ring_sizes` is exact: it matches global deadlock
    /// detection at every size.
    #[test]
    fn deadlocked_ring_sizes_exact(p in arb_protocol(3)) {
        let a = DeadlockAnalysis::analyze(&p);
        let sizes = a.deadlocked_ring_sizes(6);
        for k in 1..=6 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let global = !check::illegitimate_deadlocks(&ring).is_empty();
            prop_assert_eq!(
                sizes.contains(&k),
                global,
                "ring-size set disagrees with global at K={}", k
            );
        }
    }

    /// Theorem 4.2 on bidirectional rings, with exact ring sizes.
    #[test]
    fn theorem_4_2_bidirectional(p in arb_bidirectional(2)) {
        let a = DeadlockAnalysis::analyze(&p);
        let sizes = a.deadlocked_ring_sizes(6);
        for k in 1..=6 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let bad = check::illegitimate_deadlocks(&ring);
            if a.is_free_for_all_k() {
                prop_assert!(bad.is_empty(), "local FREE but deadlock at K={k}");
            }
            if !bad.is_empty() {
                prop_assert!(!a.is_free_for_all_k());
            }
            prop_assert_eq!(sizes.contains(&k), !bad.is_empty(), "ring-size set wrong at K={}", k);
        }
    }

    /// **Theorem 5.14 soundness**: a certified protocol has no livelock at
    /// any ring size K=2..=7.
    #[test]
    fn theorem_5_14_sound(p in arb_protocol(2)) {
        let a = LivelockAnalysis::analyze(&p);
        if a.certified_free() {
            for k in 2..=7 {
                let ring = RingInstance::symmetric(&p, k).unwrap();
                prop_assert!(
                    check::find_livelock(&ring).is_none(),
                    "certified livelock-free but livelock found at K={k}"
                );
            }
        }
    }

    /// Theorem 5.14 soundness over a 3-valued domain.
    #[test]
    fn theorem_5_14_sound_d3(p in arb_protocol(3)) {
        let a = LivelockAnalysis::analyze(&p);
        if a.certified_free() {
            for k in 2..=5 {
                let ring = RingInstance::symmetric(&p, k).unwrap();
                prop_assert!(
                    check::find_livelock(&ring).is_none(),
                    "certified livelock-free but livelock found at K={k}"
                );
            }
        }
    }

    /// Combined report soundness: a protocol the local method declares
    /// self-stabilizing for all K passes the full global check on every
    /// tested size.
    #[test]
    fn report_sound(p in arb_protocol(2)) {
        let r = StabilizationReport::analyze(&p);
        if r.is_self_stabilizing_for_all_k() {
            for k in 2..=6 {
                let ring = RingInstance::symmetric(&p, k).unwrap();
                let g = check::ConvergenceReport::check(&ring);
                prop_assert!(g.self_stabilizing(), "local verdict SS but global check fails at K={k}: {g}");
            }
        }
    }

    /// Local closure check soundness: Ok(()) implies no global closure
    /// violations at any tested size.
    #[test]
    fn closure_check_sound(p in arb_protocol(3)) {
        if local_closure_check(&p).is_ok() {
            for k in 2..=5 {
                let ring = RingInstance::symmetric(&p, k).unwrap();
                prop_assert!(
                    check::closure_violations(&ring).is_empty(),
                    "local closure OK but global violation at K={k}"
                );
            }
        }
    }

    /// The self-disabling transform preserves local deadlocks and
    /// self-termination, and its output is process-self-disabling.
    #[test]
    fn self_disabling_transform_properties(p in arb_protocol(3)) {
        if !is_self_terminating(&p) {
            return Ok(()); // transform requires Assumption 1
        }
        if let Ok(q) = selfstab_core::ltg::make_self_disabling(&p) {
            prop_assert!(selfstab_core::ltg::is_process_self_disabling(&q));
            prop_assert_eq!(
                p.local_deadlocks().as_bitset().iter().collect::<Vec<_>>(),
                q.local_deadlocks().as_bitset().iter().collect::<Vec<_>>()
            );
        }
    }
}

//! Smoke tests for the reproduction harness: the fast experiments must run
//! without panicking (the heavyweight ones — E12, X1/X2, the ablations —
//! are exercised by the `repro` binary itself).

use selfstab_bench::experiments;

#[test]
fn fast_experiments_run() {
    experiments::e1();
    experiments::e4();
    experiments::e5();
    experiments::e9();
    experiments::e10();
}

#[test]
fn synthesis_experiments_run() {
    experiments::e8();
    experiments::e11();
}

#[test]
fn deadlock_experiments_run() {
    experiments::e2();
    experiments::e3();
}

#[test]
fn livelock_experiments_run() {
    experiments::e6();
    experiments::e7();
}

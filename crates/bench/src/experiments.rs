//! Paper-style reproduction of every experiment (E1–E13 + ablations).
//!
//! Each function prints the rows EXPERIMENTS.md records. The assertions in
//! `crates/protocols/tests/experiments.rs` are the machine-checked twins of
//! these tables.

use selfstab_core::{
    deadlock::DeadlockAnalysis,
    livelock::LivelockAnalysis,
    local_closure_check,
    ltg::Ltg,
    rcg::Rcg,
    report::StabilizationReport,
    trail::{find_contiguous_trail, TrailQuery},
};
use selfstab_global::{
    check,
    schedule::{equivalent_schedules, Schedule},
    RingInstance, Simulator,
};
use selfstab_protocol::{LocalTransition, Protocol};
use selfstab_protocols::{agreement, coloring, dijkstra, matching, sum_not_two};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};

use crate::timing::{fmt_us, timed, timed_mean};

fn header(id: &str, title: &str) {
    println!("\n==================== {id}: {title} ====================");
}

/// E1 (Fig. 1): RCG of maximal matching over the full local state space.
pub fn e1() {
    header("E1", "RCG of maximal matching (Fig. 1)");
    let p = matching::matching_empty();
    let (rcg, us) = timed(|| Rcg::build(&p));
    println!(
        "local states: {}   s-arcs: {}   legitimate: {}   built in {}",
        rcg.graph().vertex_count(),
        rcg.graph().arc_count(),
        p.legit().len(),
        fmt_us(us)
    );
    println!("paper: 27 states, 3 continuations each, 7 legitimate local states");
}

/// E2 (Fig. 2 / Ex. 4.2): generalizable matching is deadlock-free for all K.
pub fn e2() {
    header("E2", "generalizable matching A1..A5 (Fig. 2, Ex. 4.2)");
    let p = matching::matching_generalizable();
    let (da, us) = timed(|| DeadlockAnalysis::analyze(&p));
    println!(
        "Theorem 4.2 verdict: {} (local deadlocks {}, illegitimate {})  [{}]",
        if da.is_free_for_all_k() {
            "FREE for all K"
        } else {
            "NOT FREE"
        },
        da.local_deadlock_count(),
        da.illegitimate_deadlock_count(),
        fmt_us(us)
    );
    println!("closure: {:?}", local_closure_check(&p).is_ok());
    println!(
        "{:<4} {:>10} {:>12} {:>10} {:>12}",
        "K", "states", "deadlocks¬I", "livelock", "time"
    );
    for k in 3..=8 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let (rep, us) = timed(|| check::ConvergenceReport::check(&ring));
        println!(
            "{:<4} {:>10} {:>12} {:>10} {:>12}",
            k,
            rep.state_count,
            rep.illegitimate_deadlocks.len(),
            rep.livelock.is_some(),
            fmt_us(us)
        );
    }
    println!("paper: model-checked deadlock-free for K = 5, 6, 7, 8");
}

/// E3 (Fig. 3 / Ex. 4.3): non-generalizable matching — witness cycles and
/// the exact deadlocked ring sizes (paper erratum).
pub fn e3() {
    header("E3", "non-generalizable matching B1..B4 (Fig. 3, Ex. 4.3)");
    let p = matching::matching_non_generalizable();
    let da = DeadlockAnalysis::analyze(&p);
    println!("Theorem 4.2 verdict: NOT FREE (as expected)");
    for w in da.witnesses() {
        let states: Vec<String> = w
            .cycle
            .iter()
            .map(|&s| p.space().format_compact(s, p.domain()))
            .collect();
        println!(
            "  witness cycle len {}: {}",
            w.base_ring_size,
            states.join("->")
        );
    }
    println!(
        "exact deadlocked ring sizes <= 14: {:?}",
        da.deadlocked_ring_sizes(14)
    );
    println!("paper claims: multiples of 4 or 6 only — ERRATUM: closed walks");
    println!("combine cycles, so K = 7 and every K >= 6 deadlock. Global check:");
    for k in 3..=9 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let n = check::illegitimate_deadlocks(&ring).len();
        print!("  K={k}:{n}");
    }
    println!();
    let lls = p.space().encode(&[0, 0, 2]);
    let fixed = p
        .with_added_transitions("fixed", [LocalTransition::new(lls, 1)])
        .unwrap();
    println!(
        "after resolving ⟨left,left,self⟩: free_for_all_k = {}",
        DeadlockAnalysis::analyze(&fixed).is_free_for_all_k()
    );
}

/// E4 (Fig. 4): LTG of the generalizable matching protocol.
pub fn e4() {
    header("E4", "LTG of Ex. 4.2 (Fig. 4)");
    let p = matching::matching_generalizable();
    let (ltg, us) = timed(|| Ltg::build(&p));
    println!(
        "t-arcs: {}   s-arcs: {}   built in {}",
        ltg.transitions().len(),
        ltg.s_arcs().arc_count(),
        fmt_us(us)
    );
}

/// E5 (Figs. 5–6 / Ex. 5.2): the agreement livelock's precedence class.
pub fn e5() {
    header(
        "E5",
        "agreement livelock precedence class (Figs. 5-6, Ex. 5.2)",
    );
    let p = agreement::binary_agreement_both();
    let ring = RingInstance::symmetric(&p, 4).unwrap();
    let cycle: Vec<_> = [
        [1, 0, 0, 0],
        [1, 1, 0, 0],
        [0, 1, 0, 0],
        [0, 1, 1, 0],
        [0, 1, 1, 1],
        [0, 0, 1, 1],
        [1, 0, 1, 1],
        [1, 0, 0, 1],
    ]
    .iter()
    .map(|w| ring.space().encode(w))
    .collect();
    let sch = Schedule::from_cycle(&ring, &cycle);
    let class = equivalent_schedules(&ring, &sch, 1000);
    println!(
        "livelock length: {}   precedence-preserving permutations: {} (paper: 2^3 = 8)",
        cycle.len(),
        class.len()
    );
    println!(
        "all permutations replay as livelocks: {}",
        class.iter().all(|s| s.is_cyclic(&ring))
    );
}

/// E6 (Fig. 7 / Lemma 5.5): enablement conservation in livelocks.
pub fn e6() {
    header("E6", "enablement conservation (Fig. 7, Lemma 5.5)");
    let p = matching::gouda_acharya_fragment();
    println!("{:<4} {:>14} {:>8}", "K", "livelock len", "|E|");
    for k in 3..=7 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        match check::find_livelock(&ring) {
            Some(c) => {
                let e = check::livelock_enablement_count(&ring, &c);
                println!(
                    "{:<4} {:>14} {:>8}",
                    k,
                    c.len(),
                    e.map_or("?".into(), |e| e.to_string())
                );
            }
            None => println!("{:<4} {:>14} {:>8}", k, "-", "-"),
        }
    }
}

/// E7 (Fig. 8): the Gouda–Acharya livelock and its contiguous trail.
pub fn e7() {
    header("E7", "Gouda-Acharya matching fragment (Fig. 8)");
    let p = matching::gouda_acharya_fragment();
    let la = LivelockAnalysis::analyze(&p);
    println!(
        "Theorem 5.14 certificate: certified_free = {}",
        la.certified_free()
    );
    if let Some(t) = la.trail() {
        println!("blocking trail: {}", t.display(&p));
    }
    let ring = RingInstance::symmetric(&p, 5).unwrap();
    let c = check::find_livelock(&ring).expect("paper's K=5 livelock");
    println!(
        "global livelock at K=5: length {} |E| = {:?} (paper: 10 transitions, |E| = 1)",
        c.len(),
        check::livelock_enablement_count(&ring, &c)
    );
}

/// E8 (Fig. 9 / §6.1): 3-coloring synthesis failure is genuine.
pub fn e8() {
    header("E8", "3-coloring synthesis (Fig. 9, §6.1)");
    let p = coloring::three_coloring_empty();
    let (out, us) = timed(|| LocalSynthesizer::default().synthesize(&p).unwrap());
    println!(
        "combinations: {}   rejected by trail: {}   solutions: {}   [{}]",
        out.combinations_tried(),
        out.rejected_by_trail(),
        out.solutions().len(),
        fmt_us(us)
    );
    println!("paper: all 2^3 = 8 candidate sets rejected — declare failure");
    println!("{:<16} {:>22}", "candidate", "first global livelock");
    for a in [1u8, 2] {
        for b in [0u8, 2] {
            for c in [0u8, 1] {
                let cand = coloring::three_coloring_candidate([a, b, c]).unwrap();
                let mut first = None;
                for k in 2..=6 {
                    let ring = RingInstance::symmetric(&cand, k).unwrap();
                    if check::find_livelock(&ring).is_some() {
                        first = Some(k);
                        break;
                    }
                }
                println!(
                    "{:<16} {:>22}",
                    format!("t0{a},t1{b},t2{c}"),
                    first.map_or("none<=6".into(), |k| format!("K={k}"))
                );
            }
        }
    }
}

/// E9 (Fig. 10 / §6.2): agreement synthesis.
pub fn e9() {
    header("E9", "agreement synthesis (Fig. 10, §6.2)");
    let p = agreement::binary_agreement_empty();
    let (out, us) = timed(|| LocalSynthesizer::default().synthesize(&p).unwrap());
    println!(
        "solutions: {} (paper: Resolve = {{01}} or {{10}}, one t-arc each)  [{}]",
        out.solutions().len(),
        fmt_us(us)
    );
    for s in out.solutions() {
        for t in &s.added {
            println!("  {}", t.display(p.space(), p.locality(), p.domain()));
        }
        let ok = selfstab_synth::global::verify_up_to(&s.protocol, 10).is_ok();
        println!("    globally self-stabilizing K=2..=10: {ok}");
    }
    let both = agreement::binary_agreement_both();
    println!(
        "including BOTH t-arcs: certified = {} (and livelocks at K=4: {})",
        LivelockAnalysis::analyze(&both).certified_free(),
        check::find_livelock(&RingInstance::symmetric(&both, 4).unwrap()).is_some()
    );
}

/// E10 (Fig. 11 / §6.2): 2-coloring is inconclusive for the method.
pub fn e10() {
    header("E10", "2-coloring (Fig. 11, §6.2)");
    let p = coloring::two_coloring_empty();
    let out = LocalSynthesizer::default().synthesize(&p).unwrap();
    println!(
        "synthesis success: {} (paper: cannot conclude; in fact impossible [25])",
        out.is_success()
    );
    let resolved = coloring::two_coloring_resolved();
    let la = LivelockAnalysis::analyze(&resolved);
    println!("resolved {{t01, t10}}: certified = {}", la.certified_free());
    if let Some(t) = la.trail() {
        println!(
            "blocking trail: {} (paper: ≪00,t,01,s,11,t,10,s≫)",
            t.display(&resolved)
        );
    }
    for k in 3..=6 {
        let ring = RingInstance::symmetric(&resolved, k).unwrap();
        let legit = ring.space().ids().filter(|&s| ring.is_legit(s)).count();
        let ll = check::find_livelock(&ring).is_some();
        println!("  K={k}: |I|={legit} livelock={ll}");
    }
}

/// E11 (Fig. 12 / §6.2): sum-not-two — acceptance, gap, and erratum.
pub fn e11() {
    header("E11", "sum-not-two (Fig. 12, §6.2)");
    let p = sum_not_two::sum_not_two_empty();
    let out = LocalSynthesizer::default().synthesize(&p).unwrap();
    println!(
        "combinations: {}   rejected: {}   solutions: {}",
        out.combinations_tried(),
        out.rejected_by_trail(),
        out.solutions().len()
    );
    println!("paper: rejects {{t21,t10,t02}} and {{t01,t12,t20}} only.");
    println!(
        "{:<18} {:>10} {:>22}",
        "candidate", "certified", "global livelock<=7"
    );
    let cands = [
        ("t21,t10,t01", (1u8, 0u8, 1u8)),
        ("t21,t10,t02", (1, 0, 2)),
        ("t21,t12,t01", (1, 2, 1)),
        ("t21,t12,t02", (1, 2, 2)),
        ("t20,t10,t01", (0, 0, 1)),
        ("t20,t10,t02", (0, 0, 2)),
        ("t20,t12,t01", (0, 2, 1)),
        ("t20,t12,t02", (0, 2, 2)),
    ];
    for (name, (a, b, c)) in cands {
        let cand = sum_not_two::sum_not_two_candidate(a, b, c).unwrap();
        let cert = LivelockAnalysis::analyze(&cand).certified_free();
        let mut first = None;
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&cand, k).unwrap();
            if check::find_livelock(&ring).is_some() {
                first = Some(k);
                break;
            }
        }
        println!(
            "{:<18} {:>10} {:>22}",
            name,
            cert,
            first.map_or("none".into(), |k| format!("K={k}"))
        );
    }
    println!("ERRATUM: {{t20,t10,t02}} and {{t20,t12,t02}} really livelock (K>=3);");
    println!("this implementation rejects exactly the four unsound-or-unprovable sets.");
}

/// E12: the scaling contrast — K-independent local reasoning vs d^K global
/// exploration (verification and synthesis).
pub fn e12() {
    header("E12", "scaling: local reasoning vs global exploration");
    let protocols: Vec<(&str, Protocol)> = vec![
        ("agreement(t01)", agreement::binary_agreement_one_sided()),
        ("sum-not-two", sum_not_two::sum_not_two_solution()),
        ("max-agreement(4)", agreement::max_agreement(4)),
    ];
    for (name, p) in &protocols {
        let local_us = timed_mean(20, || {
            let _ = StabilizationReport::analyze(p);
        });
        println!(
            "\n{name}: local full report = {} (independent of K)",
            fmt_us(local_us)
        );
        println!("{:<6} {:>12} {:>14}", "K", "states", "global check");
        let d = p.domain().size() as u64;
        for k in [4usize, 6, 8, 10, 12] {
            if d.pow(k as u32) > (1 << 24) {
                println!("{:<6} {:>12} {:>14}", k, d.pow(k as u32), "(skipped)");
                continue;
            }
            let ring = RingInstance::symmetric(p, k).unwrap();
            let us = timed_mean(3, || {
                let _ = check::ConvergenceReport::check(&ring);
            });
            println!("{:<6} {:>12} {:>14}", k, ring.space().len(), fmt_us(us));
        }
    }

    println!("\nsynthesis (sum-not-two): local once vs global baseline per K");
    let input = sum_not_two::sum_not_two_empty();
    let (_, us) = timed(|| LocalSynthesizer::default().synthesize(&input).unwrap());
    println!("{:<22} {:>12}", "local methodology", fmt_us(us));
    for k in [3usize, 5, 7, 9, 11] {
        let (_, us) = timed(|| {
            GlobalSynthesizer::new(k, SynthesisConfig::default())
                .synthesize(&input)
                .unwrap()
        });
        println!(
            "{:<22} {:>12}",
            format!("global baseline K={k}"),
            fmt_us(us)
        );
    }
}

/// E13: Dijkstra's token ring — convergence despite corrupting actions.
pub fn e13() {
    header("E13", "Dijkstra K-state token ring (§5 remark)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "(K, m)", "deadlock", "livelock", "closed", "time"
    );
    for (k, m) in [(3usize, 3usize), (4, 4), (4, 5), (5, 5), (4, 2)] {
        let ps = dijkstra::dijkstra_processes(k, m);
        let refs: Vec<&Protocol> = ps.iter().collect();
        let ring = RingInstance::heterogeneous(&refs, 1 << 24).unwrap();
        let legit =
            |s: selfstab_global::GlobalStateId| dijkstra::token_count(&ring.space().decode(s)) == 1;
        let (res, us) = timed(|| {
            (
                !check::illegitimate_deadlocks_where(&ring, legit).is_empty(),
                check::find_livelock_where(&ring, legit).is_some(),
                check::first_closure_violation_where(&ring, legit).is_none(),
            )
        });
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            format!("({k}, {m})"),
            res.0,
            res.1,
            res.2,
            fmt_us(us)
        );
    }
    println!("(m >= K stabilizes, m = 2 < K = 4 livelocks — Dijkstra's bound)");

    // Convergence-time statistics under a random daemon.
    let ps = dijkstra::dijkstra_processes(6, 6);
    let refs: Vec<&Protocol> = ps.iter().collect();
    let ring = RingInstance::heterogeneous(&refs, 1 << 24).unwrap();
    let mut sim = Simulator::new(&ring, 11);
    let mut total = 0usize;
    let mut max = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let mut s = sim.random_state();
        let mut steps = 0;
        while dijkstra::token_count(&ring.space().decode(s)) != 1 && steps < 100_000 {
            let moves = ring.moves_from(s);
            s = ring.apply(s, moves[steps % moves.len()]);
            steps += 1;
        }
        total += steps;
        max = max.max(steps);
    }
    println!(
        "K=6, m=6: mean steps to one token = {:.1}, max = {max} over {trials} random starts",
        total as f64 / trials as f64
    );
}

/// Extension X1 (beyond the paper): fault spans and worst-case recovery
/// times of the convergent protocols, per fault budget.
pub fn x1() {
    header("X1", "fault spans and worst-case recovery (extension)");
    let cases: Vec<(&str, Protocol, usize)> = vec![
        ("agreement(t01)", agreement::binary_agreement_one_sided(), 8),
        ("sum-not-two", sum_not_two::sum_not_two_solution(), 6),
        ("max-agreement(3)", agreement::max_agreement(3), 6),
    ];
    for (name, p, k) in cases {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let wc = selfstab_global::faults::worst_case_recovery(&ring)
            .expect("convergent protocols have a bound");
        println!("\n{name} at K={k}: worst-case recovery from ANY state = {wc} steps");
        println!(
            "{:<8} {:>14} {:>18}",
            "faults", "span states", "worst recovery"
        );
        for f in 0..=3usize {
            let span = selfstab_global::faults::fault_span(&ring, f);
            let starts: Vec<_> = ring.space().ids().filter(|s| span[s.index()]).collect();
            let count = starts.len();
            let wc = selfstab_global::faults::worst_case_recovery_from(&ring, starts).unwrap();
            println!("{:<8} {:>14} {:>18}", f, count, wc);
        }
    }
}

/// Extension X2 (beyond the paper): weak vs strong convergence — the flip
/// token ring and bidirectional coloring converge under a random daemon
/// but can be livelocked by an adversarial one.
pub fn x2() {
    header("X2", "weak vs strong convergence (extension)");
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let p = selfstab_protocols::token::flip_token_ring();
    println!("flip token ring (token iff x_i == x_{{i-1}}; odd rings):");
    println!(
        "{:<4} {:>18} {:>14} {:>18}",
        "K", "adversarial", "weak conv", "random mean steps"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for k in [3usize, 5, 7, 9] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let legit = |s: selfstab_global::GlobalStateId| {
            selfstab_protocols::token::token_count(&ring.space().decode(s)) == 1
        };
        let ll = check::find_livelock_where(&ring, legit).is_some();
        // Weak convergence: every state can reach a one-token state —
        // token parity means it holds (odd K); measure the random daemon.
        let mut total = 0usize;
        let trials = 200;
        let mut sim = Simulator::new(&ring, 5);
        for _ in 0..trials {
            let mut s = sim.random_state();
            let mut steps = 0;
            while !legit(s) && steps < 100_000 {
                let moves = ring.moves_from(s);
                s = ring.apply(s, *moves.as_slice().choose(&mut rng).unwrap());
                steps += 1;
            }
            total += steps;
        }
        println!(
            "{:<4} {:>18} {:>14} {:>18.1}",
            k,
            if ll { "livelocks" } else { "converges" },
            "yes",
            total as f64 / trials as f64
        );
    }

    let p = selfstab_protocols::coloring::bidirectional_coloring(3);
    println!("\nbidirectional 3-coloring with nondeterministic repaint:");
    println!(
        "{:<4} {:>12} {:>12} {:>12}",
        "K", "deadlocks", "adversarial", "weak conv"
    );
    for k in 3..=6 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let rep = check::ConvergenceReport::check(&ring);
        let weak = check::weakly_converges(&ring);
        println!(
            "{:<4} {:>12} {:>12} {:>12}",
            k,
            rep.illegitimate_deadlocks.len(),
            if rep.livelock.is_some() {
                "livelocks"
            } else {
                "converges"
            },
            weak
        );
    }
}

/// Ablation A1: Theorem 4.2 verdict via SCC only vs full witness
/// enumeration (witness quality costs time).
pub fn ablate_a1() {
    header("A1", "deadlock check: SCC verdict vs witness enumeration");
    let p = matching::matching_non_generalizable();
    let rcg = Rcg::build(&p);
    let scc_us = timed_mean(50, || {
        let induced = rcg.induced(&p.local_deadlocks());
        let _ = selfstab_graph::scc::vertices_on_cycles(&induced);
    });
    let full_us = timed_mean(50, || {
        let _ = DeadlockAnalysis::analyze_prepared(
            &p,
            &rcg,
            selfstab_graph::cycles::CycleBudget::default(),
        );
    });
    println!(
        "SCC-only verdict: {}   with witnesses + ring sizes: {}",
        fmt_us(scc_us),
        fmt_us(full_us)
    );
}

/// Ablation A2: livelock certificate — exact subset enumeration vs the
/// coarse support-only search (the latter over-rejects).
pub fn ablate_a2() {
    header("A2", "trail search: subset-exact vs support-only");
    let mut exact_rejects = 0;
    let mut coarse_rejects = 0;
    for (a, b, c) in [
        (1u8, 0u8, 1u8),
        (1, 0, 2),
        (1, 2, 1),
        (1, 2, 2),
        (0, 0, 1),
        (0, 0, 2),
        (0, 2, 1),
        (0, 2, 2),
    ] {
        let cand = sum_not_two::sum_not_two_candidate(a, b, c).unwrap();
        if !LivelockAnalysis::analyze(&cand).certified_free() {
            exact_rejects += 1;
        }
        // Coarse: any trail over the whole support.
        let ts: Vec<LocalTransition> = cand.transitions().collect();
        let support =
            selfstab_core::pseudo::pseudo_livelock_support(&ts, cand.space(), cand.locality());
        let ltg = Ltg::build(&cand);
        let illegit = cand.legit().negated();
        if find_contiguous_trail(
            &ltg,
            &cand,
            &TrailQuery {
                allowed: &support,
                must_visit: Some(illegit.as_bitset()),
                cover_all: false,
            },
        )
        .is_some()
        {
            coarse_rejects += 1;
        }
    }
    println!("sum-not-two candidates rejected: exact = {exact_rejects}/8, support-only = {coarse_rejects}/8");
    println!("(ground truth: 2 really livelock, 2 are unprovable by Theorem 5.14 => 4 is right)");
}

/// Ablation A3: RCG construction — prefix-grouped vs naive quadratic.
pub fn ablate_a3() {
    header("A3", "RCG construction: prefix-grouped vs naive O(n^2)");
    for d in [3usize, 4, 5] {
        let p = Protocol::builder(
            "bench",
            selfstab_protocol::Domain::numeric("x", d),
            selfstab_protocol::Locality::bidirectional(),
        )
        .legit_all()
        .build()
        .unwrap();
        let grouped = timed_mean(10, || {
            let _ = Rcg::build(&p);
        });
        let naive = timed_mean(10, || {
            let sp = p.space();
            let ov = p.locality().overlap();
            let mut g = selfstab_graph::DiGraph::new(sp.len());
            for a in sp.ids() {
                for b in sp.ids() {
                    if sp.is_right_continuation(a, b, ov) {
                        g.add_arc(a.index(), b.index());
                    }
                }
            }
        });
        println!(
            "d={d} ({} states): grouped = {}, naive = {}",
            d * d * d,
            fmt_us(grouped),
            fmt_us(naive)
        );
    }
}

/// Runs every experiment in order.
pub fn run_all() {
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    e13();
    x1();
    x2();
    ablate_a1();
    ablate_a2();
    ablate_a3();
}

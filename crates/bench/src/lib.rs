//! Experiment-reproduction harness for the `selfstab` workspace.
//!
//! The [`experiments`] module regenerates, in paper-style rows, every
//! figure and claim of Farahat & Ebnenasir (ICDCS 2012) that DESIGN.md
//! indexes as E1–E13, plus the ablations. The `repro` binary drives it:
//!
//! ```text
//! cargo run -p selfstab-bench --bin repro --release            # everything
//! cargo run -p selfstab-bench --bin repro --release -- e3 e11  # selected
//! ```
//!
//! Criterion benchmarks live under `benches/` and cover the scaling
//! experiment (E12) plus micro-benchmarks of the substrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod timing;

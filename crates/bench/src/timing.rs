//! Minimal wall-clock timing helpers for the reproduction tables.

use std::time::Instant;

/// Times a closure, returning its result and the elapsed microseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Times a closure over `reps` repetitions, returning the mean elapsed
/// microseconds of one run (the closure's last result is discarded).
pub fn timed_mean(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / reps.max(1) as f64
}

/// Times a closure over `reps` repetitions, returning the **minimum**
/// elapsed microseconds of one run. The minimum is the right estimator on
/// noisy or shared machines: interference only ever adds time, so the
/// fastest observed run is the closest to the true cost.
pub fn timed_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Formats microseconds compactly (`12.3us`, `4.5ms`, `6.7s`).
pub fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result() {
        let (v, us) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_us(12.34), "12.3us");
        assert_eq!(fmt_us(4_500.0), "4.5ms");
        assert_eq!(fmt_us(6_700_000.0), "6.70s");
    }
}

//! Regenerates the paper's experiments as console tables.
//!
//! ```text
//! cargo run -p selfstab-bench --bin repro --release            # everything
//! cargo run -p selfstab-bench --bin repro --release -- e3 e11  # selected
//! cargo run -p selfstab-bench --bin repro --release -- ablate  # ablations
//! ```

use selfstab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        experiments::run_all();
        return;
    }
    for a in &args {
        match a.as_str() {
            "e1" => experiments::e1(),
            "e2" => experiments::e2(),
            "e3" => experiments::e3(),
            "e4" => experiments::e4(),
            "e5" => experiments::e5(),
            "e6" => experiments::e6(),
            "e7" => experiments::e7(),
            "e8" => experiments::e8(),
            "e9" => experiments::e9(),
            "e10" => experiments::e10(),
            "e11" => experiments::e11(),
            "e12" => experiments::e12(),
            "e13" => experiments::e13(),
            "x1" => experiments::x1(),
            "x2" => experiments::x2(),
            "ablate" => {
                experiments::ablate_a1();
                experiments::ablate_a2();
                experiments::ablate_a3();
            }
            "all" => experiments::run_all(),
            other => eprintln!("unknown experiment `{other}` (e1..e13, x1, x2, ablate, all)"),
        }
    }
}

//! Benchmarks of the local-structure builders: RCG and LTG construction
//! across domain sizes and localities (the structures every local analysis
//! starts from; their cost is the paper's "local state space" cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_core::{ltg::Ltg, rcg::Rcg};
use selfstab_protocol::{Domain, Locality, Protocol};
use selfstab_protocols::matching;

fn protocol(d: usize, loc: Locality) -> Protocol {
    Protocol::builder("bench", Domain::numeric("x", d), loc)
        .legit_all()
        .build()
        .unwrap()
}

fn bench_rcg(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcg_build");
    for d in [2usize, 3, 4, 5] {
        let p = protocol(d, Locality::bidirectional());
        g.bench_with_input(BenchmarkId::new("bidirectional", d), &p, |b, p| {
            b.iter(|| Rcg::build(p));
        });
        let p = protocol(d, Locality::unidirectional());
        g.bench_with_input(BenchmarkId::new("unidirectional", d), &p, |b, p| {
            b.iter(|| Rcg::build(p));
        });
    }
    g.finish();
}

fn bench_rcg_naive_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcg_naive_vs_grouped");
    let p = protocol(4, Locality::bidirectional());
    g.bench_function("grouped", |b| b.iter(|| Rcg::build(&p)));
    g.bench_function("naive_quadratic", |b| {
        b.iter(|| {
            let sp = p.space();
            let ov = p.locality().overlap();
            let mut graph = selfstab_graph::DiGraph::new(sp.len());
            for x in sp.ids() {
                for y in sp.ids() {
                    if sp.is_right_continuation(x, y, ov) {
                        graph.add_arc(x.index(), y.index());
                    }
                }
            }
            graph
        })
    });
    g.finish();
}

fn bench_ltg(c: &mut Criterion) {
    let p = matching::matching_generalizable();
    c.bench_function("ltg_build_matching", |b| b.iter(|| Ltg::build(&p)));
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_rcg, bench_rcg_naive_comparison, bench_ltg
}
criterion_main!(benches);

//! Benchmarks of the oriented-tree extension: the reachability-based
//! deadlock theorem (constant in tree size) vs explicit checking per shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_protocol::Domain;
use selfstab_tree::{parent_arrays, TreeDeadlockAnalysis, TreeInstance, TreeProtocol, TreeShape};

fn tree_agreement(d: usize) -> TreeProtocol {
    TreeProtocol::builder(Domain::numeric("x", d))
        .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
        .unwrap()
        .node_legit("x[r] == x[r-1]")
        .unwrap()
        .root_silent_and_all_legit()
        .build()
        .unwrap()
}

fn bench_tree_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_deadlock_analysis");
    for d in [2usize, 3, 4, 5] {
        let p = tree_agreement(d);
        g.bench_with_input(BenchmarkId::from_parameter(d), &p, |b, p| {
            b.iter(|| TreeDeadlockAnalysis::analyze(p))
        });
    }
    g.finish();
}

fn bench_tree_brute_force(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_brute_force");
    g.sample_size(10);
    let p = tree_agreement(2);
    for n in [4usize, 6, 8] {
        g.bench_with_input(BenchmarkId::new("all_shapes", n), &n, |b, &n| {
            b.iter(|| {
                let mut bad = 0;
                for shape in parent_arrays(n) {
                    let inst = TreeInstance::new(&p, &shape);
                    bad += inst.illegitimate_deadlocks().len();
                }
                bad
            })
        });
        g.bench_with_input(BenchmarkId::new("single_path", n), &n, |b, &n| {
            let shape = TreeShape::path(n);
            b.iter(|| {
                let inst = TreeInstance::new(&p, &shape);
                inst.illegitimate_deadlocks().len()
            })
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_tree_analysis, bench_tree_brute_force
}
criterion_main!(benches);

//! Campaign throughput: the work-stealing job pool versus a single worker
//! on the full `specs/` corpus, plus the overhead of the CRC-framed,
//! batch-fsynced journal relative to an unjournaled run. Writes
//! `BENCH_campaign.json` at the repo root, and asserts along the way that
//! every worker count renders the byte-identical canonical report.

use criterion::{criterion_group, criterion_main, Criterion};
use selfstab_bench::timing::{fmt_us, timed_min};
use selfstab_campaign::{run_campaign, CampaignConfig, FsyncPolicy, Manifest};

fn bench_campaign_throughput(_c: &mut Criterion) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let manifest = Manifest::from_json_text(
        r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 9}"#,
        &root,
    )
    .expect("corpus manifest parses");
    let jobs = manifest.jobs().len();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always run the multi-worker side with at least 4 workers so the
    // work-stealing pool is exercised even on small hosts; the `cores`
    // field below says how much hardware the speedup had to work with.
    let workers = cores.max(4);

    let config_for = |w: usize| CampaignConfig {
        workers: w,
        ..CampaignConfig::default()
    };

    // Determinism first: the timings below only compare equal work.
    let baseline = run_campaign(&manifest, &config_for(1)).unwrap();
    let multi = run_campaign(&manifest, &config_for(workers)).unwrap();
    assert_eq!(
        baseline.rendered_report, multi.rendered_report,
        "1-worker and {workers}-worker reports must be byte-identical"
    );

    let reps = 5;
    let one_us = timed_min(reps, || {
        std::hint::black_box(run_campaign(&manifest, &config_for(1)).unwrap());
    });
    let multi_us = timed_min(reps, || {
        std::hint::black_box(run_campaign(&manifest, &config_for(workers)).unwrap());
    });

    // Journal overhead: the same multi-worker sweep, but with every event
    // CRC-framed and written through the batch-fsync journal.
    let journal_path = std::env::temp_dir().join(format!(
        "selfstab-bench-journal-{}.jsonl",
        std::process::id()
    ));
    let journaled_config = CampaignConfig {
        workers,
        journal_path: Some(journal_path.clone()),
        fsync: FsyncPolicy::Batch,
        ..CampaignConfig::default()
    };
    let journaled = run_campaign(&manifest, &journaled_config).unwrap();
    assert_eq!(
        baseline.rendered_report, journaled.rendered_report,
        "journaling must not change the report"
    );
    let journaled_us = timed_min(reps, || {
        std::hint::black_box(run_campaign(&manifest, &journaled_config).unwrap());
    });
    let journal_bytes = std::fs::metadata(&journal_path)
        .map(|m| m.len())
        .unwrap_or(0);
    std::fs::remove_file(&journal_path).ok();
    let journal_overhead = journaled_us / multi_us;

    // Telemetry overhead: the same multi-worker sweep with per-job phase
    // spans, engine counters and pool stats collected. Its report must
    // still be byte-identical, and its metrics document donates the
    // campaign-wide phase totals recorded below.
    let telemetry_config = CampaignConfig {
        workers,
        telemetry: true,
        ..CampaignConfig::default()
    };
    let metered = run_campaign(&manifest, &telemetry_config).unwrap();
    assert_eq!(
        baseline.rendered_report, metered.rendered_report,
        "telemetry must not change the report"
    );
    let metrics = metered.metrics.expect("telemetry produces metrics");
    let phase_us = |name: &str| metrics["phase_totals_us"][name].as_u64().unwrap_or(0);
    let (scan_us, dfs_us, parse_us, local_us) = (
        phase_us("fused_scan"),
        phase_us("livelock_dfs"),
        phase_us("parse"),
        phase_us("local_analysis"),
    );
    let telemetry_us = timed_min(reps, || {
        std::hint::black_box(run_campaign(&manifest, &telemetry_config).unwrap());
    });
    let telemetry_overhead = telemetry_us / multi_us;

    let speedup = one_us / multi_us;
    let jobs_per_s_one = jobs as f64 / (one_us / 1e6);
    let jobs_per_s_multi = jobs as f64 / (multi_us / 1e6);
    println!(
        "campaign_throughput {} specs × K=2..=9 = {jobs} jobs: 1 worker {} | {workers} workers {} ({speedup:.1}x) | journaled {} ({journal_overhead:.2}x, {journal_bytes} B) | telemetry {} ({telemetry_overhead:.2}x)",
        manifest.specs.len(),
        fmt_us(one_us),
        fmt_us(multi_us),
        fmt_us(journaled_us),
        fmt_us(telemetry_us),
    );
    if cores < workers {
        println!(
            "note: {cores} hardware core(s) for {workers} workers — pool \
             speedups are measured degenerate here"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"campaign_throughput/specs_corpus\",\n  \
         \"specs\": {},\n  \"k_from\": 2,\n  \"k_to\": 9,\n  \"jobs\": {jobs},\n  \
         \"states_swept\": {},\n  \
         \"one_worker_us\": {one_us:.1},\n  \"multi_worker_us\": {multi_us:.1},\n  \
         \"workers\": {workers},\n  \"cores\": {cores},\n  \
         \"jobs_per_second_one_worker\": {jobs_per_s_one:.1},\n  \
         \"jobs_per_second_multi_worker\": {jobs_per_s_multi:.1},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"journaled_multi_worker_us\": {journaled_us:.1},\n  \
         \"journal_overhead\": {journal_overhead:.3},\n  \
         \"journal_bytes\": {journal_bytes},\n  \
         \"telemetry_multi_worker_us\": {telemetry_us:.1},\n  \
         \"telemetry_overhead\": {telemetry_overhead:.3},\n  \
         \"phase_totals_us\": {{\"parse\": {parse_us}, \"local_analysis\": {local_us}, \
         \"fused_scan\": {scan_us}, \"livelock_dfs\": {dfs_us}}},\n  \
         \"note\": \"timings from a {cores}-core container; pool speedups are hardware-bound\",\n  \
         \"reports_byte_identical\": true\n}}\n",
        manifest.specs.len(),
        baseline.report["states_swept"],
    );
    let out = root.join("BENCH_campaign.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("could not write {}: {e}", out.display());
    }
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_campaign_throughput
}
criterion_main!(benches);

//! Experiment E12 (synthesis): the Section 6 local synthesizer runs once
//! for all ring sizes; the STSyn-like global baseline pays `d^K` per size
//! it verifies at.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_bench::timing::{fmt_us, timed_min};
use selfstab_global::CancelToken;
use selfstab_protocol::{Domain, Locality, Protocol};
use selfstab_protocols::{agreement, coloring, sum_not_two};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};
use selfstab_telemetry::{Phase, PhaseTimes, SynthesisCounters};

fn bench_local_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_local");
    let cases = [
        ("agreement", agreement::binary_agreement_empty()),
        ("sum_not_two", sum_not_two::sum_not_two_empty()),
        ("three_coloring", coloring::three_coloring_empty()),
    ];
    for (name, p) in &cases {
        g.bench_function(*name, |b| {
            b.iter(|| LocalSynthesizer::default().synthesize(p))
        });
    }
    g.finish();
}

fn bench_global_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_global_baseline");
    g.sample_size(10);
    let p = sum_not_two::sum_not_two_empty();
    for k in [3usize, 5, 7, 9] {
        g.bench_with_input(BenchmarkId::new("sum_not_two", k), &k, |b, &k| {
            b.iter(|| {
                GlobalSynthesizer::new(k, SynthesisConfig::default())
                    .synthesize(&p)
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// A sum-not-three analog of the paper's §6.2 protocol over a 4-valued
/// domain: 4 forced resolve states with 3 self-disabling candidates each,
/// i.e. a 3^4 = 81-combination search space where each candidate pays a
/// full Theorem 4.2 + 5.14 verification (~ms) — large enough for the
/// parallel scan and the telemetry tax to be measurable, small enough to
/// finish in seconds. (A 5-valued domain is out of reach for a different
/// reason: the empty protocol's induced deadlock graph is a 25-node
/// de Bruijn graph whose simple-cycle enumeration blows the cycle budget,
/// and every truncation-derived hitting set then fails the exact SCC
/// re-verification.)
fn sum_not_three_empty() -> Protocol {
    Protocol::builder(
        "sum-not-three",
        Domain::numeric("x", 4),
        Locality::unidirectional(),
    )
    .legit("x[r] + x[r-1] != 3")
    .expect("static legit predicate parses")
    .build()
    .expect("static protocol builds")
}

/// Sequential-vs-parallel synthesis and the telemetry tax, recorded to
/// `BENCH_synthesis.json` at the repo root. The deterministic-merge
/// contract is asserted (identical outcomes for every thread count)
/// before any timing is reported, and metering must stay within 2% of the
/// unmetered engine — counters are flushed once per run, never inside the
/// candidate loop.
fn bench_synthesis_comparison(_c: &mut Criterion) {
    let p = sum_not_three_empty();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let config = |threads| SynthesisConfig {
        max_solutions: usize::MAX,
        max_combinations: usize::MAX,
        threads,
        ..SynthesisConfig::default()
    };
    let sequential = LocalSynthesizer::new(config(1));
    let parallel = LocalSynthesizer::new(config(threads));
    let token = CancelToken::new();

    // The engines must agree before their timings mean anything.
    let baseline = sequential.synthesize(&p).unwrap();
    assert!(!baseline.truncated(), "workload must be fully enumerated");
    assert_eq!(baseline, parallel.synthesize(&p).unwrap());
    let counters = SynthesisCounters::new();
    assert_eq!(
        baseline,
        parallel
            .synthesize_metered(&p, &token, Some(&counters), None)
            .unwrap()
    );

    // Best-of-N: interference on a shared host only adds time, so the
    // fastest observed run is the honest per-engine cost.
    let reps = 5;
    let seq_us = timed_min(reps, || {
        std::hint::black_box(sequential.synthesize(&p).unwrap());
    });
    let par_us = timed_min(reps, || {
        std::hint::black_box(parallel.synthesize(&p).unwrap());
    });
    let disabled_us = timed_min(reps, || {
        std::hint::black_box(
            sequential
                .synthesize_metered(&p, &token, None, None)
                .unwrap(),
        );
    });
    let enabled_us = timed_min(reps, || {
        std::hint::black_box(
            sequential
                .synthesize_metered(&p, &token, Some(&counters), None)
                .unwrap(),
        );
    });
    let overhead = enabled_us / disabled_us;
    assert!(
        overhead < 1.02,
        "telemetry overhead {overhead:.3}x exceeds the 2% budget \
         (enabled {enabled_us:.1}us vs disabled {disabled_us:.1}us)"
    );

    // One fully metered run, as `--json` callers would drive it.
    let phases = PhaseTimes::new();
    let _ = sequential
        .synthesize_metered(&p, &token, Some(&counters), Some(&phases))
        .unwrap();
    let snap = phases.snapshot();

    let speedup = seq_us / par_us;
    println!(
        "synthesis_comparison sum-not-three (d=4, {} combinations): \
         sequential {} | {threads} thread(s) {} ({speedup:.2}x) | \
         telemetry disabled {} enabled {} ({overhead:.3}x)",
        baseline.combinations_tried(),
        fmt_us(seq_us),
        fmt_us(par_us),
        fmt_us(disabled_us),
        fmt_us(enabled_us),
    );
    if threads == 1 {
        println!(
            "note: 1 hardware core available — the parallel engine and any \
             thread-count speedups are measured degenerate here"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"synthesis_scaling/synthesis_comparison\",\n  \
         \"protocol\": \"sum-not-three\",\n  \"domain_size\": 4,\n  \
         \"combinations\": {},\n  \"solutions\": {},\n  \
         \"sequential_us\": {seq_us:.1},\n  \"parallel_us\": {par_us:.1},\n  \
         \"threads\": {threads},\n  \"speedup_parallel\": {speedup:.2},\n  \
         \"telemetry_disabled_us\": {disabled_us:.1},\n  \
         \"telemetry_enabled_us\": {enabled_us:.1},\n  \
         \"telemetry_enabled_overhead\": {overhead:.3},\n  \
         \"phase_totals_us\": {{\"synthesis\": {}}},\n  \
         \"note\": \"timings from a {threads}-core container; parallel speedups are hardware-bound\"\n}}\n",
        baseline.combinations_tried(),
        baseline.solutions().len(),
        snap.micros[Phase::Synthesis.index()],
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_synthesis.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("could not write {}: {e}", out.display());
    }
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_local_synthesis, bench_global_baseline, bench_synthesis_comparison
}
criterion_main!(benches);

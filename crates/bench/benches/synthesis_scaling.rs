//! Experiment E12 (synthesis): the Section 6 local synthesizer runs once
//! for all ring sizes; the STSyn-like global baseline pays `d^K` per size
//! it verifies at.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_bench::timing::{fmt_us, timed_min};
use selfstab_global::CancelToken;
use selfstab_protocol::{Domain, Locality, Protocol};
use selfstab_protocols::{agreement, coloring, sum_not_two};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};
use selfstab_telemetry::{Phase, PhaseTimes, SynthesisCounters};

fn bench_local_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_local");
    let cases = [
        ("agreement", agreement::binary_agreement_empty()),
        ("sum_not_two", sum_not_two::sum_not_two_empty()),
        ("three_coloring", coloring::three_coloring_empty()),
    ];
    for (name, p) in &cases {
        g.bench_function(*name, |b| {
            b.iter(|| LocalSynthesizer::default().synthesize(p))
        });
    }
    g.finish();
}

fn bench_global_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_global_baseline");
    g.sample_size(10);
    let p = sum_not_two::sum_not_two_empty();
    for k in [3usize, 5, 7, 9] {
        g.bench_with_input(BenchmarkId::new("sum_not_two", k), &k, |b, &k| {
            b.iter(|| {
                GlobalSynthesizer::new(k, SynthesisConfig::default())
                    .synthesize(&p)
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// A sum-not-three analog of the paper's §6.2 protocol over a 4-valued
/// domain: 4 forced resolve states with 3 self-disabling candidates each,
/// i.e. a 3^4 = 81-combination search space where each candidate pays a
/// full Theorem 4.2 + 5.14 verification (~ms) — large enough for the
/// parallel scan and the telemetry tax to be measurable, small enough to
/// finish in seconds. (A 5-valued domain is out of reach for a different
/// reason: the empty protocol's induced deadlock graph is a 25-node
/// de Bruijn graph whose simple-cycle enumeration blows the cycle budget,
/// and every truncation-derived hitting set then fails the exact SCC
/// re-verification.)
fn sum_not_three_empty() -> Protocol {
    Protocol::builder(
        "sum-not-three",
        Domain::numeric("x", 4),
        Locality::unidirectional(),
    )
    .legit("x[r] + x[r-1] != 3")
    .expect("static legit predicate parses")
    .build()
    .expect("static protocol builds")
}

/// A 5-coloring analog over a 5-valued domain: the lattice-pruning
/// showcase. Every candidate combination is trail-rejected, so early
/// rejections install cuts whose upward cones doom a large share of the
/// remaining 4^5 = 1024-combination lattice — a non-trivial cut-set
/// workload where the pruned engine verifies a fraction of the
/// combinations the full engine pays for.
fn five_coloring_empty() -> Protocol {
    Protocol::builder(
        "five-coloring",
        Domain::numeric("x", 5),
        Locality::unidirectional(),
    )
    .legit("x[r] != x[r-1]")
    .expect("static legit predicate parses")
    .build()
    .expect("static protocol builds")
}

/// Sequential-vs-parallel synthesis and the telemetry tax, recorded to
/// `BENCH_synthesis.json` at the repo root. The deterministic-merge
/// contract is asserted (identical outcomes for every thread count)
/// before any timing is reported, and metering must stay within 2% of the
/// unmetered engine — counters are flushed once per run, never inside the
/// candidate loop.
fn bench_synthesis_comparison(_c: &mut Criterion) {
    let p = sum_not_three_empty();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let config = |threads| SynthesisConfig {
        max_solutions: usize::MAX,
        max_combinations: usize::MAX,
        threads,
        ..SynthesisConfig::default()
    };
    let sequential = LocalSynthesizer::new(config(1));
    let parallel = LocalSynthesizer::new(config(threads));
    let token = CancelToken::new();

    // The engines must agree before their timings mean anything.
    let baseline = sequential.synthesize(&p).unwrap();
    assert!(!baseline.truncated(), "workload must be fully enumerated");
    assert_eq!(baseline, parallel.synthesize(&p).unwrap());
    let counters = SynthesisCounters::new();
    assert_eq!(
        baseline,
        parallel
            .synthesize_metered(&p, &token, Some(&counters), None)
            .unwrap()
    );

    // Best-of-N: interference on a shared host only adds time, so the
    // fastest observed run is the honest per-engine cost.
    let reps = 5;
    let seq_us = timed_min(reps, || {
        std::hint::black_box(sequential.synthesize(&p).unwrap());
    });
    let par_us = timed_min(reps, || {
        std::hint::black_box(parallel.synthesize(&p).unwrap());
    });
    let disabled_us = timed_min(reps, || {
        std::hint::black_box(
            sequential
                .synthesize_metered(&p, &token, None, None)
                .unwrap(),
        );
    });
    let enabled_us = timed_min(reps, || {
        std::hint::black_box(
            sequential
                .synthesize_metered(&p, &token, Some(&counters), None)
                .unwrap(),
        );
    });
    let overhead = enabled_us / disabled_us;
    assert!(
        overhead < 1.02,
        "telemetry overhead {overhead:.3}x exceeds the 2% budget \
         (enabled {enabled_us:.1}us vs disabled {disabled_us:.1}us)"
    );

    // One fully metered run, as `--json` callers would drive it.
    let phases = PhaseTimes::new();
    let _ = sequential
        .synthesize_metered(&p, &token, Some(&counters), Some(&phases))
        .unwrap();
    let snap = phases.snapshot();

    let speedup = seq_us / par_us;
    println!(
        "synthesis_comparison sum-not-three (d=4, {} combinations): \
         sequential {} | {threads} thread(s) {} ({speedup:.2}x) | \
         telemetry disabled {} enabled {} ({overhead:.3}x)",
        baseline.combinations_tried(),
        fmt_us(seq_us),
        fmt_us(par_us),
        fmt_us(disabled_us),
        fmt_us(enabled_us),
    );
    if threads == 1 {
        println!(
            "note: 1 hardware core available — the parallel engine and any \
             thread-count speedups are measured degenerate here"
        );
    }

    // Lattice pruning, pruned vs full, on the cut-heavy 5-coloring
    // workload. Soundness first: the pruned outcome must be identical to
    // the reference full enumeration before the work ratio means
    // anything. "Verified" candidates are the combinations the engine
    // actually paid a livelock analysis for — the pruned engine recounts
    // cone-skipped candidates into `combinations_tried`, so the
    // difference against `candidates_skipped` is exactly the paid work.
    let coloring = five_coloring_empty();
    let full_config = SynthesisConfig {
        prune: false,
        ..config(1)
    };
    let pruned_config = config(1);
    let full_engine = LocalSynthesizer::new(full_config);
    let pruned_engine = LocalSynthesizer::new(pruned_config);
    let full_counters = SynthesisCounters::new();
    let full_outcome = full_engine
        .synthesize_metered(&coloring, &token, Some(&full_counters), None)
        .unwrap();
    let pruned_counters = SynthesisCounters::new();
    let pruned_outcome = pruned_engine
        .synthesize_metered(&coloring, &token, Some(&pruned_counters), None)
        .unwrap();
    assert_eq!(
        full_outcome, pruned_outcome,
        "pruning must be invisible in the outcome"
    );
    let full_snap = full_counters.snapshot();
    let pruned_snap = pruned_counters.snapshot();
    let verified_full = full_snap.combinations_tried;
    let verified_pruned = pruned_snap
        .combinations_tried
        .saturating_sub(pruned_snap.candidates_skipped);
    let prune_ratio = verified_full as f64 / verified_pruned.max(1) as f64;
    assert!(
        prune_ratio >= 2.0,
        "expected the cut-set to halve verification work, got \
         {verified_full} full vs {verified_pruned} pruned ({prune_ratio:.2}x)"
    );
    let full_us = timed_min(reps, || {
        std::hint::black_box(full_engine.synthesize(&coloring).unwrap());
    });
    let pruned_us = timed_min(reps, || {
        std::hint::black_box(pruned_engine.synthesize(&coloring).unwrap());
    });
    println!(
        "synthesis_pruning five-coloring (d=5): verified {verified_full} full \
         vs {verified_pruned} pruned ({prune_ratio:.2}x fewer), \
         {} cone cut(s), full {} pruned {}",
        pruned_snap.cones_cut,
        fmt_us(full_us),
        fmt_us(pruned_us),
    );

    let json = format!(
        "{{\n  \"bench\": \"synthesis_scaling/synthesis_comparison\",\n  \
         \"protocol\": \"sum-not-three\",\n  \"domain_size\": 4,\n  \
         \"combinations\": {},\n  \"solutions\": {},\n  \
         \"sequential_us\": {seq_us:.1},\n  \"parallel_us\": {par_us:.1},\n  \
         \"threads\": {threads},\n  \"speedup_parallel\": {speedup:.2},\n  \
         \"telemetry_disabled_us\": {disabled_us:.1},\n  \
         \"telemetry_enabled_us\": {enabled_us:.1},\n  \
         \"telemetry_enabled_overhead\": {overhead:.3},\n  \
         \"phase_totals_us\": {{\"synthesis\": {}}},\n  \
         \"prune\": {{\n    \"workload\": \"five-coloring\",\n    \
         \"domain_size\": 5,\n    \
         \"verified_full\": {verified_full},\n    \
         \"verified_pruned\": {verified_pruned},\n    \
         \"prune_ratio\": {prune_ratio:.2},\n    \
         \"cones_cut\": {},\n    \
         \"candidates_skipped\": {},\n    \
         \"delta_reuses\": {},\n    \
         \"full_us\": {full_us:.1},\n    \"pruned_us\": {pruned_us:.1}\n  }},\n  \
         \"note\": \"timings from a {threads}-core container; parallel speedups are hardware-bound\"\n}}\n",
        baseline.combinations_tried(),
        baseline.solutions().len(),
        snap.micros[Phase::Synthesis.index()],
        pruned_snap.cones_cut,
        pruned_snap.candidates_skipped,
        pruned_snap.delta_reuses,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_synthesis.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("could not write {}: {e}", out.display());
    }

    // Persistent registry row, gated on SELFSTAB_REGISTRY like the
    // verify-scaling bench. The deterministic work counts (and the
    // higher-is-better prune_ratio) land in `kpis`; timings are reported,
    // never gated on.
    if let Ok(registry) = std::env::var("SELFSTAB_REGISTRY") {
        use selfstab_core::registry_row::{append_row, RegistryRow};
        use serde_json::json;
        let row = RegistryRow {
            source: "bench".to_owned(),
            spec: "five_coloring".to_owned(),
            kind: "synthesis_scaling".to_owned(),
            k: "all".to_owned(),
            knobs: json!({"domain_size": 5, "reps": reps as u64}),
            kpis: json!({
                "verified_full": verified_full,
                "verified_pruned": verified_pruned,
                "prune_ratio": prune_ratio,
                "cones_cut": pruned_snap.cones_cut,
                "candidates_skipped": pruned_snap.candidates_skipped,
                "full_us": full_us,
                "pruned_us": pruned_us,
            }),
            meta: RegistryRow::meta_now((full_us + pruned_us) as u64),
        };
        let path = std::path::Path::new(&registry);
        if let Err(e) = append_row(path, &row) {
            eprintln!("could not append to {}: {e}", path.display());
        } else {
            println!("appended bench registry row to {}", path.display());
        }
    }
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_local_synthesis, bench_global_baseline, bench_synthesis_comparison
}
criterion_main!(benches);

//! Experiment E12 (synthesis): the Section 6 local synthesizer runs once
//! for all ring sizes; the STSyn-like global baseline pays `d^K` per size
//! it verifies at.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_protocols::{agreement, coloring, sum_not_two};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};

fn bench_local_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_local");
    let cases = [
        ("agreement", agreement::binary_agreement_empty()),
        ("sum_not_two", sum_not_two::sum_not_two_empty()),
        ("three_coloring", coloring::three_coloring_empty()),
    ];
    for (name, p) in &cases {
        g.bench_function(*name, |b| {
            b.iter(|| LocalSynthesizer::default().synthesize(p))
        });
    }
    g.finish();
}

fn bench_global_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_global_baseline");
    g.sample_size(10);
    let p = sum_not_two::sum_not_two_empty();
    for k in [3usize, 5, 7, 9] {
        g.bench_with_input(BenchmarkId::new("sum_not_two", k), &k, |b, &k| {
            b.iter(|| {
                GlobalSynthesizer::new(k, SynthesisConfig::default())
                    .synthesize(&p)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_local_synthesis, bench_global_baseline
}
criterion_main!(benches);

//! Experiment E12 (verification): the local method's cost is independent
//! of the ring size, while explicit-state global checking grows as `d^K`.
//! This bench regenerates the crossover table of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_core::report::StabilizationReport;
use selfstab_global::{check, RingInstance};
use selfstab_protocols::{agreement, sum_not_two};

fn bench_local_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_local");
    let cases = [
        ("agreement_t01", agreement::binary_agreement_one_sided()),
        ("sum_not_two", sum_not_two::sum_not_two_solution()),
        ("max_agreement5", agreement::max_agreement(5)),
    ];
    for (name, p) in &cases {
        g.bench_function(*name, |b| b.iter(|| StabilizationReport::analyze(p)));
    }
    g.finish();
}

fn bench_global_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_global");
    g.sample_size(10);
    let p = agreement::binary_agreement_one_sided();
    for k in [6usize, 10, 14, 18] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("agreement_t01", k), &ring, |b, ring| {
            b.iter(|| check::ConvergenceReport::check(ring));
        });
    }
    let p = sum_not_two::sum_not_two_solution();
    for k in [4usize, 6, 8, 10] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("sum_not_two", k), &ring, |b, ring| {
            b.iter(|| check::ConvergenceReport::check(ring));
        });
    }
    g.finish();
}

fn bench_livelock_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("livelock_detection_global");
    g.sample_size(10);
    let p = agreement::binary_agreement_both();
    for k in [6usize, 10, 14] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("agreement_both", k), &ring, |b, ring| {
            b.iter(|| check::find_livelock(ring));
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_local_verification,
    bench_global_verification,
    bench_livelock_detection
}
criterion_main!(benches);

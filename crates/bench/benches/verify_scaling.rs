//! Experiment E12 (verification): the local method's cost is independent
//! of the ring size, while explicit-state global checking grows as `d^K`.
//! This bench regenerates the crossover table of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_bench::timing::{fmt_us, timed_min};
use selfstab_core::report::StabilizationReport;
use selfstab_global::engine::{find_livelock_metered, fused_scan_metered, CancelToken};
use selfstab_global::{check, EngineConfig, RingInstance};
use selfstab_protocols::{agreement, sum_not_two};
use selfstab_telemetry::{EngineCounters, Phase, PhaseTimes};

fn bench_local_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_local");
    let cases = [
        ("agreement_t01", agreement::binary_agreement_one_sided()),
        ("sum_not_two", sum_not_two::sum_not_two_solution()),
        ("max_agreement5", agreement::max_agreement(5)),
    ];
    for (name, p) in &cases {
        g.bench_function(*name, |b| b.iter(|| StabilizationReport::analyze(p)));
    }
    g.finish();
}

fn bench_global_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_global");
    g.sample_size(10);
    let p = agreement::binary_agreement_one_sided();
    for k in [6usize, 10, 14, 18] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("agreement_t01", k), &ring, |b, ring| {
            b.iter(|| check::ConvergenceReport::check(ring));
        });
    }
    let p = sum_not_two::sum_not_two_solution();
    for k in [4usize, 6, 8, 10] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("sum_not_two", k), &ring, |b, ring| {
            b.iter(|| check::ConvergenceReport::check(ring));
        });
    }
    g.finish();
}

fn bench_livelock_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("livelock_detection_global");
    g.sample_size(10);
    let p = agreement::binary_agreement_both();
    for k in [6usize, 10, 14] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("agreement_both", k), &ring, |b, ring| {
            b.iter(|| check::find_livelock(ring));
        });
    }
    g.finish();
}

/// The seed's sequential formulation of the full convergence check: three
/// separate sweeps (legitimacy count, closure violations materialized,
/// illegitimate deadlocks) plus the livelock DFS — with legitimacy
/// evaluated the way the seed's `RingInstance::is_legit` did it, by running
/// the local predicate over every process's freshly derived window (one
/// `pow`-based `local_state_of` per digit). This is the exact work
/// `ConvergenceReport::check` performed before the fused engine and its
/// memoized class tables existed.
fn seed_style_check(
    p: &selfstab_protocol::Protocol,
    ring: &RingInstance,
) -> (u64, usize, bool, bool) {
    let k = ring.ring_size();
    let legit = |s: selfstab_global::GlobalStateId| {
        (0..k).all(|i| p.legit().holds(ring.local_state_of(s, i)))
    };
    let legit_count = ring.space().ids().filter(|&s| legit(s)).count() as u64;
    let closure = check::closure_violations_where(ring, legit);
    let deadlocks = check::illegitimate_deadlocks_where(ring, legit);
    let livelock = check::find_livelock_where(ring, legit);
    (
        legit_count,
        deadlocks.len(),
        closure.is_empty(),
        livelock.is_none(),
    )
}

/// Seed-vs-fused comparison at K=10, d=3 (59049 states), recording the
/// measured speedups to `BENCH_verify_scaling.json` at the repo root.
fn bench_engine_comparison(_c: &mut Criterion) {
    let p = sum_not_two::sum_not_two_solution();
    let k = 10;
    let ring = RingInstance::symmetric(&p, k).unwrap();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // The engines must agree before their timings mean anything.
    let seed = seed_style_check(&p, &ring);
    for config in [
        EngineConfig::sequential(),
        EngineConfig::with_threads(threads),
    ] {
        let r = check::ConvergenceReport::check_with(&ring, &config);
        assert_eq!(seed.0, r.legit_count);
        assert_eq!(seed.1, r.illegitimate_deadlocks.len());
        assert_eq!(seed.2, r.closure_violation.is_none());
        assert_eq!(seed.3, r.livelock.is_none());
    }

    // Best-of-N: interference on a shared host only adds time, so the
    // fastest observed run is the honest per-engine cost.
    let reps = 5;
    let seed_us = timed_min(reps, || {
        std::hint::black_box(seed_style_check(&p, &ring));
    });
    let fused_seq_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(
            &ring,
            &EngineConfig::sequential(),
        ));
    });
    let fused_par_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(
            &ring,
            &EngineConfig::with_threads(threads),
        ));
    });

    // Telemetry cost, both ways. Disabled (`counters: None`) must be free:
    // the metered entry points ARE the engine now, so any overhead here is
    // overhead every caller pays. Enabled flushes per-chunk locals into
    // atomics — the contract is "counters cost nothing inside the loop".
    let seq = EngineConfig::sequential();
    let token = CancelToken::new();
    let full_check = |counters: Option<&EngineCounters>| {
        let scan = fused_scan_metered(&ring, &seq, &token, counters).expect("no deadline");
        let live = find_livelock_metered(&ring, &scan, &token, counters).expect("no deadline");
        (scan, live)
    };
    let disabled_us = timed_min(reps, || {
        std::hint::black_box(full_check(None));
    });
    let counters = EngineCounters::new();
    let enabled_us = timed_min(reps, || {
        std::hint::black_box(full_check(Some(&counters)));
    });
    let disabled_overhead = disabled_us / fused_seq_us;
    let enabled_overhead = enabled_us / disabled_us;

    // Phase totals for one fully metered check, as `sweep --metrics`
    // would attribute them.
    let phases = PhaseTimes::new();
    let scan = phases.time(Phase::FusedScan, || {
        fused_scan_metered(&ring, &seq, &token, Some(&counters)).expect("no deadline")
    });
    let _ = phases.time(Phase::LivelockDfs, || {
        find_livelock_metered(&ring, &scan, &token, Some(&counters)).expect("no deadline")
    });
    let snap = phases.snapshot();

    let speedup_seq = seed_us / fused_seq_us;
    let speedup_par = seed_us / fused_par_us;
    println!(
        "engine_comparison sum_not_two K={k}: seed {} | fused(seq) {} ({speedup_seq:.1}x) | \
         fused({threads} threads) {} ({speedup_par:.1}x)",
        fmt_us(seed_us),
        fmt_us(fused_seq_us),
        fmt_us(fused_par_us),
    );
    println!(
        "telemetry: disabled {} ({disabled_overhead:.3}x of plain engine) | \
         enabled {} ({enabled_overhead:.3}x of disabled)",
        fmt_us(disabled_us),
        fmt_us(enabled_us),
    );
    if threads == 1 {
        println!(
            "note: 1 hardware core available — the parallel engine and any \
             thread-count speedups are measured degenerate here"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"verify_scaling/engine_comparison\",\n  \"protocol\": \"sum_not_two\",\n  \
         \"ring_size\": {k},\n  \"domain_size\": 3,\n  \"states\": {},\n  \
         \"seed_sequential_us\": {seed_us:.1},\n  \"fused_sequential_us\": {fused_seq_us:.1},\n  \
         \"fused_parallel_us\": {fused_par_us:.1},\n  \"threads\": {threads},\n  \
         \"speedup_fused_sequential\": {speedup_seq:.2},\n  \"speedup_fused_parallel\": {speedup_par:.2},\n  \
         \"telemetry_disabled_us\": {disabled_us:.1},\n  \"telemetry_enabled_us\": {enabled_us:.1},\n  \
         \"telemetry_disabled_overhead\": {disabled_overhead:.3},\n  \
         \"telemetry_enabled_overhead\": {enabled_overhead:.3},\n  \
         \"phase_totals_us\": {{\"fused_scan\": {}, \"livelock_dfs\": {}}},\n  \
         \"note\": \"timings from a {threads}-core container; parallel speedups are hardware-bound\"\n}}\n",
        ring.space().len(),
        snap.micros[Phase::FusedScan.index()],
        snap.micros[Phase::LivelockDfs.index()],
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_verify_scaling.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("could not write {}: {e}", out.display());
    }
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_local_verification,
    bench_global_verification,
    bench_livelock_detection,
    bench_engine_comparison
}
criterion_main!(benches);

//! Experiment E12 (verification): the local method's cost is independent
//! of the ring size, while explicit-state global checking grows as `d^K`.
//! This bench regenerates the crossover table of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_bench::timing::{fmt_us, timed_min};
use selfstab_core::report::StabilizationReport;
use selfstab_global::engine::{find_livelock_metered, fused_scan_metered, CancelToken};
use selfstab_global::{check, EngineConfig, RingInstance, SymmetryMode};
use selfstab_protocols::{agreement, sum_not_two};
use selfstab_telemetry::{EngineCounters, Phase, PhaseTimes};

fn bench_local_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_local");
    let cases = [
        ("agreement_t01", agreement::binary_agreement_one_sided()),
        ("sum_not_two", sum_not_two::sum_not_two_solution()),
        ("max_agreement5", agreement::max_agreement(5)),
    ];
    for (name, p) in &cases {
        g.bench_function(*name, |b| b.iter(|| StabilizationReport::analyze(p)));
    }
    g.finish();
}

fn bench_global_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_global");
    g.sample_size(10);
    let p = agreement::binary_agreement_one_sided();
    for k in [6usize, 10, 14, 18] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("agreement_t01", k), &ring, |b, ring| {
            b.iter(|| check::ConvergenceReport::check(ring));
        });
    }
    let p = sum_not_two::sum_not_two_solution();
    for k in [4usize, 6, 8, 10] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("sum_not_two", k), &ring, |b, ring| {
            b.iter(|| check::ConvergenceReport::check(ring));
        });
    }
    g.finish();
}

fn bench_livelock_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("livelock_detection_global");
    g.sample_size(10);
    let p = agreement::binary_agreement_both();
    for k in [6usize, 10, 14] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("agreement_both", k), &ring, |b, ring| {
            b.iter(|| check::find_livelock(ring));
        });
    }
    g.finish();
}

/// The seed's sequential formulation of the full convergence check: three
/// separate sweeps (legitimacy count, closure violations materialized,
/// illegitimate deadlocks) plus the livelock DFS — with legitimacy
/// evaluated the way the seed's `RingInstance::is_legit` did it, by running
/// the local predicate over every process's freshly derived window (one
/// `pow`-based `local_state_of` per digit). This is the exact work
/// `ConvergenceReport::check` performed before the fused engine and its
/// memoized class tables existed.
fn seed_style_check(
    p: &selfstab_protocol::Protocol,
    ring: &RingInstance,
) -> (u64, usize, bool, bool) {
    let k = ring.ring_size();
    let legit = |s: selfstab_global::GlobalStateId| {
        (0..k).all(|i| p.legit().holds(ring.local_state_of(s, i)))
    };
    let legit_count = ring.space().ids().filter(|&s| legit(s)).count() as u64;
    let closure = check::closure_violations_where(ring, legit);
    let deadlocks = check::illegitimate_deadlocks_where(ring, legit);
    let livelock = check::find_livelock_where(ring, legit);
    (
        legit_count,
        deadlocks.len(),
        closure.is_empty(),
        livelock.is_none(),
    )
}

/// Seed-vs-fused-vs-reduced comparison at K=10, d=3 (59049 states),
/// recording the measured speedups to `BENCH_verify_scaling.json` at the
/// repo root. Symmetry modes are pinned explicitly — never `Auto` — so
/// the full-scan baseline cannot silently become a reduced scan (at this
/// size the crossover heuristic would pick `Reduced` on its own).
fn bench_engine_comparison(_c: &mut Criterion) {
    let p = sum_not_two::sum_not_two_solution();
    let k = 10;
    let ring = RingInstance::symmetric(&p, k).unwrap();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let full_seq = EngineConfig::sequential().with_symmetry(SymmetryMode::Full);
    let full_par = EngineConfig::with_threads(threads).with_symmetry(SymmetryMode::Full);
    let reduced_cfg = EngineConfig::sequential().with_symmetry(SymmetryMode::Reduced);

    // The engines must agree before their timings mean anything.
    let seed = seed_style_check(&p, &ring);
    for config in [&full_seq, &full_par, &reduced_cfg] {
        let r = check::ConvergenceReport::check_with(&ring, config);
        assert_eq!(seed.0, r.legit_count);
        assert_eq!(seed.1, r.illegitimate_deadlocks.len());
        assert_eq!(seed.2, r.closure_violation.is_none());
        assert_eq!(seed.3, r.livelock.is_none());
    }

    // Best-of-N: interference on a shared host only adds time, so the
    // fastest observed run is the honest per-engine cost.
    let reps = 5;
    let seed_us = timed_min(reps, || {
        std::hint::black_box(seed_style_check(&p, &ring));
    });
    let fused_seq_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(&ring, &full_seq));
    });
    let fused_par_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(&ring, &full_par));
    });
    let fused_reduced_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(&ring, &reduced_cfg));
    });

    // Telemetry cost, both ways. Disabled (`counters: None`) must be free:
    // the metered entry points ARE the engine now, so any overhead here is
    // overhead every caller pays. Enabled flushes per-chunk locals into
    // atomics — the contract is "counters cost nothing inside the loop".
    let seq = &full_seq;
    let token = CancelToken::new();
    let full_check = |counters: Option<&EngineCounters>| {
        let scan = fused_scan_metered(&ring, seq, &token, counters).expect("no deadline");
        let live = find_livelock_metered(&ring, &scan, &token, counters).expect("no deadline");
        (scan, live)
    };
    let disabled_us = timed_min(reps, || {
        std::hint::black_box(full_check(None));
    });
    let counters = EngineCounters::new();
    let enabled_us = timed_min(reps, || {
        std::hint::black_box(full_check(Some(&counters)));
    });
    let disabled_overhead = disabled_us / fused_seq_us;
    let enabled_overhead = enabled_us / disabled_us;

    // Phase totals for one fully metered check, as `sweep --metrics`
    // would attribute them — once per symmetry mode, so the scan and DFS
    // phases can be compared full-vs-reduced individually.
    let phases = PhaseTimes::new();
    let scan = phases.time(Phase::FusedScan, || {
        fused_scan_metered(&ring, seq, &token, Some(&counters)).expect("no deadline")
    });
    let _ = phases.time(Phase::LivelockDfs, || {
        find_livelock_metered(&ring, &scan, &token, Some(&counters)).expect("no deadline")
    });
    let snap = phases.snapshot();
    let phases_red = PhaseTimes::new();
    let scan_red = phases_red.time(Phase::FusedScan, || {
        fused_scan_metered(&ring, &reduced_cfg, &token, Some(&counters)).expect("no deadline")
    });
    let _ = phases_red.time(Phase::LivelockDfs, || {
        find_livelock_metered(&ring, &scan_red, &token, Some(&counters)).expect("no deadline")
    });
    let snap_red = phases_red.snapshot();
    let scan_full_us = snap.micros[Phase::FusedScan.index()] as f64;
    let scan_red_us = snap_red.micros[Phase::FusedScan.index()] as f64;
    let speedup_reduced_scan = scan_full_us / scan_red_us.max(1.0);

    // The raised ceiling: K=12 (531441 states) is where the full scan
    // stops being interactive; the reduced engine keeps it there.
    let k_max = 12;
    let ring_max = RingInstance::symmetric(&p, k_max).unwrap();
    let full_max = check::ConvergenceReport::check_with(&ring_max, &full_seq);
    let red_max = check::ConvergenceReport::check_with(&ring_max, &reduced_cfg);
    assert_eq!(full_max.legit_count, red_max.legit_count);
    assert_eq!(
        full_max.illegitimate_deadlocks,
        red_max.illegitimate_deadlocks
    );
    assert_eq!(full_max.livelock, red_max.livelock);
    let max_full_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(&ring_max, &full_seq));
    });
    let max_reduced_us = timed_min(reps, || {
        std::hint::black_box(check::ConvergenceReport::check_with(
            &ring_max,
            &reduced_cfg,
        ));
    });

    let speedup_seq = seed_us / fused_seq_us;
    let speedup_par = seed_us / fused_par_us;
    let speedup_reduced = seed_us / fused_reduced_us;
    let speedup_reduced_vs_full = fused_seq_us / fused_reduced_us;
    println!(
        "engine_comparison sum_not_two K={k}: seed {} | fused(seq) {} ({speedup_seq:.1}x) | \
         fused({threads} threads) {} ({speedup_par:.1}x) | reduced {} ({speedup_reduced:.1}x, \
         {speedup_reduced_vs_full:.1}x over full)",
        fmt_us(seed_us),
        fmt_us(fused_seq_us),
        fmt_us(fused_par_us),
        fmt_us(fused_reduced_us),
    );
    println!(
        "scan phase full {} vs reduced {} ({speedup_reduced_scan:.1}x); \
         K={k_max}: full {} vs reduced {} ({:.1}x)",
        fmt_us(scan_full_us),
        fmt_us(scan_red_us),
        fmt_us(max_full_us),
        fmt_us(max_reduced_us),
        max_full_us / max_reduced_us.max(1.0),
    );
    println!(
        "telemetry: disabled {} ({disabled_overhead:.3}x of plain engine) | \
         enabled {} ({enabled_overhead:.3}x of disabled)",
        fmt_us(disabled_us),
        fmt_us(enabled_us),
    );
    if threads == 1 {
        println!(
            "note: 1 hardware core available — the parallel engine and any \
             thread-count speedups are measured degenerate here"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"verify_scaling/engine_comparison\",\n  \"protocol\": \"sum_not_two\",\n  \
         \"ring_size\": {k},\n  \"domain_size\": 3,\n  \"states\": {},\n  \
         \"seed_sequential_us\": {seed_us:.1},\n  \"fused_sequential_us\": {fused_seq_us:.1},\n  \
         \"fused_parallel_us\": {fused_par_us:.1},\n  \"fused_reduced_us\": {fused_reduced_us:.1},\n  \
         \"threads\": {threads},\n  \
         \"speedup_fused_sequential\": {speedup_seq:.2},\n  \"speedup_fused_parallel\": {speedup_par:.2},\n  \
         \"speedup_reduced\": {speedup_reduced:.2},\n  \
         \"speedup_reduced_vs_full\": {speedup_reduced_vs_full:.2},\n  \
         \"speedup_reduced_scan\": {speedup_reduced_scan:.2},\n  \
         \"telemetry_disabled_us\": {disabled_us:.1},\n  \"telemetry_enabled_us\": {enabled_us:.1},\n  \
         \"telemetry_disabled_overhead\": {disabled_overhead:.3},\n  \
         \"telemetry_enabled_overhead\": {enabled_overhead:.3},\n  \
         \"phase_totals_us\": {{\"fused_scan\": {}, \"livelock_dfs\": {}}},\n  \
         \"reduced_phase_totals_us\": {{\"fused_scan\": {}, \"livelock_dfs\": {}}},\n  \
         \"max_k\": {{\"ring_size\": {k_max}, \"states\": {}, \"fused_full_us\": {max_full_us:.1}, \
         \"fused_reduced_us\": {max_reduced_us:.1}, \"speedup_reduced_vs_full\": {:.2}}},\n  \
         \"note\": \"timings from a {threads}-core container; parallel speedups are hardware-bound \
         and the reduced engine is sequential by construction\"\n}}\n",
        ring.space().len(),
        snap.micros[Phase::FusedScan.index()],
        snap.micros[Phase::LivelockDfs.index()],
        snap_red.micros[Phase::FusedScan.index()],
        snap_red.micros[Phase::LivelockDfs.index()],
        ring_max.space().len(),
        max_full_us / max_reduced_us.max(1.0),
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_verify_scaling.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("could not write {}: {e}", out.display());
    }

    // Persistent registry row, gated on SELFSTAB_REGISTRY so ad-hoc bench
    // runs do not pollute a committed registry. The headline numbers of
    // BENCH_verify_scaling.json land in `kpis` — timing KPIs, so `selfstab
    // registry diff` can reproduce the headline table from rows alone
    // (report them; gate CI on the deterministic `states` only).
    if let Ok(registry) = std::env::var("SELFSTAB_REGISTRY") {
        use selfstab_core::registry_row::{append_row, RegistryRow};
        use serde_json::json;
        let row = RegistryRow {
            source: "bench".to_owned(),
            spec: "sum_not_two".to_owned(),
            kind: "verify_scaling".to_owned(),
            k: format!("{k}..{k_max}"),
            knobs: json!({"domain_size": 3, "reps": reps as u64}),
            kpis: json!({
                "states": ring.space().len() as u64,
                "seed_sequential_us": seed_us,
                "fused_sequential_us": fused_seq_us,
                "fused_parallel_us": fused_par_us,
                "fused_reduced_us": fused_reduced_us,
                "speedup_fused_sequential": speedup_seq,
                "speedup_fused_parallel": speedup_par,
                "speedup_reduced": speedup_reduced,
                "speedup_reduced_vs_full": speedup_reduced_vs_full,
            }),
            meta: RegistryRow::meta_now((seed_us + fused_seq_us + fused_par_us) as u64),
        };
        let path = std::path::Path::new(&registry);
        if let Err(e) = append_row(path, &row) {
            eprintln!("could not append to {}: {e}", path.display());
        } else {
            println!("appended bench registry row to {}", path.display());
        }
    }
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_local_verification,
    bench_global_verification,
    bench_livelock_detection,
    bench_engine_comparison
}
criterion_main!(benches);

//! Micro-benchmarks of the explicit-state global engine: successor
//! generation, simulation throughput, and weak-convergence backward
//! reachability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_global::{check, RingInstance, Scheduler, Simulator};
use selfstab_protocols::{agreement, sum_not_two};

fn bench_successors(c: &mut Criterion) {
    let p = sum_not_two::sum_not_two_solution();
    let ring = RingInstance::symmetric(&p, 8).unwrap();
    c.bench_function("successors_full_sweep_3pow8", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for s in ring.space().ids() {
                count += ring.successors(s).len();
            }
            count
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation_convergence");
    let p = agreement::binary_agreement_one_sided();
    for k in [8usize, 12, 16] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::new("random_daemon", k), &ring, |b, ring| {
            let mut sim = Simulator::new(ring, 42).with_scheduler(Scheduler::Random);
            b.iter(|| {
                let s = sim.random_state();
                sim.run_from(s, 1_000_000)
            })
        });
    }
    g.finish();
}

fn bench_weak_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("weak_convergence");
    g.sample_size(10);
    let p = agreement::binary_agreement_both();
    for k in [8usize, 12] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &ring, |b, ring| {
            b.iter(|| check::weakly_converges(ring))
        });
    }
    g.finish();
}

fn bench_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_analysis");
    g.sample_size(10);
    let p = sum_not_two::sum_not_two_solution();
    for k in [5usize, 7] {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        g.bench_with_input(
            BenchmarkId::new("worst_case_recovery", k),
            &ring,
            |b, ring| b.iter(|| selfstab_global::faults::worst_case_recovery(ring)),
        );
        g.bench_with_input(BenchmarkId::new("fault_span_2", k), &ring, |b, ring| {
            b.iter(|| selfstab_global::faults::fault_span(ring, 2))
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_successors,
    bench_simulation,
    bench_weak_convergence,
    bench_faults
}
criterion_main!(benches);

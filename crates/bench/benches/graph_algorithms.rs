//! Micro-benchmarks of the graph substrate on RCG-shaped inputs
//! (ablation A1's components: SCC verdict vs Johnson witness enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selfstab_core::rcg::Rcg;
use selfstab_graph::{
    cycles::{simple_cycles, CycleBudget},
    hitting::minimal_hitting_sets,
    scc::{strongly_connected_components, vertices_on_cycles},
    DiGraph,
};
use selfstab_protocol::{Domain, Locality, Protocol};
use selfstab_protocols::matching;

fn rcg_graph(d: usize) -> DiGraph {
    let p = Protocol::builder("bench", Domain::numeric("x", d), Locality::bidirectional())
        .legit_all()
        .build()
        .unwrap();
    Rcg::build(&p).graph().clone()
}

fn bench_scc(c: &mut Criterion) {
    let mut g = c.benchmark_group("scc_on_rcg");
    for d in [3usize, 4, 5] {
        let graph = rcg_graph(d);
        g.bench_with_input(BenchmarkId::from_parameter(d), &graph, |b, graph| {
            b.iter(|| strongly_connected_components(graph));
        });
    }
    g.finish();
}

fn bench_verdict_vs_witnesses(c: &mut Criterion) {
    let mut g = c.benchmark_group("deadlock_check_components");
    let p = matching::matching_non_generalizable();
    let rcg = Rcg::build(&p);
    let induced = rcg.induced(&p.local_deadlocks());
    g.bench_function("scc_verdict", |b| b.iter(|| vertices_on_cycles(&induced)));
    g.bench_function("johnson_witnesses", |b| {
        b.iter(|| simple_cycles(&induced, CycleBudget::default()))
    });
    g.finish();
}

fn bench_hitting_sets(c: &mut Criterion) {
    let families: Vec<Vec<usize>> = (0..8)
        .map(|i| vec![i, (i + 1) % 10, (i + 3) % 10])
        .collect();
    c.bench_function("minimal_hitting_sets_8x3", |b| {
        b.iter(|| minimal_hitting_sets(&families, 1000, 10))
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_scc, bench_verdict_vs_witnesses, bench_hitting_sets
}
criterion_main!(benches);

//! Per-experiment reproduction tests: one test per figure/claim of the
//! paper (the E1–E13 index of DESIGN.md). Each test states what the paper
//! reports and checks what this implementation establishes — including the
//! two places where global model checking shows the paper's own claims to
//! be wrong (E3 and E11; see EXPERIMENTS.md).

use selfstab_core::{
    deadlock::DeadlockAnalysis, livelock::LivelockAnalysis, local_closure_check, ltg::Ltg,
    rcg::Rcg, report::StabilizationReport,
};
use selfstab_global::{
    check,
    schedule::{dependent_pairs, equivalent_schedules, Schedule},
    RingInstance,
};
use selfstab_protocol::LocalTransition;
use selfstab_protocols::{agreement, coloring, dijkstra, matching, sum_not_two};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};

/// E1 (Fig. 1): the RCG of maximal matching spans all 27 local states with
/// 3 right continuations each.
#[test]
fn e1_matching_rcg_structure() {
    let p = matching::matching_empty();
    let rcg = Rcg::build(&p);
    assert_eq!(rcg.graph().vertex_count(), 27);
    assert_eq!(rcg.graph().arc_count(), 81);
    for s in p.space().ids() {
        assert_eq!(rcg.continuations(s).count(), 3);
    }
    // The DOT rendering distinguishes the 7 legitimate states.
    let dot = rcg.to_dot(&p, "fig1", None);
    assert_eq!(dot.matches("lightgray").count(), 27 - 7);
}

/// E2 (Fig. 2 / Example 4.2): the generalizable matching protocol is
/// deadlock-free for every K by Theorem 4.2; globally self-stabilizing at
/// the paper's model-checked sizes 5..=8 (and 3, 4).
#[test]
fn e2_generalizable_matching() {
    let p = matching::matching_generalizable();
    let da = DeadlockAnalysis::analyze(&p);
    assert!(da.is_free_for_all_k(), "{da}");
    assert!(local_closure_check(&p).is_ok());
    for k in 3..=8 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let report = check::ConvergenceReport::check(&ring);
        assert!(report.self_stabilizing(), "K={k}: {report}");
    }
}

/// E3 (Fig. 3 / Example 4.3): the non-generalizable matching protocol has
/// RCG witness cycles of lengths exactly 4 and 6 through ⟨left,left,self⟩;
/// resolving that one local deadlock restores deadlock-freedom for all K.
///
/// **Erratum**: the paper concludes deadlock-freedom for every K not
/// divisible by 4 or 6 ("two-thirds of the family of rings"), but ring
/// sizes are realized by closed *walks* of the deadlock-induced RCG, not
/// only simple cycles: combining the 4-cycle with legitimate-deadlock
/// detours yields deadlocks at K = 7 and every K ≥ 6 (global model
/// checking confirms, e.g. `llsrlsr` at K = 7). The protocol is deadlock-
/// free only for K ∈ {1, 2, 3, 5}.
#[test]
fn e3_non_generalizable_matching() {
    let p = matching::matching_non_generalizable();
    let da = DeadlockAnalysis::analyze(&p);
    assert!(!da.is_free_for_all_k());
    assert!(!da.witnesses_truncated());

    // Witness simple cycles: lengths exactly {4, 6}, all through lls.
    let mut lens: Vec<usize> = da.witnesses().iter().map(|w| w.base_ring_size).collect();
    lens.sort_unstable();
    lens.dedup();
    assert_eq!(lens, vec![4, 6]);
    let lls = p.space().encode(&[0, 0, 2]);
    for w in da.witnesses() {
        assert!(
            w.cycle.contains(&lls),
            "every bad cycle passes through ⟨l,l,s⟩"
        );
    }

    // Exact deadlocked ring sizes (closed-walk DP) vs global ground truth.
    let sizes = da.deadlocked_ring_sizes(8);
    assert_eq!(sizes, vec![4, 6, 7, 8]);
    for k in 3..=8 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let global = !check::illegitimate_deadlocks(&ring).is_empty();
        assert_eq!(sizes.contains(&k), global, "mismatch at K={k}");
    }

    // Resolving ⟨left,left,self⟩ renders the protocol deadlock-free for
    // every K (the paper's repair).
    let fixed = p
        .with_added_transitions("fixed", [LocalTransition::new(lls, 1)])
        .unwrap();
    assert!(DeadlockAnalysis::analyze(&fixed).is_free_for_all_k());
}

/// E4 (Fig. 4): the LTG of the generalizable matching protocol carries the
/// full continuation relation as s-arcs plus one t-arc per local
/// transition.
#[test]
fn e4_ltg_of_generalizable_matching() {
    let p = matching::matching_generalizable();
    let ltg = Ltg::build(&p);
    assert_eq!(ltg.s_arcs().arc_count(), 81);
    assert_eq!(ltg.transitions().len(), p.transition_count());
    let dot = ltg.to_dot(&p, "fig4");
    assert!(dot.contains("label=\"t\""));
    assert!(dot.contains("label=\"s\""));
}

/// E5 (Figs. 5–6 / Example 5.2): the binary-agreement livelock at K = 4
/// admits exactly 8 precedence-preserving permutations, each of which
/// replays as a livelock.
#[test]
fn e5_agreement_precedence_class() {
    let p = agreement::binary_agreement_both();
    let ring = RingInstance::symmetric(&p, 4).unwrap();
    let cycle: Vec<_> = [
        [1, 0, 0, 0],
        [1, 1, 0, 0],
        [0, 1, 0, 0],
        [0, 1, 1, 0],
        [0, 1, 1, 1],
        [0, 0, 1, 1],
        [1, 0, 1, 1],
        [1, 0, 0, 1],
    ]
    .iter()
    .map(|w| ring.space().encode(w))
    .collect();
    for &s in &cycle {
        assert!(!ring.is_legit(s));
    }
    let sch = Schedule::from_cycle(&ring, &cycle);
    assert!(sch.is_cyclic(&ring));
    let class = equivalent_schedules(&ring, &sch, 1000);
    assert_eq!(class.len(), 8, "2^3 precedence-preserving permutations");
    for s in &class {
        assert!(s.is_cyclic(&ring));
    }
    // The dependence relation keeps same-process moves ordered (Fig. 5).
    let deps = dependent_pairs(&ring, &sch);
    assert!(!deps.is_empty());
}

/// E6 (Fig. 7 / Lemma 5.5): livelocks on unidirectional rings conserve the
/// number of enabled processes; the Gouda–Acharya fragment exhibits
/// |E| = 1 at K = 3, 5 and |E| = 2 at K = 4, 6.
#[test]
fn e6_enablement_conservation() {
    let p = matching::gouda_acharya_fragment();
    let mut es = Vec::new();
    for k in 3..=6 {
        let ring = RingInstance::symmetric(&p, k).unwrap();
        let cycle = check::find_livelock(&ring).expect("fragment livelocks at K>=3");
        let e = check::livelock_enablement_count(&ring, &cycle)
            .expect("Lemma 5.5: constant enablement count");
        es.push(e);
    }
    assert_eq!(es, vec![1, 2, 1, 2]);
}

/// E7 (Fig. 8): the Gouda–Acharya matching fragment livelocks at K = 5
/// (the paper's ≪lslsl, …≫, 10 global transitions, |E| = 1) and its LTG
/// contains the corresponding contiguous trail, so Theorem 5.14 cannot
/// certify it.
#[test]
fn e7_gouda_acharya_livelock() {
    let p = matching::gouda_acharya_fragment();
    // The paper's explicit K=5 livelock replays.
    let ring = RingInstance::symmetric(&p, 5).unwrap();
    let l = |s: &str| {
        let cfg: Vec<u8> = s
            .bytes()
            .map(|b| match b {
                b'l' => 0,
                b'r' => 1,
                _ => 2,
            })
            .collect();
        ring.space().encode(&cfg)
    };
    // The first step of the paper's livelock: from lslsl, P_0 (reading
    // m_4 = left, m_0 = left) executes t_ls, reaching sslsl.
    let start = l("lslsl");
    assert!(!ring.is_legit(start));
    assert!(ring.successors(start).contains(&l("sslsl")));
    let found = check::find_livelock(&ring).expect("K=5 livelock exists");
    assert_eq!(
        check::livelock_enablement_count(&ring, &found),
        Some(1),
        "|E| = 1 as the paper shows"
    );
    // Local side: the certificate correctly refuses to certify.
    let la = LivelockAnalysis::analyze(&p);
    assert!(!la.certified_free());
    assert!(la.trail().is_some());
}

/// E8 (Fig. 9 / §6.1): 3-coloring synthesis fails — all 8 candidate sets
/// form pseudo-livelocks participating in contiguous trails — and the
/// failure is genuine: every candidate livelocks globally (each already at
/// K = 3 or K = 4).
#[test]
fn e8_three_coloring_failure_is_genuine() {
    let p = coloring::three_coloring_empty();
    let out = LocalSynthesizer::default().synthesize(&p).unwrap();
    assert!(!out.is_success());
    assert_eq!(out.combinations_tried(), 8);
    assert_eq!(out.rejected_by_trail(), 8);

    for a in [1u8, 2] {
        for b in [0u8, 2] {
            for c in [0u8, 1] {
                let cand = coloring::three_coloring_candidate([a, b, c]).unwrap();
                let mut livelocked = false;
                for k in 3..=4 {
                    let ring = RingInstance::symmetric(&cand, k).unwrap();
                    if check::find_livelock(&ring).is_some() {
                        livelocked = true;
                    }
                }
                assert!(livelocked, "candidate t0{a},t1{b},t2{c} should livelock");
            }
        }
    }
}

/// E9 (Fig. 10 / §6.2): agreement synthesis succeeds with `Resolve = {01}`
/// or `{10}` and exactly one t-arc; both solutions are globally
/// self-stabilizing at K = 2..=10; including *both* t-arcs is rejected and
/// indeed livelocks.
#[test]
fn e9_agreement_synthesis() {
    let p = agreement::binary_agreement_empty();
    let out = LocalSynthesizer::default().synthesize(&p).unwrap();
    assert_eq!(out.solutions().len(), 2);
    for s in out.solutions() {
        assert!(selfstab_synth::global::verify_up_to(&s.protocol, 10).is_ok());
    }
    // The named library protocols match the synthesized ones.
    for lib in [
        agreement::binary_agreement_one_sided(),
        agreement::binary_agreement_other_sided(),
    ] {
        assert!(StabilizationReport::analyze(&lib).is_self_stabilizing_for_all_k());
    }
    let both = agreement::binary_agreement_both();
    assert!(!LivelockAnalysis::analyze(&both).certified_free());
    let ring = RingInstance::symmetric(&both, 4).unwrap();
    assert!(check::find_livelock(&ring).is_some());
}

/// E10 (Fig. 11 / §6.2): 2-coloring must resolve both monochromatic
/// deadlocks, the resulting trail blocks the certificate — and correctly
/// so: the resolved protocol livelocks on even rings, while odd rings have
/// no legitimate state at all (consistent with the impossibility [25]).
#[test]
fn e10_two_coloring_inconclusive() {
    let p = coloring::two_coloring_empty();
    let out = LocalSynthesizer::default().synthesize(&p).unwrap();
    assert!(!out.is_success());

    let resolved = coloring::two_coloring_resolved();
    assert!(DeadlockAnalysis::analyze(&resolved).is_free_for_all_k());
    assert!(!LivelockAnalysis::analyze(&resolved).certified_free());
    for k in [4usize, 6] {
        let ring = RingInstance::symmetric(&resolved, k).unwrap();
        assert!(
            check::find_livelock(&ring).is_some(),
            "even K={k} livelocks"
        );
    }
    for k in [3usize, 5] {
        let ring = RingInstance::symmetric(&resolved, k).unwrap();
        let legit = ring.space().ids().filter(|&s| ring.is_legit(s)).count();
        assert_eq!(legit, 0, "odd rings admit no legitimate state");
    }
}

/// E11 (Fig. 12 / §6.2): sum-not-two synthesis succeeds; the paper's
/// accepted candidate {t21, t12, t01} is globally self-stabilizing at
/// every checked size, and the trail of the rejected candidate
/// {t21, t10, t02} does not correspond to a real livelock (sufficiency
/// gap).
///
/// **Erratum**: the paper claims the remaining six candidates are all
/// acceptable, but {t20, t10, t02} and {t20, t12, t02} livelock at every
/// K ≥ 3; this implementation's trail search rejects exactly the four
/// unsound-or-unprovable candidates.
#[test]
fn e11_sum_not_two() {
    let p = sum_not_two::sum_not_two_empty();
    let out = LocalSynthesizer::default().synthesize(&p).unwrap();
    assert!(out.is_success());
    assert_eq!(out.combinations_tried(), 8);
    assert_eq!(out.rejected_by_trail(), 4);
    for s in out.solutions() {
        assert!(selfstab_synth::global::verify_up_to(&s.protocol, 7).is_ok());
    }

    // The paper's guarded-command solution is among the accepted ones and
    // verifies globally.
    let sol = sum_not_two::sum_not_two_solution();
    assert!(StabilizationReport::analyze(&sol).is_self_stabilizing_for_all_k());
    assert!(selfstab_synth::global::verify_up_to(&sol, 8).is_ok());

    // Sufficiency gap: {t21, t10, t02} is rejected by the trail check but
    // has no real livelock at any checked size.
    let gap = sum_not_two::sum_not_two_candidate(1, 0, 2).unwrap();
    assert!(!LivelockAnalysis::analyze(&gap).certified_free());
    for k in 2..=8 {
        let ring = RingInstance::symmetric(&gap, k).unwrap();
        assert!(
            check::find_livelock(&ring).is_none(),
            "gap candidate livelocks at K={k}?"
        );
    }

    // Erratum: {t20, t10, t02} and {t20, t12, t02} really livelock.
    for cand in [
        sum_not_two::sum_not_two_candidate(0, 0, 2).unwrap(),
        sum_not_two::sum_not_two_candidate(0, 2, 2).unwrap(),
    ] {
        assert!(!LivelockAnalysis::analyze(&cand).certified_free());
        let ring = RingInstance::symmetric(&cand, 3).unwrap();
        assert!(check::find_livelock(&ring).is_some());
    }
}

/// E12 companion: the global baseline synthesizer at K = 2 accepts the
/// sum-not-two trap candidate that breaks at K = 3 — the
/// non-generalizability phenomenon the local method avoids.
#[test]
fn e12_global_baseline_non_generalizable() {
    let p = sum_not_two::sum_not_two_empty();
    let out = GlobalSynthesizer::new(2, SynthesisConfig::default())
        .synthesize(&p)
        .unwrap();
    let trap: Vec<LocalTransition> = sum_not_two::sum_not_two_candidate(0, 0, 2)
        .unwrap()
        .transitions()
        .collect();
    assert!(out.solutions().iter().any(|s| {
        let mut a = s.added.clone();
        a.sort_unstable();
        a == trap
    }));
    // Every local solution is also accepted by the baseline.
    let local = LocalSynthesizer::default().synthesize(&p).unwrap();
    for s in local.solutions() {
        let mut a = s.added.clone();
        a.sort_unstable();
        assert!(out.solutions().iter().any(|g| {
            let mut b = g.added.clone();
            b.sort_unstable();
            a == b
        }));
    }
}

/// E13: Dijkstra's K-state token ring strongly converges to the one-token
/// states (for m ≥ K) although its actions corrupt — the paper's §5
/// motivating remark. The one-token predicate is not locally conjunctive,
/// so the `*_where` global checks are used.
#[test]
fn e13_dijkstra_token_ring() {
    for (k, m) in [(3usize, 3usize), (4, 4), (4, 5)] {
        let ps = dijkstra::dijkstra_processes(k, m);
        let refs: Vec<&selfstab_protocol::Protocol> = ps.iter().collect();
        let ring = RingInstance::heterogeneous(&refs, 1 << 24).unwrap();
        let legit =
            |s: selfstab_global::GlobalStateId| dijkstra::token_count(&ring.space().decode(s)) == 1;
        assert!(
            check::illegitimate_deadlocks_where(&ring, legit).is_empty(),
            "token ring deadlocked at k={k},m={m}"
        );
        assert!(
            check::find_livelock_where(&ring, legit).is_none(),
            "token ring livelocked at k={k},m={m}"
        );
        assert!(
            check::closure_violations_where(&ring, legit).is_empty(),
            "one-token set not closed at k={k},m={m}"
        );
    }
    // Negative control: with m = 2 < K = 4 convergence fails (livelock
    // among multi-token states).
    let ps = dijkstra::dijkstra_processes(4, 2);
    let refs: Vec<&selfstab_protocol::Protocol> = ps.iter().collect();
    let ring = RingInstance::heterogeneous(&refs, 1 << 24).unwrap();
    let legit =
        |s: selfstab_global::GlobalStateId| dijkstra::token_count(&ring.space().decode(s)) == 1;
    assert!(check::find_livelock_where(&ring, legit).is_some());
}

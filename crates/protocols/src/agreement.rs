//! Agreement on a unidirectional ring (Example 5.2, Section 6.2).
//!
//! Each process owns `x_r`; legitimacy is local equality with the
//! predecessor, `LC_r = (x_r == x_{r-1})`, so `I(K)` is "all values equal".

use selfstab_protocol::{Domain, Locality, Protocol};

fn builder(name: &str, m: usize) -> selfstab_protocol::ProtocolBuilder {
    Protocol::builder(name, Domain::numeric("x", m), Locality::unidirectional())
}

/// The empty binary-agreement protocol (the synthesis input of §6.2).
pub fn binary_agreement_empty() -> Protocol {
    builder("binary-agreement", 2)
        .legit("x[r] == x[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// Binary agreement with the single recovery action `t01` — one of the two
/// convergent solutions of §6.2 (`Resolve = {10}` in window notation
/// `⟨x_{r-1}, x_r⟩`; the paper names transitions by the written value
/// change, `t01 : x_r: 0 → 1`).
pub fn binary_agreement_one_sided() -> Protocol {
    builder("binary-agreement-t01", 2)
        .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
        .expect("static action parses")
        .legit("x[r] == x[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// The symmetric convergent solution using `t10` instead.
pub fn binary_agreement_other_sided() -> Protocol {
    builder("binary-agreement-t10", 2)
        .action("x[r-1] == 0 && x[r] == 1 -> x[r] := 0")
        .expect("static action parses")
        .legit("x[r] == x[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// Binary agreement with **both** recovery actions — Example 5.2's
/// protocol, which livelocks (e.g. at `K = 4`: the paper's
/// `≪1000, 1100, …≫`). The paper's §6.2 uses it to show that including
/// both candidate t-arcs creates the qualifying trail.
pub fn binary_agreement_both() -> Protocol {
    builder("binary-agreement-both", 2)
        .actions([
            "x[r-1] == 0 && x[r] == 1 -> x[r] := 0",
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1",
        ])
        .expect("static actions parse")
        .legit("x[r] == x[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// m-ary *maximum* agreement: every process copies its predecessor when
/// strictly smaller (`x_r < x_{r-1} -> x_r := x_{r-1}`). Converges to all
/// values equal for any domain size `m ≥ 2` — the value projection is
/// strictly increasing, so no pseudo-livelock can form.
///
/// # Panics
///
/// Panics if `m < 2` or `m > 255`.
pub fn max_agreement(m: usize) -> Protocol {
    assert!(m >= 2, "agreement needs at least two values");
    builder(&format!("max-agreement-{m}"), m)
        .action("x[r] < x[r-1] -> x[r] := x[r-1]")
        .expect("static action parses")
        .legit("x[r] == x[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_structure() {
        assert_eq!(binary_agreement_empty().transition_count(), 0);
        assert_eq!(binary_agreement_one_sided().transition_count(), 1);
        assert_eq!(binary_agreement_other_sided().transition_count(), 1);
        assert_eq!(binary_agreement_both().transition_count(), 2);
    }

    #[test]
    fn max_agreement_transition_count() {
        // One transition per window with x_r < x_{r-1}: m(m-1)/2 windows.
        for m in 2..=5 {
            let p = max_agreement(m);
            assert_eq!(p.transition_count(), m * (m - 1) / 2);
        }
    }

    #[test]
    fn legit_is_diagonal() {
        let p = max_agreement(4);
        assert_eq!(p.legit().len(), 4);
    }
}

//! Maximal matching on a bidirectional ring (Examples 4.1–4.3, Fig. 8).
//!
//! Each process `P_r` owns `m_r ∈ {left, right, self}`, declaring whom it
//! matches with. The local legitimate predicate (Example 4.1):
//!
//! ```text
//! LC_r = (m_r == right && m_{r+1} == left)
//!      || (m_{r-1} == right && m_r == left)
//!      || (m_{r-1} == left && m_r == self && m_{r+1} == right)
//! ```

use selfstab_protocol::{Domain, Locality, Protocol};

/// The matching domain `{left, right, self}` over variable `m`.
pub fn matching_domain() -> Domain {
    Domain::named("m", ["left", "right", "self"])
}

/// The local legitimate predicate `LC_r` of Example 4.1, as DSL source.
pub const MATCHING_LEGIT: &str = "(m[r] == right && m[r+1] == left) || \
                                  (m[r-1] == right && m[r] == left) || \
                                  (m[r-1] == left && m[r] == self && m[r+1] == right)";

fn builder(name: &str) -> selfstab_protocol::ProtocolBuilder {
    Protocol::builder(name, matching_domain(), Locality::bidirectional())
}

/// The *empty* maximal-matching protocol: just the domain, locality and
/// `LC_r` of Example 4.1 (the input to synthesis; its full RCG is Fig. 1).
pub fn matching_empty() -> Protocol {
    builder("maximal-matching")
        .legit(MATCHING_LEGIT)
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// The **generalizable** maximal-matching protocol of Example 4.2
/// (actions `A1..A5`, synthesized by STSyn for `K = 6`): deadlock-free for
/// *every* ring size by Theorem 4.2 (Fig. 2 — no illegitimate cycle in the
/// deadlock-induced RCG).
pub fn matching_generalizable() -> Protocol {
    builder("matching-generalizable")
        .actions([
            // A1
            "m[r-1] == left && m[r] != self && m[r+1] == right -> m[r] := self",
            // A2
            "m[r-1] == self && m[r] == self && m[r+1] == self -> m[r] := right | left",
            // A3
            "m[r-1] == right && m[r] == self -> m[r] := left",
            "m[r] == self && m[r+1] == left -> m[r] := right",
            // A4
            "m[r-1] == right && m[r] == right && m[r+1] != left -> m[r] := left",
            "m[r-1] != right && m[r] == left && m[r+1] == left -> m[r] := right",
            // A5
            "m[r-1] == self && m[r] != left && m[r+1] == right -> m[r] := left",
            "m[r-1] == left && m[r] != right && m[r+1] == self -> m[r] := right",
        ])
        .expect("static actions parse")
        .legit(MATCHING_LEGIT)
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// The **non-generalizable** maximal-matching protocol of Example 4.3
/// (actions `B1..B4`, synthesized for `K = 5`): its deadlock-induced RCG
/// has cycles of lengths 4 and 6 through `⟨left,left,self⟩` (Fig. 3), so
/// global deadlocks outside `I` exist exactly at ring sizes divisible by 4
/// or 6.
pub fn matching_non_generalizable() -> Protocol {
    builder("matching-non-generalizable")
        .actions([
            // B1
            "m[r-1] == left && m[r] != self && m[r+1] == right -> m[r] := self",
            // B2
            "m[r-1] == right && m[r] == self && m[r+1] == left -> m[r] := right",
            "m[r-1] == self && m[r] == self && m[r+1] == self -> m[r] := right",
            // B3
            "m[r-1] == right && m[r] == right && m[r+1] == left -> m[r] := left",
            "m[r-1] == self && m[r] == self && m[r+1] == right -> m[r] := left",
            // B4
            "m[r-1] == right && m[r] != left && m[r+1] != left -> m[r] := left",
            "m[r-1] != right && m[r] != right && m[r+1] == left -> m[r] := right",
        ])
        .expect("static actions parse")
        .legit(MATCHING_LEGIT)
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// The livelocking fragment of the Gouda–Acharya matching solution
/// (Fig. 8): only the two t-arcs participating in the `K = 5` livelock
/// `≪lslsl, sslsl, …≫`.
///
/// ```text
/// t_ls: m_r == left && m_{r-1} == left -> m_r := self
/// t_sl: m_r == self && m_{r-1} != left -> m_r := left
/// ```
pub fn gouda_acharya_fragment() -> Protocol {
    builder("gouda-acharya-fragment")
        .actions([
            "m[r] == left && m[r-1] == left -> m[r] := self",
            "m[r] == self && m[r-1] != left -> m[r] := left",
        ])
        .expect("static actions parse")
        .legit(MATCHING_LEGIT)
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_and_legit_shape() {
        let p = matching_empty();
        assert_eq!(p.space().len(), 27);
        // LC_r holds at: (·,right,left): 3? No — enumerate: the predicate
        // fixes 2 or 3 of the window variables; count from the definition.
        let count = p.legit().len();
        // (m_r=right ∧ m_{r+1}=left): 3 states; (m_{r-1}=right ∧ m_r=left):
        // 3 states; (left,self,right): 1 state; overlaps: (right,right,left)
        // counted once in first; (right,left,left)… first∩second:
        // m_r=right ∧ m_r=left impossible. first∩third: m_r=right≠self.
        // So 3+3+1 = 7.
        assert_eq!(count, 7);
    }

    #[test]
    fn generalizable_has_expected_structure() {
        let p = matching_generalizable();
        assert!(p.transition_count() > 0);
        // A2 is nondeterministic: the all-self state has two transitions.
        let sss = p.space().encode(&[2, 2, 2]);
        assert_eq!(p.transitions_from(sss).len(), 2);
    }

    #[test]
    fn non_generalizable_differs_from_generalizable() {
        let a = matching_generalizable();
        let b = matching_non_generalizable();
        let ta: Vec<_> = a.transitions().collect();
        let tb: Vec<_> = b.transitions().collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn fragment_only_reads_predecessor() {
        let p = gouda_acharya_fragment();
        // Both actions ignore m[r+1]: transitions come in triples over it.
        assert_eq!(p.transition_count() % 3, 0);
        assert!(p.transition_count() > 0);
    }
}

//! The example protocols of Farahat & Ebnenasir (ICDCS 2012), ready to
//! analyze with `selfstab-core`, model-check with `selfstab-global`, or
//! synthesize with `selfstab-synth`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`matching`] | Example 4.1 (domain/`LC_r`), Example 4.2 (generalizable `A1..A5`), Example 4.3 (non-generalizable `B1..B4`), the Gouda–Acharya livelock fragment (Fig. 8) |
//! | [`agreement`] | Example 5.2 / Section 6.2: binary and m-ary agreement |
//! | [`coloring`] | Section 6.1/6.2: 2-, 3- and k-coloring |
//! | [`sum_not_two`] | Section 6.2: the sum-not-two protocol and its candidate revisions |
//! | [`dijkstra`] | Dijkstra's K-state token ring (the paper's §5 example of corrupting-yet-convergent actions) |
//! | [`token`] | the flip token ring (Herman's deterministic skeleton) — weakly but not strongly convergent |
//! | [`mis`] | maximal independent set on a bidirectional ring — fully certified by the toolkit |
//!
//! Every constructor returns a fully built [`selfstab_protocol::Protocol`];
//! panics are impossible because the definitions are static (they are
//! exercised by this crate's tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod coloring;
pub mod dijkstra;
pub mod matching;
pub mod mis;
pub mod sum_not_two;
pub mod token;

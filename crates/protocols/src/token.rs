//! Symmetric token circulation: the *flip* token ring (the deterministic
//! skeleton of Herman's randomized token ring).
//!
//! Every process owns a bit; `P_i` holds a *token* iff `x_i == x_{i-1}`,
//! and a process with a token flips its bit — destroying its own token and
//! toggling its successor's. Token parity is invariant, so on **odd**
//! rings at least one token always remains, and the target predicate is
//! "exactly one token".
//!
//! The predicate is not locally conjunctive and the protocol is symmetric
//! with corrupting actions — a useful stress case for the global engine:
//! it converges *weakly* (and quickly under a random daemon, which is
//! Herman's observation) but not strongly (an adversarial daemon can keep
//! three tokens alive forever), as experiment X2 demonstrates.

use selfstab_protocol::{Domain, Locality, Protocol};

/// The flip token ring's representative process:
/// `x[r] == x[r-1] -> x[r] := 1 - x[r]`.
///
/// Built with a trivially-true `LC_r`; use [`token_count`] for the real
/// (global) legitimacy predicate.
pub fn flip_token_ring() -> Protocol {
    Protocol::builder(
        "flip-token-ring",
        Domain::numeric("x", 2),
        Locality::unidirectional(),
    )
    .action("x[r] == x[r-1] -> x[r] := 1 - x[r]")
    .expect("static action parses")
    .legit_all()
    .build()
    .expect("static protocol builds")
}

/// Number of tokens in a configuration: `P_i` has a token iff
/// `x_i == x_{i-1}` (indices modulo the ring size).
pub fn token_count(config: &[u8]) -> usize {
    let k = config.len();
    (0..k)
        .filter(|&i| config[i] == config[(i + k - 1) % k])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_shape() {
        let p = flip_token_ring();
        assert_eq!(p.transition_count(), 2); // (0,0)->1 and (1,1)->0
    }

    #[test]
    fn token_count_parity_matches_ring_parity() {
        // Token count ≡ K (mod 2): alternations around the ring are even.
        for k in 3..=8usize {
            for code in 0..(1u32 << k) {
                let config: Vec<u8> = (0..k).map(|i| ((code >> i) & 1) as u8).collect();
                assert_eq!(token_count(&config) % 2, k % 2, "config {config:?}");
            }
        }
    }

    #[test]
    fn flipping_preserves_token_parity() {
        let p = flip_token_ring();
        let k = 5;
        let ring = selfstab_global::RingInstance::symmetric(&p, k).unwrap();
        for s in ring.space().ids() {
            let before = token_count(&ring.space().decode(s));
            for t in ring.successors(s) {
                let after = token_count(&ring.space().decode(t));
                assert_eq!(before % 2, after % 2);
            }
        }
    }

    #[test]
    fn single_token_configs_exist_on_odd_rings() {
        assert_eq!(token_count(&[0, 0, 1]), 1);
        assert_eq!(token_count(&[0, 1, 0, 1, 1]), 1);
    }
}

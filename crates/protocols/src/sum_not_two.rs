//! The sum-not-two protocol (Section 6.2, Fig. 12).
//!
//! `x_r ∈ {0, 1, 2}`; a local state is legitimate when
//! `x_r + x_{r-1} != 2`. The paper uses this hypothetical protocol to
//! illustrate the interplay between pseudo-livelocks and contiguous
//! trails, and its accepted candidate `{t21, t12, t01}` — captured by the
//! guarded commands below — is convergent for every ring size.

use selfstab_protocol::{Domain, Locality, Protocol, ProtocolError, Value};

/// The legitimate-state predicate of the sum-not-two protocol.
pub const SUM_NOT_TWO_LEGIT: &str = "x[r] + x[r-1] != 2";

fn builder(name: &str) -> selfstab_protocol::ProtocolBuilder {
    Protocol::builder(name, Domain::numeric("x", 3), Locality::unidirectional())
}

/// The empty sum-not-two protocol (the synthesis input; `Resolve` is
/// forced to `{⟨2,0⟩, ⟨1,1⟩, ⟨0,2⟩}`).
pub fn sum_not_two_empty() -> Protocol {
    builder("sum-not-two")
        .legit(SUM_NOT_TWO_LEGIT)
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// The paper's accepted solution `{t21, t12, t01}`, written with the
/// guarded commands given at the end of §6.2:
///
/// ```text
/// (x_r + x_{r-1} == 2) && (x_r != 2) -> x_r := (x_r + 1) mod 3
/// (x_r + x_{r-1} == 2) && (x_r == 2) -> x_r := (x_r - 1) mod 3
/// ```
pub fn sum_not_two_solution() -> Protocol {
    builder("sum-not-two-solution")
        .actions([
            "(x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3",
            "(x[r] + x[r-1] == 2) && (x[r] == 2) -> x[r] := (x[r] - 1) % 3",
        ])
        .expect("static actions parse")
        .legit(SUM_NOT_TWO_LEGIT)
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// A candidate revision resolving the three illegitimate deadlocks with
/// explicit targets: from `⟨0,2⟩` write `from_02`, from `⟨1,1⟩` write
/// `from_11`, from `⟨2,0⟩` write `from_20` (the `2³` candidate space of
/// Fig. 12).
///
/// # Errors
///
/// Returns [`ProtocolError`] for identity targets.
pub fn sum_not_two_candidate(
    from_02: Value,
    from_11: Value,
    from_20: Value,
) -> Result<Protocol, ProtocolError> {
    builder(&format!("sum-not-two-{from_02}{from_11}{from_20}"))
        .transition(&[0, 2], from_02)?
        .transition(&[1, 1], from_11)?
        .transition(&[2, 0], from_20)?
        .legit(SUM_NOT_TWO_LEGIT)?
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legit_excludes_sum_two_windows() {
        let p = sum_not_two_empty();
        assert_eq!(p.legit().len(), 6); // 9 windows minus (0,2),(1,1),(2,0)
        let sp = p.space();
        assert!(!p.legit().holds(sp.encode(&[0, 2])));
        assert!(!p.legit().holds(sp.encode(&[1, 1])));
        assert!(!p.legit().holds(sp.encode(&[2, 0])));
    }

    #[test]
    fn solution_matches_explicit_candidate() {
        // {t21, t12, t01}: from ⟨0,2⟩ write 1, from ⟨1,1⟩ write 2, from
        // ⟨2,0⟩ write 1.
        let sol = sum_not_two_solution();
        let cand = sum_not_two_candidate(1, 2, 1).unwrap();
        assert_eq!(
            sol.transitions().collect::<Vec<_>>(),
            cand.transitions().collect::<Vec<_>>()
        );
    }

    #[test]
    fn candidates_validate_targets() {
        assert!(sum_not_two_candidate(2, 0, 1).is_err()); // identity at ⟨0,2⟩
        assert!(sum_not_two_candidate(0, 0, 1).is_ok());
    }
}

//! Maximal independent set on a bidirectional ring.
//!
//! Each process decides membership `x_r ∈ {0, 1}`; the legitimate states
//! are exactly the maximal independent sets:
//!
//! ```text
//! LC_r = (x_r == 1 && x_{r-1} == 0 && x_{r+1} == 0)       // independent
//!      || (x_r == 0 && (x_{r-1} == 1 || x_{r+1} == 1))    // dominated
//! ```
//!
//! with the natural repair actions *enter* (join when both neighbors are
//! out) and *leave* (drop out on a conflict). A textbook self-stabilization
//! exercise that this toolkit fully certifies: the local deadlocks are
//! exactly the legitimate windows, so Theorem 4.2 holds trivially, and the
//! contiguous-livelock certificate passes; global model checking confirms
//! strong self-stabilization at every small size (see the crate tests).

use selfstab_protocol::{Domain, Locality, Protocol};

/// The legitimate-state predicate of the MIS protocol.
pub const MIS_LEGIT: &str = "(x[r] == 1 && x[r-1] == 0 && x[r+1] == 0) || \
                             (x[r] == 0 && (x[r-1] == 1 || x[r+1] == 1))";

/// The maximal-independent-set protocol with *enter*/*leave* repair.
pub fn maximal_independent_set() -> Protocol {
    Protocol::builder(
        "maximal-independent-set",
        Domain::numeric("x", 2),
        Locality::bidirectional(),
    )
    .action("x[r] == 0 && x[r-1] == 0 && x[r+1] == 0 -> x[r] := 1")
    .expect("static action parses")
    .action("x[r] == 1 && (x[r-1] == 1 || x[r+1] == 1) -> x[r] := 0")
    .expect("static action parses")
    .legit(MIS_LEGIT)
    .expect("static legit predicate parses")
    .build()
    .expect("static protocol builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::{
        deadlock::DeadlockAnalysis, livelock::LivelockAnalysis, local_closure_check,
    };
    use selfstab_global::{check, RingInstance};

    #[test]
    fn deadlocks_are_exactly_the_legitimate_windows() {
        let p = maximal_independent_set();
        let dl = p.local_deadlocks();
        assert_eq!(dl.as_bitset(), p.legit().as_bitset());
        assert!(DeadlockAnalysis::analyze(&p).is_free_for_all_k());
    }

    #[test]
    fn certificate_and_closure() {
        let p = maximal_independent_set();
        assert!(local_closure_check(&p).is_ok());
        let la = LivelockAnalysis::analyze(&p);
        // Bidirectional: the certificate covers contiguous livelocks only,
        // and it passes.
        assert!(la.certified_free());
    }

    #[test]
    fn globally_self_stabilizing_at_small_sizes() {
        let p = maximal_independent_set();
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&p, k).unwrap();
            let r = check::ConvergenceReport::check(&ring);
            assert!(r.self_stabilizing(), "K={k}: {r}");
        }
    }

    #[test]
    fn legitimate_configurations_are_maximal_independent_sets() {
        let p = maximal_independent_set();
        let ring = RingInstance::symmetric(&p, 5).unwrap();
        for s in ring.space().ids() {
            if !ring.is_legit(s) {
                continue;
            }
            let cfg = ring.space().decode(s);
            let k = cfg.len();
            for i in 0..k {
                let (l, r) = (cfg[(i + k - 1) % k], cfg[(i + 1) % k]);
                if cfg[i] == 1 {
                    assert_eq!((l, r), (0, 0), "independence at {i} in {cfg:?}");
                } else {
                    assert!(l == 1 || r == 1, "maximality at {i} in {cfg:?}");
                }
            }
        }
    }
}

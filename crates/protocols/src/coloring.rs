//! Ring coloring on a unidirectional ring (Sections 6.1–6.2).
//!
//! `LC_r = (c_r != c_{r-1})`: a process is legitimate when it differs from
//! its predecessor. 3-coloring is the paper's worked synthesis *failure*
//! (every candidate set pseudo-livelocks along a contiguous trail);
//! 2-coloring is inconclusive for the method and in fact impossible \[25\].

use selfstab_protocol::{Domain, Locality, Protocol, ProtocolError, Value};

fn builder(name: &str, colors: usize) -> selfstab_protocol::ProtocolBuilder {
    Protocol::builder(
        name,
        Domain::numeric("c", colors),
        Locality::unidirectional(),
    )
}

/// The empty k-coloring protocol (the synthesis input).
///
/// # Panics
///
/// Panics if `colors < 2` or `colors > 255`.
pub fn coloring_empty(colors: usize) -> Protocol {
    assert!(colors >= 2, "coloring needs at least two colors");
    builder(&format!("{colors}-coloring"), colors)
        .legit("c[r] != c[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// The empty 3-coloring protocol of §6.1 (its LTG with all candidate
/// t-arcs is Fig. 9).
pub fn three_coloring_empty() -> Protocol {
    coloring_empty(3)
}

/// The empty 2-coloring protocol of §6.2 (Fig. 11).
pub fn two_coloring_empty() -> Protocol {
    coloring_empty(2)
}

/// A 3-coloring candidate revision: for each color `i`, the deadlock
/// `⟨i, i⟩` is resolved by writing `targets[i]` (one of the `2³` candidate
/// sets of §6.1; e.g. `targets = [1, 2, 0]` is `{t01, t12, t20}`).
///
/// # Errors
///
/// Returns [`ProtocolError`] if a target repaints a state with its own
/// color (an identity transition).
pub fn three_coloring_candidate(targets: [Value; 3]) -> Result<Protocol, ProtocolError> {
    let mut b = builder(
        &format!("3-coloring-t{}{}{}", targets[0], targets[1], targets[2]),
        3,
    );
    for (i, &t) in targets.iter().enumerate() {
        b = b.transition(&[i as Value, i as Value], t)?;
    }
    b.legit("c[r] != c[r-1]")?.build()
}

/// The 2-coloring revision resolving both monochromatic deadlocks (§6.2):
/// `{t01, t10}` — the only possible candidate set, which the method cannot
/// certify (and which indeed livelocks on even rings; odd rings have no
/// legitimate state at all).
pub fn two_coloring_resolved() -> Protocol {
    builder("2-coloring-resolved", 2)
        .actions([
            "c[r-1] == 0 && c[r] == 0 -> c[r] := 1",
            "c[r-1] == 1 && c[r] == 1 -> c[r] := 0",
        ])
        .expect("static actions parse")
        .legit("c[r] != c[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// Increment-repair k-coloring: on a collision, take the next color
/// modulo `k`. For `colors >= 3` this is the natural generalization of the
/// paper's `{t01, t12, t20}` candidate.
///
/// # Panics
///
/// Panics if `colors < 2`.
pub fn coloring_increment(colors: usize) -> Protocol {
    assert!(colors >= 2, "coloring needs at least two colors");
    builder(&format!("{colors}-coloring-incr"), colors)
        .action(&format!("c[r] == c[r-1] -> c[r] := (c[r] + 1) % {colors}"))
        .expect("static action parses")
        .legit("c[r] != c[r-1]")
        .expect("static legit predicate parses")
        .build()
        .expect("static protocol builds")
}

/// Bidirectional vertex coloring: `LC_r = (c_r != c_{r-1} && c_r != c_{r+1})`
/// with the nondeterministic repaint action
/// `c[r] == c[r-1] || c[r] == c[r+1] -> c[r] := 0 | 1 | … | colors-1`.
///
/// Deadlock-free for every K by Theorem 4.2 (every conflicted state is
/// enabled), closed, and *weakly* convergent — but an adversarial daemon
/// can livelock it at every checked size, illustrating why deterministic
/// symmetric ring coloring needs randomization \[25\].
///
/// # Panics
///
/// Panics if `colors < 2`.
pub fn bidirectional_coloring(colors: usize) -> Protocol {
    assert!(colors >= 2, "coloring needs at least two colors");
    let alts: Vec<String> = (0..colors).map(|c| c.to_string()).collect();
    Protocol::builder(
        &format!("{colors}-coloring-bidirectional"),
        Domain::numeric("c", colors),
        Locality::bidirectional(),
    )
    .action(&format!(
        "c[r] == c[r-1] || c[r] == c[r+1] -> c[r] := {}",
        alts.join(" | ")
    ))
    .expect("static action parses")
    .legit("c[r] != c[r-1] && c[r] != c[r+1]")
    .expect("static legit predicate parses")
    .build()
    .expect("static protocol builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coloring_shapes() {
        let p = three_coloring_empty();
        assert_eq!(p.space().len(), 9);
        assert_eq!(p.legit().len(), 6);
        assert_eq!(p.transition_count(), 0);
        let q = two_coloring_empty();
        assert_eq!(q.legit().len(), 2);
    }

    #[test]
    fn all_eight_candidates_build() {
        let mut count = 0;
        for a in [1u8, 2] {
            for b in [0u8, 2] {
                for c in [0u8, 1] {
                    let p = three_coloring_candidate([a, b, c]).unwrap();
                    assert_eq!(p.transition_count(), 3);
                    count += 1;
                }
            }
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn identity_candidate_rejected() {
        assert!(three_coloring_candidate([0, 2, 0]).is_err());
    }

    #[test]
    fn bidirectional_coloring_shape() {
        let p = bidirectional_coloring(3);
        assert_eq!(p.space().len(), 27);
        // Legit: center differs from both neighbors: 3 * 2 * 2 = 12.
        assert_eq!(p.legit().len(), 12);
        // Every conflicted state has at least one transition (repaint to a
        // different color).
        for id in p.space().ids() {
            if !p.legit().holds(id) {
                assert!(p.is_enabled(id), "conflicted state must be enabled");
            } else {
                assert!(!p.is_enabled(id), "proper state must be silent");
            }
        }
    }

    #[test]
    fn increment_matches_candidate() {
        let incr = coloring_increment(3);
        let cand = three_coloring_candidate([1, 2, 0]).unwrap();
        assert_eq!(
            incr.transitions().collect::<Vec<_>>(),
            cand.transitions().collect::<Vec<_>>()
        );
    }
}

//! Dijkstra's K-state token ring (1974) — the paper's §5 example of a
//! protocol that converges *despite corrupting convergence actions*.
//!
//! The ring is unidirectional with a distinguished bottom process:
//!
//! ```text
//! P_0:          x_0 == x_{K-1}  ->  x_0 := (x_0 + 1) mod m
//! P_i (i > 0):  x_i != x_{i-1}  ->  x_i := x_{i-1}
//! ```
//!
//! A process holds a *token* when its guard is enabled; the legitimate
//! states are those with exactly one token — a predicate that is **not**
//! locally conjunctive, so this protocol is exercised through the global
//! engine's `*_where` checks rather than the local theorems (the paper
//! cites it only to show non-corruption is unnecessary for
//! livelock-freedom).

use selfstab_protocol::{Domain, Locality, Protocol};

/// Builds the per-process behaviors of the K-state token ring with `k`
/// processes over value domain `{0, …, m-1}`.
///
/// Dijkstra's theorem requires `m >= k` for self-stabilization; smaller
/// domains may fail to converge (useful for negative tests).
///
/// Returns the vector `[P_0, P_1, …, P_{k-1}]` suitable for
/// `RingInstance::heterogeneous`. Every process is built with a trivially
/// true local predicate (`legit_all`), since token-counting legitimacy is
/// global; use [`token_count`]-style helpers on the instance side.
///
/// # Panics
///
/// Panics if `k < 2` or `m < 2`.
pub fn dijkstra_processes(k: usize, m: usize) -> Vec<Protocol> {
    assert!(k >= 2, "token ring needs at least two processes");
    assert!(m >= 2, "token ring needs at least two values");
    let bottom = Protocol::builder(
        "dijkstra-bottom",
        Domain::numeric("x", m),
        Locality::unidirectional(),
    )
    .action(&format!("x[r] == x[r-1] -> x[r] := (x[r] + 1) % {m}"))
    .expect("static action parses")
    .legit_all()
    .build()
    .expect("static protocol builds");
    let other = Protocol::builder(
        "dijkstra-other",
        Domain::numeric("x", m),
        Locality::unidirectional(),
    )
    .action("x[r] != x[r-1] -> x[r] := x[r-1]")
    .expect("static action parses")
    .legit_all()
    .build()
    .expect("static protocol builds");
    let mut out = vec![bottom];
    out.extend(std::iter::repeat_with(|| other.clone()).take(k - 1));
    out
}

/// The number of tokens in a configuration `⟨x_0, …, x_{K-1}⟩`: `P_0`
/// holds a token iff `x_0 == x_{K-1}`; `P_i` (`i > 0`) iff
/// `x_i != x_{i-1}`.
pub fn token_count(config: &[u8]) -> usize {
    let k = config.len();
    let mut tokens = 0;
    if config[0] == config[k - 1] {
        tokens += 1;
    }
    for i in 1..k {
        if config[i] != config[i - 1] {
            tokens += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_shape() {
        let ps = dijkstra_processes(5, 5);
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0].name(), "dijkstra-bottom");
        for p in &ps[1..] {
            assert_eq!(p.name(), "dijkstra-other");
        }
    }

    #[test]
    fn token_count_examples() {
        // All equal: only the bottom has a token.
        assert_eq!(token_count(&[0, 0, 0, 0]), 1);
        // One internal boundary, bottom disabled: one circulating token.
        assert_eq!(token_count(&[1, 1, 0, 0]), 1);
        // Alternating values: maximal corruption.
        assert_eq!(token_count(&[1, 0, 1, 0]), 3);
        assert_eq!(token_count(&[0, 1, 0, 1]), 3);
    }

    #[test]
    fn token_count_is_at_least_one() {
        // Pigeonhole: the ring of comparisons cannot all be "different and
        // x_0 != x_{K-1}" consistently... exhaustively check small cases.
        for a in 0..3u8 {
            for b in 0..3u8 {
                for c in 0..3u8 {
                    assert!(token_count(&[a, b, c]) >= 1, "no token in {:?}", (a, b, c));
                }
            }
        }
    }
}

//! Trail diagnostics: reconstructing contiguous trails as concrete global
//! livelocks.
//!
//! Theorem 5.14 is sufficient, not necessary: a blocking trail may fail to
//! denote any real livelock. The paper demonstrates this for the
//! sum-not-two candidate `{t21, t10, t02}` — "if we try to reconstruct the
//! global livelock of a ring of three processes using `T_R`, we fail!" —
//! and this module mechanizes that step: given a trail, it searches each
//! ring size for a livelock assembled *entirely from the trail's local
//! states*.
//!
//! The result refines a failed certificate into one of:
//!
//! * **Real** — the trail reconstructs at some checked size: the protocol
//!   genuinely livelocks there (rejection was necessary);
//! * **Unrealized up to the bound** — no reconstruction exists at any
//!   checked size: the rejection *may* be an artifact of the sufficiency
//!   gap (not a proof of livelock-freedom — livelocks using other local
//!   states, or larger rings, remain possible).

use selfstab_core::trail::ContiguousTrail;
use selfstab_global::{check, GlobalError, GlobalStateId, RingInstance};
use selfstab_protocol::Protocol;

/// The outcome of attempting to reconstruct a trail at a range of sizes.
#[derive(Clone, Debug)]
pub struct ReconstructionReport {
    /// The smallest checked ring size at which a livelock over the trail's
    /// local states exists, with the witness cycle.
    pub realized: Option<(usize, Vec<GlobalStateId>)>,
    /// The sizes that were checked.
    pub checked: Vec<usize>,
}

impl ReconstructionReport {
    /// `true` if the trail denotes a real livelock at some checked size.
    pub fn is_real(&self) -> bool {
        self.realized.is_some()
    }
}

impl std::fmt::Display for ReconstructionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.realized {
            Some((k, cycle)) => write!(
                f,
                "trail reconstructs: livelock of length {} at K = {k}",
                cycle.len()
            ),
            None => write!(
                f,
                "trail does not reconstruct at any checked size {:?} (sufficiency gap?)",
                self.checked
            ),
        }
    }
}

/// Attempts to reconstruct `trail` as a global livelock at each ring size
/// in `sizes`, stopping at the first success.
///
/// # Errors
///
/// Returns [`GlobalError`] if some instantiation exceeds the state-space
/// limit.
pub fn reconstruct_trail<I>(
    protocol: &Protocol,
    trail: &ContiguousTrail,
    sizes: I,
) -> Result<ReconstructionReport, GlobalError>
where
    I: IntoIterator<Item = usize>,
{
    let states = trail.states();
    let mut checked = Vec::new();
    for k in sizes {
        let ring = RingInstance::symmetric(protocol, k)?;
        checked.push(k);
        if let Some(cycle) = check::find_livelock_within(&ring, |ls| states.contains(&ls)) {
            return Ok(ReconstructionReport {
                realized: Some((k, cycle)),
                checked,
            });
        }
    }
    Ok(ReconstructionReport {
        realized: None,
        checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_core::livelock::LivelockAnalysis;
    use selfstab_protocol::{Domain, Locality};

    fn sum_not_two_candidate(a: u8, b: u8, c: u8) -> Protocol {
        Protocol::builder("sn2", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 2], a)
            .unwrap()
            .transition(&[1, 1], b)
            .unwrap()
            .transition(&[2, 0], c)
            .unwrap()
            .legit("x[r] + x[r-1] != 2")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn papers_gap_candidate_does_not_reconstruct() {
        // {t21, t10, t02}: rejected by the certificate, but its trail is
        // not realizable — the paper's own observation at K = 3, checked
        // here up to K = 7.
        let p = sum_not_two_candidate(1, 0, 2);
        let la = LivelockAnalysis::analyze(&p);
        let trail = la.trail().expect("certificate must fail");
        let rep = reconstruct_trail(&p, trail, 2..=7).unwrap();
        assert!(!rep.is_real(), "{rep}");
        assert_eq!(rep.checked, vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn erratum_candidates_reconstruct_at_k3() {
        for (a, b, c) in [(0u8, 0u8, 2u8), (0, 2, 2)] {
            let p = sum_not_two_candidate(a, b, c);
            let la = LivelockAnalysis::analyze(&p);
            let trail = la.trail().expect("certificate must fail");
            let rep = reconstruct_trail(&p, trail, 2..=7).unwrap();
            let (k, cycle) = rep.realized.expect("these trails are real livelocks");
            assert_eq!(k, 3);
            // The witness is a genuine livelock: validate the cycle.
            let ring = RingInstance::symmetric(&p, k).unwrap();
            for (i, &s) in cycle.iter().enumerate() {
                assert!(!ring.is_legit(s));
                let next = cycle[(i + 1) % cycle.len()];
                assert!(ring.successors(s).contains(&next));
            }
        }
    }

    #[test]
    fn two_coloring_trail_reconstructs_on_even_rings() {
        let p = Protocol::builder("2col", Domain::numeric("c", 2), Locality::unidirectional())
            .actions([
                "c[r-1] == 0 && c[r] == 0 -> c[r] := 1",
                "c[r-1] == 1 && c[r] == 1 -> c[r] := 0",
            ])
            .unwrap()
            .legit("c[r] != c[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let la = LivelockAnalysis::analyze(&p);
        let trail = la.trail().unwrap();
        let rep = reconstruct_trail(&p, trail, [4, 6]).unwrap();
        assert!(rep.is_real());
    }

    #[test]
    fn display_formats() {
        let p = sum_not_two_candidate(1, 0, 2);
        let la = LivelockAnalysis::analyze(&p);
        let trail = la.trail().unwrap();
        let rep = reconstruct_trail(&p, trail, [3]).unwrap();
        assert!(rep.to_string().contains("does not reconstruct"));
    }
}

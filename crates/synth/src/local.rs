//! The local synthesis methodology (Section 6), as a streaming parallel
//! engine.
//!
//! Candidate combinations (one recovery transition per `Resolve` state) are
//! enumerated **lazily** through a mixed-radix index — no materialized
//! cross-product, O(|Resolve|) memory per in-flight candidate — and verified
//! by scoped worker threads that claim fixed-size chunks of the combination
//! index space, mirroring `crates/global/src/engine.rs`:
//!
//! * **Determinism** — per-candidate verification is a pure function of the
//!   candidate, chunks are merged in ascending index order, and all budget
//!   cutoffs are applied on the merged canonical prefix. The
//!   [`SynthesisOutcome`] (solutions, order, verdicts, counters) is
//!   identical for every thread count.
//! * **Exact budgets** — `max_combinations` is a cumulative cap on verified
//!   candidates, `max_solutions` cuts the canonical enumeration right after
//!   the accepted candidate that fills it, and `truncated()` is `true` iff
//!   unexplored work actually remained. Workers may speculatively verify
//!   candidates beyond a cutoff; the canonical merge discards that overwork.
//! * **Shared preparation** — the RCG depends only on the domain and the
//!   locality, not on the transition relation, so one [`Rcg`] is built per
//!   protocol and shared by every candidate's deadlock re-check
//!   ([`DeadlockAnalysis::analyze_prepared`]).
//! * **Cancellation** — a cooperative [`CancelToken`] is polled once per
//!   candidate; on cancellation the verified contiguous prefix is kept, so
//!   no solution below the cancel point is lost.
//! * **Monotone lattice pruning** (`prune`, on by default) — a candidate
//!   rejected by a qualifying trail certifies a *cut*: the trail's used
//!   t-arcs form a pseudo-livelock union whose presence dooms **every**
//!   superset candidate, because the trail search depends only on the
//!   s-arcs (space-determined), the allowed t-arcs, and the illegitimate
//!   states — none of which a superset changes. Cuts are published in a
//!   lock-free index and each worker skips the cut's upward cone with a
//!   per-digit subset test; skipped candidates are *recounted* with the
//!   tag the full engine would have assigned (TAG_TRAIL), so the outcome
//!   stays byte-identical with pruning on or off, at every thread count.
//!   Verified candidates reuse the `Resolve` set's shared Theorem 4.2
//!   verdict and a per-worker delta-applied LTG ([`Ltg::retarget`])
//!   instead of from-scratch analyses. See DESIGN.md §14.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use selfstab_core::deadlock::DeadlockAnalysis;
use selfstab_core::livelock::LivelockAnalysis;
use selfstab_core::ltg::Ltg;
use selfstab_core::pseudo::forms_pseudo_livelock_union;
use selfstab_core::rcg::Rcg;
use selfstab_global::CancelToken;
use selfstab_graph::{
    cycles::{simple_cycles, CycleBudget},
    hitting::minimal_hitting_sets,
};
use selfstab_protocol::{LocalPredicate, LocalStateId, LocalTransition, Protocol};
use selfstab_telemetry::{Phase, PhaseTimes, SynthesisCounters};

/// Budgets and switches for the local synthesizer.
#[derive(Clone, Debug)]
pub struct SynthesisConfig {
    /// Maximum number of `Resolve` sets to try.
    pub max_resolve_sets: usize,
    /// Maximum cumulative number of candidate-transition combinations to
    /// verify (exact: the engine stops after verifying exactly this many).
    pub max_combinations: usize,
    /// Stop after this many accepted solutions (use 1 for first-solution
    /// mode).
    pub max_solutions: usize,
    /// Budget for RCG cycle enumeration when computing `Resolve`.
    pub cycle_budget: CycleBudget,
    /// Worker threads for candidate verification (1 = sequential; the
    /// outcome is identical either way).
    pub threads: usize,
    /// Monotone lattice pruning and delta-verification (see the module
    /// docs). The [`SynthesisOutcome`] is byte-identical with pruning on or
    /// off; `false` forces the reference full-enumeration engine.
    pub prune: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_resolve_sets: 32,
            max_combinations: 4096,
            max_solutions: 64,
            cycle_budget: CycleBudget::default(),
            threads: 1,
            prune: true,
        }
    }
}

/// A typed failure of the synthesis engine (distinct from the methodology
/// *declaring* failure, which is a successful run with zero solutions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesisError {
    /// The protocol's domain has more values than a `u8` can index, so the
    /// candidate value range cannot be enumerated without truncation.
    DomainTooLarge {
        /// The offending domain size.
        domain_size: usize,
    },
    /// The candidate cross-product of a `Resolve` set overflows `u64`, so
    /// the mixed-radix index cannot address every combination — silently
    /// saturating would make the chunked workers enumerate garbage indices.
    CombinationSpaceTooLarge {
        /// Number of states in the offending `Resolve` set.
        resolve_states: usize,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::DomainTooLarge { domain_size } => write!(
                f,
                "domain has {domain_size} values, but candidate enumeration \
                 is limited to {} (u8 value range)",
                u8::MAX as usize + 1
            ),
            SynthesisError::CombinationSpaceTooLarge { resolve_states } => write!(
                f,
                "the candidate combination space of a {resolve_states}-state \
                 Resolve set overflows the u64 index range; no budget can \
                 enumerate it exactly"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// How an accepted solution satisfied the livelock conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthesisVerdict {
    /// Step 4: the added t-arcs form no pseudo-livelock at all.
    NoPseudoLivelock,
    /// Step 5: pseudo-livelocks exist but none participates in a
    /// contiguous trail through an illegitimate state.
    PseudoLivelocksWithoutTrails,
}

/// One accepted revision `p_ss`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthesizedProtocol {
    /// The revised protocol (input transitions plus recovery transitions).
    pub protocol: Protocol,
    /// The `Resolve` set used.
    pub resolve: Vec<LocalStateId>,
    /// The recovery transitions added.
    pub added: Vec<LocalTransition>,
    /// How the livelock conditions were met.
    pub verdict: SynthesisVerdict,
}

/// The outcome of a synthesis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthesisOutcome {
    solutions: Vec<SynthesizedProtocol>,
    resolve_sets_tried: usize,
    combinations_tried: usize,
    rejected_by_trail: usize,
    truncated: bool,
    cancelled: bool,
}

impl SynthesisOutcome {
    /// The accepted revisions (empty means the methodology declared
    /// failure, as it does for 3-coloring and 2-coloring).
    pub fn solutions(&self) -> &[SynthesizedProtocol] {
        &self.solutions
    }

    /// Whether any solution was found.
    pub fn is_success(&self) -> bool {
        !self.solutions.is_empty()
    }

    /// Number of `Resolve` sets examined.
    pub fn resolve_sets_tried(&self) -> usize {
        self.resolve_sets_tried
    }

    /// Number of candidate combinations verified (never exceeds
    /// `max_combinations`; counted on the canonical enumeration prefix).
    pub fn combinations_tried(&self) -> usize {
        self.combinations_tried
    }

    /// Combinations rejected because a qualifying contiguous trail exists.
    pub fn rejected_by_trail(&self) -> usize {
        self.rejected_by_trail
    }

    /// `true` if a budget limit (or cancellation) stopped the search while
    /// unexplored work remained.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// `true` if the search was stopped by its [`CancelToken`]. The
    /// outcome still holds every verdict from the verified prefix of the
    /// enumeration — nothing below the cancel point is lost.
    pub fn cancelled(&self) -> bool {
        self.cancelled
    }
}

/// Lazy mixed-radix view of the one-choice-per-state candidate
/// cross-product of a `Resolve` set: combination `i` assigns to state `j`
/// the candidate `per_state[j][digit_j(i)]`, with state 0 as the most
/// significant digit — the order the materialized enumeration used.
pub(crate) struct ComboSpace<'a> {
    pub(crate) per_state: &'a [Vec<LocalTransition>],
}

impl ComboSpace<'_> {
    /// Number of combinations, or `None` when the product overflows `u64`
    /// — `decode`/`advance` assume the total is exact, so a saturated
    /// count must be a typed error at the caller, never an index into
    /// garbage. An empty `Resolve` set has exactly one, empty, combination;
    /// a state with zero options yields `Some(0)` (immediately
    /// unsatisfiable, and `decode` must not be called).
    pub(crate) fn checked_total(&self) -> Option<u64> {
        self.per_state
            .iter()
            .try_fold(1u64, |acc, opts| acc.checked_mul(opts.len() as u64))
    }

    /// Decodes combination `index` into one digit per state.
    pub(crate) fn decode(&self, mut index: u64, digits: &mut Vec<usize>) {
        digits.clear();
        digits.resize(self.per_state.len(), 0);
        for j in (0..self.per_state.len()).rev() {
            let len = self.per_state[j].len() as u64;
            digits[j] = (index % len) as usize;
            index /= len;
        }
    }

    /// Odometer step to the next combination (last state varies fastest).
    pub(crate) fn advance(&self, digits: &mut [usize]) {
        for j in (0..digits.len()).rev() {
            digits[j] += 1;
            if digits[j] < self.per_state[j].len() {
                return;
            }
            digits[j] = 0;
        }
    }

    /// Materializes the combination `digits` denotes into `added`.
    pub(crate) fn fill(&self, digits: &[usize], added: &mut Vec<LocalTransition>) {
        added.clear();
        added.extend(
            digits
                .iter()
                .enumerate()
                .map(|(j, &d)| self.per_state[j][d]),
        );
    }
}

/// Per-candidate verdict tags recorded by the scan (indexable, so the
/// canonical merge can recount rejections at any cutoff).
const TAG_INVALID: u8 = 0;
const TAG_DEADLOCK: u8 = 1;
const TAG_TRAIL: u8 = 2;
const TAG_ACCEPT: u8 = 3;

/// The Section 6 local synthesizer.
///
/// See the crate docs for the algorithm; all reasoning happens in the local
/// state space, so the cost is independent of any ring size and the
/// accepted solutions are *generalizable by construction*.
#[derive(Clone, Debug, Default)]
pub struct LocalSynthesizer {
    config: SynthesisConfig,
}

impl LocalSynthesizer {
    /// Creates a synthesizer with the given budgets.
    pub fn new(config: SynthesisConfig) -> Self {
        LocalSynthesizer { config }
    }

    /// Computes the candidate `Resolve` sets: minimal sets of illegitimate
    /// local deadlocks hitting every RCG cycle (over local deadlocks) that
    /// passes through an illegitimate state.
    ///
    /// Each returned set is re-verified exactly (Theorem 4.2 via SCCs), so
    /// the result is correct even if cycle enumeration was truncated.
    pub fn resolve_sets(&self, protocol: &Protocol, rcg: &Rcg) -> Vec<Vec<LocalStateId>> {
        self.resolve_sets_capped(protocol, rcg, self.config.max_resolve_sets)
    }

    /// [`LocalSynthesizer::resolve_sets`] with an explicit cap — the engine
    /// requests one extra set so truncation of the set list is observable.
    fn resolve_sets_capped(
        &self,
        protocol: &Protocol,
        rcg: &Rcg,
        cap: usize,
    ) -> Vec<Vec<LocalStateId>> {
        let deadlocks = protocol.local_deadlocks();
        let illegit = protocol.legit().negated();
        let induced = rcg.induced(&deadlocks);
        let enumeration = simple_cycles(&induced, self.config.cycle_budget);

        // Families: for each bad cycle, the illegitimate deadlocks on it.
        let mut families: Vec<Vec<usize>> = Vec::new();
        for cycle in &enumeration.cycles {
            let bad: Vec<usize> = cycle
                .iter()
                .copied()
                .filter(|&v| illegit.holds(LocalStateId(v as u32)))
                .collect();
            if !bad.is_empty() {
                families.push(bad);
            }
        }
        if families.is_empty() {
            return vec![Vec::new()]; // already deadlock-free for all K
        }
        let sets = minimal_hitting_sets(&families, cap, usize::MAX);

        // Exact re-verification (covers the truncated-enumeration case):
        // removing the Resolve states must leave no bad cycle.
        let mut sets: Vec<Vec<LocalStateId>> = sets
            .into_iter()
            .map(|s| {
                s.into_iter()
                    .map(|v| LocalStateId(v as u32))
                    .collect::<Vec<_>>()
            })
            .filter(|resolve: &Vec<LocalStateId>| resolved_is_deadlock_free(protocol, rcg, resolve))
            .collect();
        // Hitting-set coverage ordering: every minimal hitting set hits
        // every family, so rank by the summed family degree of the set's
        // states — dense resolve states constrain the most cycles, which
        // front-loads rejections (and, under pruning, cut installations).
        // The stable sort keeps the hitting-set enumeration order on ties,
        // and the order is part of the canonical enumeration: it is applied
        // identically with pruning on or off.
        let weight = |set: &[LocalStateId]| -> usize {
            set.iter()
                .map(|s| families.iter().filter(|f| f.contains(&s.index())).count())
                .sum()
        };
        sets.sort_by_key(|s| std::cmp::Reverse(weight(s)));
        sets
    }

    /// Candidate recovery transitions out of `state`: every changed value
    /// whose target state lies outside `Resolve` (step 3 — guarantees the
    /// added actions are self-disabling).
    ///
    /// # Errors
    ///
    /// [`SynthesisError::DomainTooLarge`] if the domain exceeds the `u8`
    /// value range (defensive: [`selfstab_protocol::Domain`] construction
    /// enforces the same cap).
    pub fn candidates(
        &self,
        protocol: &Protocol,
        resolve: &[LocalStateId],
        state: LocalStateId,
    ) -> Result<Vec<LocalTransition>, SynthesisError> {
        check_domain(protocol.space().domain_size())?;
        Ok(self.candidates_unchecked(protocol, resolve, state))
    }

    /// [`LocalSynthesizer::candidates`] after the domain guard has passed.
    pub(crate) fn candidates_unchecked(
        &self,
        protocol: &Protocol,
        resolve: &[LocalStateId],
        state: LocalStateId,
    ) -> Vec<LocalTransition> {
        let space = protocol.space();
        let loc = protocol.locality();
        let current = space.value_at(state, loc.center());
        (0..space.domain_size() as u8)
            .filter(|&v| v != current)
            .map(|v| LocalTransition::new(state, v))
            .filter(|t| !resolve.contains(&t.target_state(space, loc)))
            .collect()
    }

    /// Runs the full methodology (no cancellation, no telemetry).
    ///
    /// # Errors
    ///
    /// [`SynthesisError::DomainTooLarge`] if the domain exceeds the `u8`
    /// value range.
    pub fn synthesize(&self, protocol: &Protocol) -> Result<SynthesisOutcome, SynthesisError> {
        self.synthesize_bounded(protocol, &CancelToken::new())
    }

    /// [`LocalSynthesizer::synthesize`] honoring a cooperative
    /// [`CancelToken`], polled once per candidate. On cancellation the
    /// outcome keeps the canonical verified prefix (`cancelled()` and
    /// `truncated()` are set) rather than erroring out.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::DomainTooLarge`] if the domain exceeds the `u8`
    /// value range.
    pub fn synthesize_bounded(
        &self,
        protocol: &Protocol,
        cancel: &CancelToken,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        self.synthesize_metered(protocol, cancel, None, None)
    }

    /// [`LocalSynthesizer::synthesize_bounded`] with telemetry: flushes
    /// candidate/rejection counters into `counters` and records the whole
    /// search as one [`Phase::Synthesis`] span in `phases`. Counters are
    /// flushed once, from the canonically merged outcome, so every value
    /// except the scheduling-dependent `cancel_polls` is thread-count
    /// invariant — and the `None` path does no telemetry work at all.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::DomainTooLarge`] if the domain exceeds the `u8`
    /// value range.
    pub fn synthesize_metered(
        &self,
        protocol: &Protocol,
        cancel: &CancelToken,
        counters: Option<&SynthesisCounters>,
        phases: Option<&PhaseTimes>,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        match phases {
            Some(t) => t.time(Phase::Synthesis, || self.search(protocol, cancel, counters)),
            None => self.search(protocol, cancel, counters),
        }
    }

    /// The engine: resolve-set loop around the chunked parallel candidate
    /// scan, with all cutoffs applied on the canonical merge.
    fn search(
        &self,
        protocol: &Protocol,
        cancel: &CancelToken,
        counters: Option<&SynthesisCounters>,
    ) -> Result<SynthesisOutcome, SynthesisError> {
        check_domain(protocol.space().domain_size())?;
        let rcg = Rcg::build(protocol);
        let name = format!("{}-ss", protocol.name());

        // One extra set makes truncation of the set list itself observable.
        let cap = self.config.max_resolve_sets;
        let sets = self.resolve_sets_capped(protocol, &rcg, cap.saturating_add(1));
        let sets_truncated = sets.len() > cap;
        let sets = &sets[..sets.len().min(cap)];

        let mut outcome = SynthesisOutcome {
            solutions: Vec::new(),
            resolve_sets_tried: 0,
            combinations_tried: 0,
            rejected_by_trail: 0,
            truncated: sets_truncated,
            cancelled: false,
        };
        let mut rejected_invalid: u64 = 0;
        let mut rejected_by_deadlock: u64 = 0;
        let cancel_polls = AtomicU64::new(0);
        let prune_state = self.config.prune.then(PruneState::new);

        for resolve in sets {
            if outcome.solutions.len() >= self.config.max_solutions
                || outcome.combinations_tried >= self.config.max_combinations
            {
                outcome.truncated = true;
                break;
            }
            if cancel.is_cancelled() {
                outcome.cancelled = true;
                outcome.truncated = true;
                break;
            }
            outcome.resolve_sets_tried += 1;

            // Per-state candidates; a state without candidates makes the
            // Resolve set immediately unsatisfiable (and `decode` must
            // never see its zero-length digit), so it is skipped before a
            // ComboSpace is even formed.
            let per_state: Vec<Vec<LocalTransition>> = resolve
                .iter()
                .map(|&s| self.candidates_unchecked(protocol, resolve, s))
                .collect();
            if per_state.iter().any(Vec::is_empty) {
                continue;
            }
            let space = ComboSpace {
                per_state: &per_state,
            };
            let Some(total) = space.checked_total() else {
                return Err(SynthesisError::CombinationSpaceTooLarge {
                    resolve_states: resolve.len(),
                });
            };
            let comb_left = (self.config.max_combinations - outcome.combinations_tried) as u64;
            let allowed = total.min(comb_left);
            let sol_cap = (self.config.max_solutions - outcome.solutions.len()) as u64;

            let prune = prune_state.as_ref().map(|state| PruneScanContext {
                state,
                digit_valid: per_state
                    .iter()
                    .map(|opts| {
                        opts.iter()
                            .map(|&t| candidate_transition_is_valid(protocol, t))
                            .collect()
                    })
                    .collect(),
                // The Theorem 4.2 verdict is a function of the candidate's
                // deadlock set alone, and every combination of this set
                // resolves exactly `resolve` — one shared verdict covers
                // them all. Surviving sets are pre-filtered on it, so the
                // guard below is defensive: were it ever false, every valid
                // candidate would be TAG_DEADLOCK and cut-skipping (which
                // can only certify TAG_TRAIL) must stand down.
                set_deadlock_free: resolved_is_deadlock_free(protocol, &rcg, resolve),
            });
            let ctx = ScanContext {
                protocol,
                rcg: &rcg,
                cycle_budget: self.config.cycle_budget,
                name: &name,
                resolve,
                space: &space,
                prune,
            };
            let scan = scan_resolve_set(
                &ctx,
                allowed,
                sol_cap,
                self.config.threads,
                cancel,
                &cancel_polls,
            );

            // Canonical cutoff: walk the verified prefix in enumeration
            // order, stopping right after the accepted candidate that fills
            // the solution budget.
            let mut taken: u64 = 0;
            let mut sols_taken: u64 = 0;
            for &tag in &scan.tags {
                taken += 1;
                match tag {
                    TAG_INVALID => rejected_invalid += 1,
                    TAG_DEADLOCK => rejected_by_deadlock += 1,
                    TAG_TRAIL => outcome.rejected_by_trail += 1,
                    _ => {
                        sols_taken += 1;
                        if sols_taken >= sol_cap {
                            break;
                        }
                    }
                }
            }
            outcome.combinations_tried += taken as usize;
            for (idx, sol) in scan.solutions {
                if idx < taken {
                    outcome.solutions.push(sol);
                }
            }
            if scan.cancelled {
                outcome.cancelled = true;
            }
            if taken < total {
                // Budget, solution cap, or cancellation left work behind.
                outcome.truncated = true;
                break;
            }
        }

        if let Some(c) = counters {
            c.resolve_sets_examined
                .fetch_add(outcome.resolve_sets_tried as u64, Ordering::Relaxed);
            c.combinations_tried
                .fetch_add(outcome.combinations_tried as u64, Ordering::Relaxed);
            c.rejected_invalid
                .fetch_add(rejected_invalid, Ordering::Relaxed);
            c.rejected_by_deadlock
                .fetch_add(rejected_by_deadlock, Ordering::Relaxed);
            c.rejected_by_trail
                .fetch_add(outcome.rejected_by_trail as u64, Ordering::Relaxed);
            c.solutions_found
                .fetch_add(outcome.solutions.len() as u64, Ordering::Relaxed);
            c.cancel_polls
                .fetch_add(cancel_polls.load(Ordering::Relaxed), Ordering::Relaxed);
            if let Some(p) = &prune_state {
                c.cones_cut
                    .fetch_add(p.cones_cut.load(Ordering::Relaxed), Ordering::Relaxed);
                c.candidates_skipped.fetch_add(
                    p.candidates_skipped.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                c.delta_reuses
                    .fetch_add(p.delta_reuses.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        Ok(outcome)
    }
}

/// Capacity of the shared cut index. Corpus workloads install a handful of
/// cuts; the cut-heavy 5-coloring bench installs under a hundred. Overflow
/// degrades to plain verification, never to an error.
const CUT_CAPACITY: usize = 256;

/// Lock-free, append-only index of *cuts*: culpable added-transition
/// subsets certified by a trail rejection. A published cut `C` proves that
/// every candidate protocol containing all of `C` admits a qualifying
/// contiguous trail and is rejected by the Theorem 5.14 check
/// (`TAG_TRAIL`):
///
/// * the rejecting trail's used t-arcs form a pseudo-livelock union
///   (re-checked at installation — the over-approximating `> 12`-support
///   fallback can report trails whose used set does not qualify), and
///   `forms_pseudo_livelock_union` depends only on the subset, the space
///   and the locality — not on the rest of the protocol;
/// * a pseudo-livelock union inside a superset candidate lies inside that
///   candidate's support (its projection cycles survive in the larger
///   projection graph), so the superset's own trail search — complete
///   subset enumeration up to 12 support arcs, an over-rejecting whole-
///   support search beyond — re-encounters a qualifying trail (the trail
///   search itself depends only on the space-determined s-arcs, the
///   allowed t-arcs and the fixed illegitimate states);
/// * and if the superset breaks an analysis assumption instead
///   (self-termination, process-self-disabling, closure), it is equally
///   uncertified — either way the full engine tags it `TAG_TRAIL`.
///
/// Cuts are stored with their base transitions stripped (the base is part
/// of every candidate of every `Resolve` set), sorted for subset tests.
/// Publication is a claim counter over per-slot `OnceLock`s: readers never
/// block and the crate stays `forbid(unsafe_code)`-clean.
struct CutIndex {
    slots: Vec<OnceLock<Vec<LocalTransition>>>,
    claimed: AtomicUsize,
}

impl CutIndex {
    fn new() -> Self {
        CutIndex {
            slots: (0..CUT_CAPACITY).map(|_| OnceLock::new()).collect(),
            claimed: AtomicUsize::new(0),
        }
    }

    /// The fully published cuts (slots claimed but not yet written are
    /// skipped; they become visible on a later scan).
    fn published(&self) -> impl Iterator<Item = &[LocalTransition]> {
        self.slots.iter().filter_map(|s| s.get().map(Vec::as_slice))
    }

    /// Publishes a sorted cut unless a published cut already subsumes it
    /// (its cone contains the new one's) or the index is full. Returns
    /// `true` when a slot was written.
    fn install(&self, arcs: Vec<LocalTransition>) -> bool {
        if self.published().any(|c| is_sorted_subset(c, &arcs)) {
            return false;
        }
        if self.claimed.load(Ordering::Relaxed) >= CUT_CAPACITY {
            return false;
        }
        let slot = self.claimed.fetch_add(1, Ordering::Relaxed);
        if slot >= CUT_CAPACITY {
            return false;
        }
        self.slots[slot]
            .set(arcs)
            .expect("cut slot is claimed exactly once");
        true
    }
}

/// `a ⊆ b` for sorted, deduplicated transition slices.
fn is_sorted_subset(a: &[LocalTransition], b: &[LocalTransition]) -> bool {
    a.iter().all(|t| b.binary_search(t).is_ok())
}

/// Shared pruning state for one synthesis run: the cut index plus the
/// scheduling-dependent work-avoidance tallies (the *verdicts* stay
/// deterministic; only how much verification was skipped varies).
struct PruneState {
    cuts: CutIndex,
    cones_cut: AtomicU64,
    candidates_skipped: AtomicU64,
    delta_reuses: AtomicU64,
}

impl PruneState {
    fn new() -> Self {
        PruneState {
            cuts: CutIndex::new(),
            cones_cut: AtomicU64::new(0),
            candidates_skipped: AtomicU64::new(0),
            delta_reuses: AtomicU64::new(0),
        }
    }
}

/// Per-`Resolve`-set pruning context handed to the scan.
struct PruneScanContext<'a> {
    state: &'a PruneState,
    /// `digit_valid[j][d]`: whether option `d` of state `j` passes the
    /// (private) transition validation of `with_added_transitions` — a
    /// per-transition property, so a skipped candidate's `TAG_INVALID` is
    /// decidable without materializing a protocol.
    digit_valid: Vec<Vec<bool>>,
    /// The shared Theorem 4.2 verdict of this set (see
    /// [`LocalSynthesizer::search`]).
    set_deadlock_free: bool,
}

/// Projects a cut onto one `Resolve` set's digit space: the candidate at
/// `digits` lies in the cut's cone iff `digits[j] == d` for every returned
/// `(j, d)`. `None` when the set cannot express the cut — an arc that is
/// no state's candidate here, or two arcs competing for one digit — so no
/// candidate of this set contains it.
fn project_cut(
    cut: &[LocalTransition],
    resolve: &[LocalStateId],
    per_state: &[Vec<LocalTransition>],
) -> Option<Vec<(usize, usize)>> {
    let mut constraints: Vec<(usize, usize)> = Vec::with_capacity(cut.len());
    for &t in cut {
        let j = resolve.iter().position(|&s| s == t.source)?;
        let d = per_state[j].iter().position(|&c| c == t)?;
        if constraints.iter().any(|&(cj, cd)| cj == j && cd != d) {
            return None;
        }
        constraints.push((j, d));
    }
    constraints.sort_unstable();
    constraints.dedup();
    Some(constraints)
}

/// Mirror of the private transition validation inside
/// [`Protocol::with_added_transitions`] (range checks plus the
/// identity-write ban), used by the pruned path's per-digit validity
/// precompute.
fn candidate_transition_is_valid(protocol: &Protocol, t: LocalTransition) -> bool {
    let space = protocol.space();
    t.source.index() < space.len()
        && (t.target as usize) < space.domain_size()
        && space.value_at(t.source, protocol.locality().center()) != t.target
}

/// Everything a worker needs to verify one candidate, shared read-only
/// across the scoped threads of one `Resolve`-set scan.
struct ScanContext<'a> {
    protocol: &'a Protocol,
    rcg: &'a Rcg,
    cycle_budget: CycleBudget,
    name: &'a str,
    resolve: &'a [LocalStateId],
    space: &'a ComboSpace<'a>,
    /// Pruning context; `None` runs the reference full-verification path.
    prune: Option<PruneScanContext<'a>>,
}

/// The canonical verified prefix of one `Resolve`-set scan.
struct SetScan {
    /// `tags[i]` is the verdict tag of combination `i` (contiguous prefix
    /// of the enumeration; shorter than `allowed` only under cancellation
    /// or a solution-cap early stop).
    tags: Vec<u8>,
    /// Accepted candidates within the prefix, ascending by index.
    solutions: Vec<(u64, SynthesizedProtocol)>,
    /// Whether cancellation cut the prefix short.
    cancelled: bool,
}

/// One worker's output for one chunk of the combination index space.
struct ChunkPart {
    tags: Vec<u8>,
    solutions: Vec<(u64, SynthesizedProtocol)>,
}

/// Verifies combinations `0..allowed` of `ctx.space` across `threads`
/// scoped workers claiming fixed chunks off a shared counter, then merges
/// completed chunks in ascending order into a canonical contiguous prefix.
///
/// Workers stop claiming new chunks once `sol_cap` acceptances have been
/// observed (a hint — the canonical cutoff in [`LocalSynthesizer::search`]
/// is what actually bounds the outcome) and abandon their chunk mid-way
/// only on cancellation, so in the absence of cancellation the merged
/// prefix always covers the canonical cutoff.
fn scan_resolve_set(
    ctx: &ScanContext<'_>,
    allowed: u64,
    sol_cap: u64,
    threads: usize,
    cancel: &CancelToken,
    cancel_polls: &AtomicU64,
) -> SetScan {
    if allowed == 0 {
        return SetScan {
            tags: Vec::new(),
            solutions: Vec::new(),
            cancelled: cancel.is_cancelled(),
        };
    }
    let threads = threads.max(1);
    // Chunks small enough to balance trail-check latency across workers,
    // large enough to amortize the claim + merge bookkeeping.
    let chunk = allowed.div_ceil(threads as u64 * 4).clamp(1, 64);
    let num_chunks = allowed.div_ceil(chunk);
    let next = AtomicU64::new(0);
    let sols_hint = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, ChunkPart)>> = Mutex::new(Vec::new());

    let worker = || {
        let mut digits: Vec<usize> = Vec::new();
        let mut added: Vec<LocalTransition> = Vec::new();
        let mut polls: u64 = 0;
        // Worker-local pruning state: the delta-LTG survives across
        // candidates and chunks; the projected cuts are refreshed at each
        // chunk claim, picking up cuts other workers published meanwhile
        // without any synchronization on the hot per-candidate test.
        let mut ltg: Option<Ltg> = None;
        let mut projected: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut skipped: u64 = 0;
        let mut reused: u64 = 0;
        loop {
            if sols_hint.load(Ordering::Relaxed) >= sol_cap {
                break;
            }
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            if let Some(p) = &ctx.prune {
                if p.set_deadlock_free {
                    projected.clear();
                    projected.extend(
                        p.state
                            .cuts
                            .published()
                            .filter_map(|cut| project_cut(cut, ctx.resolve, ctx.space.per_state)),
                    );
                }
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(allowed);
            ctx.space.decode(lo, &mut digits);
            let mut part = ChunkPart {
                tags: Vec::with_capacity((hi - lo) as usize),
                solutions: Vec::new(),
            };
            let mut aborted = false;
            for i in lo..hi {
                polls += 1;
                if cancel.is_cancelled() {
                    aborted = true;
                    break;
                }
                let (tag, sol) = match &ctx.prune {
                    Some(p) => verify_candidate_pruned(
                        ctx,
                        p,
                        &digits,
                        &projected,
                        &mut added,
                        &mut ltg,
                        &mut skipped,
                        &mut reused,
                    ),
                    None => {
                        ctx.space.fill(&digits, &mut added);
                        verify_candidate(ctx, &added)
                    }
                };
                part.tags.push(tag);
                if let Some(s) = sol {
                    part.solutions.push((i, s));
                    sols_hint.fetch_add(1, Ordering::Relaxed);
                }
                ctx.space.advance(&mut digits);
            }
            results
                .lock()
                .expect("scan results poisoned")
                .push((c, part));
            if aborted {
                break;
            }
        }
        cancel_polls.fetch_add(polls, Ordering::Relaxed);
        if let Some(p) = &ctx.prune {
            p.state
                .candidates_skipped
                .fetch_add(skipped, Ordering::Relaxed);
            p.state.delta_reuses.fetch_add(reused, Ordering::Relaxed);
        }
    };

    if threads == 1 || num_chunks == 1 {
        worker();
    } else {
        let worker = &worker;
        std::thread::scope(|scope| {
            for _ in 0..threads.min(num_chunks as usize) {
                scope.spawn(worker);
            }
        });
    }

    // Merge in ascending chunk order; the prefix ends at the first missing
    // chunk (solution-cap early stop or cancellation) or partial chunk
    // (cancellation only).
    let mut parts = results.into_inner().expect("scan results poisoned");
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut tags: Vec<u8> = Vec::new();
    let mut solutions: Vec<(u64, SynthesizedProtocol)> = Vec::new();
    for (expect, (c, part)) in (0u64..).zip(parts) {
        if c != expect {
            break;
        }
        let lo = c * chunk;
        let hi = (lo + chunk).min(allowed);
        let full = part.tags.len() as u64 == hi - lo;
        tags.extend_from_slice(&part.tags);
        solutions.extend(part.solutions);
        if !full {
            break;
        }
    }
    let cancelled = (tags.len() as u64) < allowed && cancel.is_cancelled();
    SetScan {
        tags,
        solutions,
        cancelled,
    }
}

/// Verifies one candidate combination: revision validity, the exact
/// deadlock-freedom re-check (Theorem 4.2 over the shared RCG), then the
/// Theorem 5.14 trail check distinguishing NPL (no pseudo-livelock among
/// the added arcs) from PL (support exists but no qualifying trail).
fn verify_candidate(
    ctx: &ScanContext<'_>,
    added: &[LocalTransition],
) -> (u8, Option<SynthesizedProtocol>) {
    let candidate = match ctx
        .protocol
        .with_added_transitions(ctx.name, added.iter().copied())
    {
        Ok(p) => p,
        Err(_) => return (TAG_INVALID, None),
    };

    // Deadlock-freedom must hold (it does by construction of Resolve;
    // re-checked exactly for robustness). The RCG depends only on the
    // domain and locality, so the prepared one is valid for every revision.
    let da = DeadlockAnalysis::analyze_prepared(&candidate, ctx.rcg, ctx.cycle_budget);
    if !da.is_free_for_all_k() {
        return (TAG_DEADLOCK, None);
    }

    let la = LivelockAnalysis::analyze(&candidate);
    if !la.certified_free() {
        return (TAG_TRAIL, None);
    }
    let verdict = if la.pseudo_livelock_support().is_empty() {
        SynthesisVerdict::NoPseudoLivelock
    } else {
        SynthesisVerdict::PseudoLivelocksWithoutTrails
    };
    let sol = SynthesizedProtocol {
        protocol: candidate,
        resolve: ctx.resolve.to_vec(),
        added: added.to_vec(),
        verdict,
    };
    (TAG_ACCEPT, Some(sol))
}

/// The pruned verification of one candidate: exact per-digit validity,
/// cut-cone skipping, then delta-verification — the set's shared Theorem
/// 4.2 verdict plus a retargeted per-worker LTG. The returned tag is
/// provably the one [`verify_candidate`] would compute (see the module
/// docs and DESIGN.md §14 for the soundness argument), so the canonical
/// merge cannot tell the engines apart.
#[allow(clippy::too_many_arguments)]
fn verify_candidate_pruned(
    ctx: &ScanContext<'_>,
    p: &PruneScanContext<'_>,
    digits: &[usize],
    projected: &[Vec<(usize, usize)>],
    added: &mut Vec<LocalTransition>,
    ltg: &mut Option<Ltg>,
    skipped: &mut u64,
    reused: &mut u64,
) -> (u8, Option<SynthesizedProtocol>) {
    // Validity is a per-transition property, so the conjunction of the
    // digit flags is exactly the `with_added_transitions` verdict — no
    // protocol needs to be materialized to tag an invalid candidate.
    if digits
        .iter()
        .enumerate()
        .any(|(j, &d)| !p.digit_valid[j][d])
    {
        return (TAG_INVALID, None);
    }
    // Cut-cone skip. Sound only under a free shared deadlock verdict,
    // because the full engine checks Theorem 4.2 *before* the trail: were
    // the verdict not free, the candidate's tag would be TAG_DEADLOCK.
    if p.set_deadlock_free
        && projected
            .iter()
            .any(|c| c.iter().all(|&(j, d)| digits[j] == d))
    {
        *skipped += 1;
        return (TAG_TRAIL, None);
    }
    ctx.space.fill(digits, added);
    let candidate = match ctx
        .protocol
        .with_added_transitions(ctx.name, added.iter().copied())
    {
        Ok(c) => c,
        // Unreachable (digits are pre-validated); kept so a validation
        // drift would surface as a wrong tag, not a panic.
        Err(_) => return (TAG_INVALID, None),
    };
    // From here on every verification step reuses shared or delta state
    // (set verdict, cloned RCG, retargeted t-graph) instead of a
    // from-scratch analysis.
    *reused += 1;
    if !p.set_deadlock_free {
        return (TAG_DEADLOCK, None);
    }
    let la = match ltg {
        Some(l) => {
            l.retarget(&candidate);
            LivelockAnalysis::analyze_with_ltg(&candidate, l)
        }
        None => {
            let l = ltg.insert(Ltg::with_rcg(&candidate, ctx.rcg.clone()));
            LivelockAnalysis::analyze_with_ltg(&candidate, l)
        }
    };
    if !la.certified_free() {
        // A trail witness certifies a cut — unless it came from the
        // over-approximating whole-support fallback and its used set is
        // not a pseudo-livelock union, in which case it transfers nothing.
        if let Some(trail) = la.trail() {
            let arcs = trail.t_arcs();
            if forms_pseudo_livelock_union(&arcs, ctx.protocol.space(), ctx.protocol.locality()) {
                let cut: Vec<LocalTransition> = arcs
                    .into_iter()
                    .filter(|&t| !ctx.protocol.has_transition(t))
                    .collect();
                if p.state.cuts.install(cut) {
                    p.state.cones_cut.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        return (TAG_TRAIL, None);
    }
    let verdict = if la.pseudo_livelock_support().is_empty() {
        SynthesisVerdict::NoPseudoLivelock
    } else {
        SynthesisVerdict::PseudoLivelocksWithoutTrails
    };
    let sol = SynthesizedProtocol {
        protocol: candidate,
        resolve: ctx.resolve.to_vec(),
        added: added.to_vec(),
        verdict,
    };
    (TAG_ACCEPT, Some(sol))
}

/// The `u8` candidate-value guard (see
/// [`SynthesisError::DomainTooLarge`]).
fn check_domain(domain_size: usize) -> Result<(), SynthesisError> {
    if domain_size > u8::MAX as usize {
        return Err(SynthesisError::DomainTooLarge { domain_size });
    }
    Ok(())
}

/// Exact Theorem 4.2 re-check after hypothetically resolving `resolve`:
/// the RCG induced over the remaining deadlocks must have no cycle through
/// an illegitimate state.
fn resolved_is_deadlock_free(protocol: &Protocol, rcg: &Rcg, resolve: &[LocalStateId]) -> bool {
    let mut remaining = protocol.local_deadlocks().as_bitset().clone();
    for s in resolve {
        remaining.remove(s.index());
    }
    let induced = rcg.graph().induced(&remaining);
    let on_cycles = selfstab_graph::scc::vertices_on_cycles(&induced);
    let illegit = protocol.legit().negated();
    on_cycles
        .iter()
        .all(|v| !illegit.holds(LocalStateId(v as u32)))
}

/// Convenience: the illegitimate local deadlocks of a protocol, as the
/// paper's `¬LC_r ∩ D_L` set.
pub fn illegitimate_deadlocks(protocol: &Protocol) -> LocalPredicate {
    protocol.illegitimate_deadlocks()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    fn empty(name: &str, d: usize, legit: &str) -> Protocol {
        Protocol::builder(name, Domain::numeric("x", d), Locality::unidirectional())
            .legit(legit)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn agreement_synthesis_finds_both_one_sided_solutions() {
        let p = empty("agreement", 2, "x[r] == x[r-1]");
        let out = LocalSynthesizer::default().synthesize(&p).unwrap();
        assert!(out.is_success());
        let sols = out.solutions();
        assert_eq!(
            sols.len(),
            2,
            "Resolve = {{01}} or {{10}}, one candidate each"
        );
        for s in sols {
            assert_eq!(s.resolve.len(), 1);
            assert_eq!(s.added.len(), 1);
            assert_eq!(s.verdict, SynthesisVerdict::NoPseudoLivelock);
        }
    }

    #[test]
    fn three_coloring_synthesis_fails() {
        let p = empty("3col", 3, "x[r] != x[r-1]");
        let out = LocalSynthesizer::default().synthesize(&p).unwrap();
        assert!(!out.is_success(), "the paper's §6.1 declares failure");
        // Resolve is forced to {00,11,22}; 2 candidates each => 8 combos.
        assert_eq!(out.combinations_tried(), 8);
        assert_eq!(out.rejected_by_trail(), 8);
        assert!(!out.truncated());
    }

    #[test]
    fn two_coloring_synthesis_fails() {
        let p = empty("2col", 2, "x[r] != x[r-1]");
        let out = LocalSynthesizer::default().synthesize(&p).unwrap();
        assert!(!out.is_success());
    }

    #[test]
    fn sum_not_two_synthesis_succeeds() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let out = LocalSynthesizer::default().synthesize(&p).unwrap();
        assert!(out.is_success());
        // 8 combinations; 4 rejected. The paper (§6.2) claims only
        // {t21,t10,t02} and {t01,t12,t20} fail, but {t20,t10,t02} and
        // {t20,t12,t02} admit the qualifying trail
        // ≪02,s,20,t,22,s,20,s,02,t,00,s≫ — and in fact *really livelock*
        // at every K ≥ 3 (global model checking confirms; see the
        // experiments test e11). Our checker correctly rejects them.
        assert_eq!(out.combinations_tried(), 8);
        assert_eq!(out.rejected_by_trail(), 4);
        assert_eq!(out.solutions().len(), 4);
        // The paper's accepted candidate {t21, t12, t01} is among them.
        let sp = p.space();
        let target: Vec<LocalTransition> = vec![
            LocalTransition::new(sp.encode(&[0, 2]), 1), // t21
            LocalTransition::new(sp.encode(&[1, 1]), 2), // t12
            LocalTransition::new(sp.encode(&[2, 0]), 1), // t01
        ];
        assert!(out.solutions().iter().any(|s| {
            let mut a = s.added.clone();
            a.sort_unstable();
            let mut t = target.clone();
            t.sort_unstable();
            a == t
        }));
    }

    #[test]
    fn resolve_sets_for_agreement() {
        let p = empty("agreement", 2, "x[r] == x[r-1]");
        let synth = LocalSynthesizer::default();
        let rcg = Rcg::build(&p);
        let sets = synth.resolve_sets(&p, &rcg);
        let sp = p.space();
        let s01 = sp.encode(&[0, 1]);
        let s10 = sp.encode(&[1, 0]);
        assert_eq!(sets.len(), 2);
        assert!(sets.contains(&vec![s01]));
        assert!(sets.contains(&vec![s10]));
    }

    #[test]
    fn already_stabilizing_protocol_needs_nothing() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let out = LocalSynthesizer::default().synthesize(&p).unwrap();
        assert!(out.is_success());
        assert_eq!(out.solutions()[0].added.len(), 0);
        assert_eq!(out.solutions()[0].resolve.len(), 0);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let out = LocalSynthesizer::new(SynthesisConfig {
            max_combinations: 2,
            ..SynthesisConfig::default()
        })
        .synthesize(&p)
        .unwrap();
        assert!(out.truncated());
        assert_eq!(out.combinations_tried(), 2);
    }

    /// The combination budget is exact at and around the boundary: exactly
    /// `min(budget, 8)` candidates verified, `truncated` iff work remained,
    /// and the solutions are always a prefix of the unbudgeted run's.
    #[test]
    fn combination_budget_is_exact_at_the_boundary() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let full = LocalSynthesizer::default().synthesize(&p).unwrap();
        assert_eq!(full.combinations_tried(), 8);
        assert_eq!(full.solutions().len(), 4);
        for budget in 0..=9 {
            let out = LocalSynthesizer::new(SynthesisConfig {
                max_combinations: budget,
                ..SynthesisConfig::default()
            })
            .synthesize(&p)
            .unwrap();
            assert_eq!(out.combinations_tried(), budget.min(8), "budget {budget}");
            assert_eq!(out.truncated(), budget < 8, "budget {budget}");
            // Every verified candidate is accounted for exactly once.
            assert_eq!(
                out.combinations_tried(),
                out.solutions().len() + out.rejected_by_trail(),
                "budget {budget}"
            );
            let n = out.solutions().len();
            assert_eq!(out.solutions(), &full.solutions()[..n], "budget {budget}");
        }
    }

    /// The solution budget cuts the canonical enumeration right after the
    /// accepted candidate that fills it, and `truncated` reflects exactly
    /// whether combinations were left unexplored.
    #[test]
    fn solution_budget_is_exact_at_the_boundary() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let full = LocalSynthesizer::default().synthesize(&p).unwrap();
        for cap in 1..=4usize {
            let out = LocalSynthesizer::new(SynthesisConfig {
                max_solutions: cap,
                ..SynthesisConfig::default()
            })
            .synthesize(&p)
            .unwrap();
            assert_eq!(out.solutions().len(), cap, "cap {cap}");
            assert_eq!(out.solutions(), &full.solutions()[..cap], "cap {cap}");
            assert_eq!(
                out.combinations_tried(),
                out.solutions().len() + out.rejected_by_trail(),
                "cap {cap}"
            );
            assert_eq!(
                out.truncated(),
                out.combinations_tried() < full.combinations_tried(),
                "cap {cap}"
            );
        }
    }

    /// The outcome is identical for every thread count (chunked merge is
    /// canonical).
    #[test]
    fn outcome_is_invariant_across_thread_counts() {
        for (d, legit) in [(3, "x[r] + x[r-1] != 2"), (3, "x[r] != x[r-1]")] {
            let p = empty("t", d, legit);
            let sequential = LocalSynthesizer::default().synthesize(&p).unwrap();
            for threads in [2, 4, 8] {
                let out = LocalSynthesizer::new(SynthesisConfig {
                    threads,
                    ..SynthesisConfig::default()
                })
                .synthesize(&p)
                .unwrap();
                assert_eq!(out, sequential, "threads {threads}");
            }
        }
    }

    /// Metered and unmetered runs produce the same outcome; the counters
    /// mirror the outcome's accounting and the phase span is recorded.
    #[test]
    fn metered_run_matches_unmetered_and_flushes_counters() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let plain = LocalSynthesizer::default().synthesize(&p).unwrap();
        let counters = SynthesisCounters::new();
        let phases = PhaseTimes::new();
        let metered = LocalSynthesizer::default()
            .synthesize_metered(&p, &CancelToken::new(), Some(&counters), Some(&phases))
            .unwrap();
        assert_eq!(metered, plain);
        let snap = counters.snapshot();
        assert_eq!(
            snap.resolve_sets_examined,
            plain.resolve_sets_tried() as u64
        );
        assert_eq!(snap.combinations_tried, plain.combinations_tried() as u64);
        assert_eq!(snap.rejected_by_trail, plain.rejected_by_trail() as u64);
        assert_eq!(snap.solutions_found, plain.solutions().len() as u64);
        assert_eq!(snap.rejected_invalid, 0);
        assert_eq!(snap.rejected_by_deadlock, 0);
        assert_eq!(phases.calls(Phase::Synthesis), 1);
    }

    /// A pre-cancelled token yields a clean truncated outcome immediately.
    #[test]
    fn pre_cancelled_token_truncates_cleanly() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = LocalSynthesizer::default()
            .synthesize_bounded(&p, &cancel)
            .unwrap();
        assert!(out.cancelled());
        assert!(out.truncated());
        assert_eq!(out.combinations_tried(), 0);
        assert!(out.solutions().is_empty());
    }

    /// The defensive u8 guard (protocol domains are already capped at 255
    /// by construction, so the error path is exercised directly).
    #[test]
    fn oversized_domain_is_a_typed_error() {
        assert_eq!(check_domain(255), Ok(()));
        let err = check_domain(300).unwrap_err();
        assert_eq!(err, SynthesisError::DomainTooLarge { domain_size: 300 });
        assert!(err.to_string().contains("300"), "{err}");
    }

    /// The pruned engine (the default) and the reference full-enumeration
    /// engine produce byte-identical outcomes on every corpus-shaped
    /// workload, at every thread count — pruning must be invisible.
    #[test]
    fn pruned_and_full_engines_agree_at_every_thread_count() {
        let workloads = [
            (2, "x[r] == x[r-1]"),
            (2, "x[r] != x[r-1]"),
            (3, "x[r] != x[r-1]"),
            (3, "x[r] + x[r-1] != 2"),
            (4, "x[r] != x[r-1]"),
            (4, "x[r] + x[r-1] != 3"),
        ];
        for (d, legit) in workloads {
            let p = empty("w", d, legit);
            let full = LocalSynthesizer::new(SynthesisConfig {
                prune: false,
                ..SynthesisConfig::default()
            })
            .synthesize(&p)
            .unwrap();
            for threads in [1, 2, 8] {
                let pruned = LocalSynthesizer::new(SynthesisConfig {
                    prune: true,
                    threads,
                    ..SynthesisConfig::default()
                })
                .synthesize(&p)
                .unwrap();
                assert_eq!(pruned, full, "d={d} legit=`{legit}` threads={threads}");
            }
        }
    }

    /// On a workload whose every candidate is trail-rejected (4-coloring),
    /// pruning actually cuts cones and skips verification work — while the
    /// recounted outcome still covers the whole combination space.
    #[test]
    fn pruning_cuts_cones_on_a_rejecting_workload() {
        let p = empty("4col", 4, "x[r] != x[r-1]");
        let counters = SynthesisCounters::new();
        let out = LocalSynthesizer::default()
            .synthesize_metered(&p, &CancelToken::new(), Some(&counters), None)
            .unwrap();
        assert!(!out.is_success());
        assert_eq!(out.combinations_tried(), out.rejected_by_trail());
        let snap = counters.snapshot();
        assert!(snap.cones_cut > 0, "no cut was ever installed");
        assert!(snap.candidates_skipped > 0, "no cone member was skipped");
        assert!(snap.delta_reuses > 0, "no verification reused delta state");
        // Skipped candidates are recounted, never dropped.
        assert_eq!(snap.combinations_tried, out.combinations_tried() as u64);
        assert_eq!(snap.rejected_by_trail, out.rejected_by_trail() as u64);
    }

    /// Satellite regression: a combination space whose product overflows
    /// `u64` is a typed error, not a saturated count that `decode` would
    /// misindex.
    #[test]
    fn combo_space_overflow_is_detected_not_saturated() {
        let t = |v: u8| LocalTransition::new(LocalStateId(0), v);
        // 2^64 combinations: 64 states with 2 options each.
        let per_state: Vec<Vec<LocalTransition>> = (0..64).map(|_| vec![t(0), t(1)]).collect();
        let space = ComboSpace {
            per_state: &per_state,
        };
        assert_eq!(space.checked_total(), None);
        // One state fewer fits exactly.
        let space = ComboSpace {
            per_state: &per_state[..63],
        };
        assert_eq!(space.checked_total(), Some(1u64 << 63));
        let err = SynthesisError::CombinationSpaceTooLarge { resolve_states: 64 };
        assert!(err.to_string().contains("64-state"), "{err}");
    }

    /// Satellite regression: a resolve state with zero candidate options
    /// yields `Some(0)` (immediately unsatisfiable) — the old saturating
    /// total fed `decode` a modulus of zero.
    #[test]
    fn zero_option_state_is_immediately_unsatisfiable() {
        let t = |v: u8| LocalTransition::new(LocalStateId(0), v);
        let per_state = vec![vec![t(0), t(1)], Vec::new()];
        let space = ComboSpace {
            per_state: &per_state,
        };
        assert_eq!(space.checked_total(), Some(0));
    }

    /// The cut index is append-only, subsumption-deduplicated, and
    /// saturates at capacity instead of erroring.
    #[test]
    fn cut_index_dedups_and_saturates() {
        let t = |s: u32, v: u8| LocalTransition::new(LocalStateId(s), v);
        let idx = CutIndex::new();
        assert!(idx.install(vec![t(0, 1), t(1, 2)]));
        // A superset cone is subsumed by the published cut.
        assert!(!idx.install(vec![t(0, 1), t(1, 2), t(2, 0)]));
        // The exact same cut is subsumed too.
        assert!(!idx.install(vec![t(0, 1), t(1, 2)]));
        // A *subset* is new information (a wider cone) and is published.
        assert!(idx.install(vec![t(0, 1)]));
        assert_eq!(idx.published().count(), 2);
        for s in 2..CUT_CAPACITY as u32 {
            assert!(idx.install(vec![t(s, 1)]));
        }
        assert!(!idx.install(vec![t(9999, 1)]), "capacity saturates");
        assert_eq!(idx.published().count(), CUT_CAPACITY);
    }

    /// Cut projection maps transitions to digit constraints, rejects cuts
    /// the set cannot express, and reports conflicting constraints as an
    /// empty cone.
    #[test]
    fn cut_projection_constrains_digits() {
        let s0 = LocalStateId(0);
        let s1 = LocalStateId(1);
        let t = |s: LocalStateId, v: u8| LocalTransition::new(s, v);
        let resolve = [s0, s1];
        let per_state = vec![vec![t(s0, 1), t(s0, 2)], vec![t(s1, 0), t(s1, 2)]];
        assert_eq!(
            project_cut(&[t(s0, 2), t(s1, 0)], &resolve, &per_state),
            Some(vec![(0, 1), (1, 0)])
        );
        // An arc that is nobody's candidate: inexpressible here.
        assert_eq!(project_cut(&[t(s0, 3)], &resolve, &per_state), None);
        // An arc from a state outside the resolve set: inexpressible.
        assert_eq!(
            project_cut(&[t(LocalStateId(7), 1)], &resolve, &per_state),
            None
        );
        // Two arcs competing for one digit: the cone is empty.
        assert_eq!(
            project_cut(&[t(s0, 1), t(s0, 2)], &resolve, &per_state),
            None
        );
        // The empty cut constrains nothing (dooms every candidate).
        assert_eq!(project_cut(&[], &resolve, &per_state), Some(Vec::new()));
    }

    /// The lazy mixed-radix enumeration matches the old materialized
    /// nested-loop order: state 0 is the most significant digit.
    #[test]
    fn combo_space_enumerates_in_nested_loop_order() {
        let t = |v: u8| LocalTransition::new(LocalStateId(0), v);
        let per_state = vec![vec![t(0), t(1)], vec![t(2)], vec![t(3), t(4), t(5)]];
        let space = ComboSpace {
            per_state: &per_state,
        };
        assert_eq!(space.checked_total(), Some(6));
        let mut materialized: Vec<Vec<LocalTransition>> = vec![Vec::new()];
        for opts in &per_state {
            let mut next = Vec::new();
            for partial in &materialized {
                for &t in opts {
                    let mut np = partial.clone();
                    np.push(t);
                    next.push(np);
                }
            }
            materialized = next;
        }
        let mut digits = Vec::new();
        let mut added = Vec::new();
        for (i, expected) in materialized.iter().enumerate() {
            space.decode(i as u64, &mut digits);
            space.fill(&digits, &mut added);
            assert_eq!(&added, expected, "decode at {i}");
        }
        // And the odometer agrees with decode.
        space.decode(0, &mut digits);
        for (i, expected) in materialized.iter().enumerate() {
            space.fill(&digits, &mut added);
            assert_eq!(&added, expected, "advance at {i}");
            space.advance(&mut digits);
        }
    }
}

//! The local synthesis methodology (Section 6).

use selfstab_core::deadlock::DeadlockAnalysis;
use selfstab_core::livelock::LivelockAnalysis;
use selfstab_core::rcg::Rcg;
use selfstab_graph::{
    cycles::{simple_cycles, CycleBudget},
    hitting::minimal_hitting_sets,
};
use selfstab_protocol::{LocalPredicate, LocalStateId, LocalTransition, Protocol};

/// Budgets and switches for the local synthesizer.
#[derive(Clone, Debug)]
pub struct SynthesisConfig {
    /// Maximum number of `Resolve` sets to try.
    pub max_resolve_sets: usize,
    /// Maximum number of candidate-transition combinations to try per
    /// `Resolve` set.
    pub max_combinations: usize,
    /// Stop after this many accepted solutions (use 1 for first-solution
    /// mode).
    pub max_solutions: usize,
    /// Budget for RCG cycle enumeration when computing `Resolve`.
    pub cycle_budget: CycleBudget,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            max_resolve_sets: 32,
            max_combinations: 4096,
            max_solutions: 64,
            cycle_budget: CycleBudget::default(),
        }
    }
}

/// How an accepted solution satisfied the livelock conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthesisVerdict {
    /// Step 4: the added t-arcs form no pseudo-livelock at all.
    NoPseudoLivelock,
    /// Step 5: pseudo-livelocks exist but none participates in a
    /// contiguous trail through an illegitimate state.
    PseudoLivelocksWithoutTrails,
}

/// One accepted revision `p_ss`.
#[derive(Clone, Debug)]
pub struct SynthesizedProtocol {
    /// The revised protocol (input transitions plus recovery transitions).
    pub protocol: Protocol,
    /// The `Resolve` set used.
    pub resolve: Vec<LocalStateId>,
    /// The recovery transitions added.
    pub added: Vec<LocalTransition>,
    /// How the livelock conditions were met.
    pub verdict: SynthesisVerdict,
}

/// The outcome of a synthesis run.
#[derive(Clone, Debug)]
pub struct SynthesisOutcome {
    solutions: Vec<SynthesizedProtocol>,
    resolve_sets_tried: usize,
    combinations_tried: usize,
    rejected_by_trail: usize,
    truncated: bool,
}

impl SynthesisOutcome {
    /// The accepted revisions (empty means the methodology declared
    /// failure, as it does for 3-coloring and 2-coloring).
    pub fn solutions(&self) -> &[SynthesizedProtocol] {
        &self.solutions
    }

    /// Whether any solution was found.
    pub fn is_success(&self) -> bool {
        !self.solutions.is_empty()
    }

    /// Number of `Resolve` sets examined.
    pub fn resolve_sets_tried(&self) -> usize {
        self.resolve_sets_tried
    }

    /// Number of candidate combinations examined.
    pub fn combinations_tried(&self) -> usize {
        self.combinations_tried
    }

    /// Combinations rejected because a qualifying contiguous trail exists.
    pub fn rejected_by_trail(&self) -> usize {
        self.rejected_by_trail
    }

    /// `true` if a budget limit stopped the search early.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// The Section 6 local synthesizer.
///
/// See the crate docs for the algorithm; all reasoning happens in the local
/// state space, so the cost is independent of any ring size and the
/// accepted solutions are *generalizable by construction*.
#[derive(Clone, Debug, Default)]
pub struct LocalSynthesizer {
    config: SynthesisConfig,
}

impl LocalSynthesizer {
    /// Creates a synthesizer with the given budgets.
    pub fn new(config: SynthesisConfig) -> Self {
        LocalSynthesizer { config }
    }

    /// Computes the candidate `Resolve` sets: minimal sets of illegitimate
    /// local deadlocks hitting every RCG cycle (over local deadlocks) that
    /// passes through an illegitimate state.
    ///
    /// Each returned set is re-verified exactly (Theorem 4.2 via SCCs), so
    /// the result is correct even if cycle enumeration was truncated.
    pub fn resolve_sets(&self, protocol: &Protocol, rcg: &Rcg) -> Vec<Vec<LocalStateId>> {
        let deadlocks = protocol.local_deadlocks();
        let illegit = protocol.legit().negated();
        let induced = rcg.induced(&deadlocks);
        let enumeration = simple_cycles(&induced, self.config.cycle_budget);

        // Families: for each bad cycle, the illegitimate deadlocks on it.
        let mut families: Vec<Vec<usize>> = Vec::new();
        for cycle in &enumeration.cycles {
            let bad: Vec<usize> = cycle
                .iter()
                .copied()
                .filter(|&v| illegit.holds(LocalStateId(v as u32)))
                .collect();
            if !bad.is_empty() {
                families.push(bad);
            }
        }
        if families.is_empty() {
            return vec![Vec::new()]; // already deadlock-free for all K
        }
        let sets = minimal_hitting_sets(&families, self.config.max_resolve_sets, usize::MAX);

        // Exact re-verification (covers the truncated-enumeration case):
        // removing the Resolve states must leave no bad cycle.
        sets.into_iter()
            .map(|s| {
                s.into_iter()
                    .map(|v| LocalStateId(v as u32))
                    .collect::<Vec<_>>()
            })
            .filter(|resolve: &Vec<LocalStateId>| resolved_is_deadlock_free(protocol, rcg, resolve))
            .collect()
    }

    /// Candidate recovery transitions out of `state`: every changed value
    /// whose target state lies outside `Resolve` (step 3 — guarantees the
    /// added actions are self-disabling).
    pub fn candidates(
        &self,
        protocol: &Protocol,
        resolve: &[LocalStateId],
        state: LocalStateId,
    ) -> Vec<LocalTransition> {
        let space = protocol.space();
        let loc = protocol.locality();
        let current = space.value_at(state, loc.center());
        (0..space.domain_size() as u8)
            .filter(|&v| v != current)
            .map(|v| LocalTransition::new(state, v))
            .filter(|t| !resolve.contains(&t.target_state(space, loc)))
            .collect()
    }

    /// Runs the full methodology.
    pub fn synthesize(&self, protocol: &Protocol) -> SynthesisOutcome {
        let rcg = Rcg::build(protocol);
        let mut outcome = SynthesisOutcome {
            solutions: Vec::new(),
            resolve_sets_tried: 0,
            combinations_tried: 0,
            rejected_by_trail: 0,
            truncated: false,
        };

        for resolve in self.resolve_sets(protocol, &rcg) {
            if outcome.resolve_sets_tried >= self.config.max_resolve_sets
                || outcome.solutions.len() >= self.config.max_solutions
            {
                outcome.truncated = true;
                break;
            }
            outcome.resolve_sets_tried += 1;

            // Per-state candidates; a state without candidates kills this
            // Resolve set.
            let per_state: Vec<Vec<LocalTransition>> = resolve
                .iter()
                .map(|&s| self.candidates(protocol, &resolve, s))
                .collect();
            if per_state.iter().any(Vec::is_empty) {
                continue;
            }

            // Enumerate one-choice-per-state combinations.
            let mut combos: Vec<Vec<LocalTransition>> = vec![Vec::new()];
            for opts in &per_state {
                let mut next = Vec::new();
                for partial in &combos {
                    for &t in opts {
                        if next.len() >= self.config.max_combinations {
                            outcome.truncated = true;
                            break;
                        }
                        let mut np = partial.clone();
                        np.push(t);
                        next.push(np);
                    }
                }
                combos = next;
            }

            for added in combos {
                if outcome.combinations_tried >= self.config.max_combinations
                    || outcome.solutions.len() >= self.config.max_solutions
                {
                    outcome.truncated = true;
                    break;
                }
                outcome.combinations_tried += 1;

                let name = format!("{}-ss", protocol.name());
                let candidate = match protocol.with_added_transitions(&name, added.iter().copied())
                {
                    Ok(p) => p,
                    Err(_) => continue,
                };

                // Deadlock-freedom must hold (it does by construction of
                // Resolve; re-checked exactly for robustness).
                let da = DeadlockAnalysis::analyze(&candidate);
                if !da.is_free_for_all_k() {
                    continue;
                }

                // Steps 4–5: the Theorem 5.14 certificate distinguishes NPL
                // (empty pseudo-livelock support among the added arcs) from
                // PL (support exists but no qualifying trail).
                let la = LivelockAnalysis::analyze(&candidate);
                if !la.certified_free() {
                    outcome.rejected_by_trail += 1;
                    continue;
                }
                let verdict = if la.pseudo_livelock_support().is_empty() {
                    SynthesisVerdict::NoPseudoLivelock
                } else {
                    SynthesisVerdict::PseudoLivelocksWithoutTrails
                };
                outcome.solutions.push(SynthesizedProtocol {
                    protocol: candidate,
                    resolve: resolve.clone(),
                    added,
                    verdict,
                });
            }
        }
        outcome
    }
}

/// Exact Theorem 4.2 re-check after hypothetically resolving `resolve`:
/// the RCG induced over the remaining deadlocks must have no cycle through
/// an illegitimate state.
fn resolved_is_deadlock_free(protocol: &Protocol, rcg: &Rcg, resolve: &[LocalStateId]) -> bool {
    let mut remaining = protocol.local_deadlocks().as_bitset().clone();
    for s in resolve {
        remaining.remove(s.index());
    }
    let induced = rcg.graph().induced(&remaining);
    let on_cycles = selfstab_graph::scc::vertices_on_cycles(&induced);
    let illegit = protocol.legit().negated();
    on_cycles
        .iter()
        .all(|v| !illegit.holds(LocalStateId(v as u32)))
}

/// Convenience: the illegitimate local deadlocks of a protocol, as the
/// paper's `¬LC_r ∩ D_L` set.
pub fn illegitimate_deadlocks(protocol: &Protocol) -> LocalPredicate {
    protocol.illegitimate_deadlocks()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    fn empty(name: &str, d: usize, legit: &str) -> Protocol {
        Protocol::builder(name, Domain::numeric("x", d), Locality::unidirectional())
            .legit(legit)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn agreement_synthesis_finds_both_one_sided_solutions() {
        let p = empty("agreement", 2, "x[r] == x[r-1]");
        let out = LocalSynthesizer::default().synthesize(&p);
        assert!(out.is_success());
        let sols = out.solutions();
        assert_eq!(
            sols.len(),
            2,
            "Resolve = {{01}} or {{10}}, one candidate each"
        );
        for s in sols {
            assert_eq!(s.resolve.len(), 1);
            assert_eq!(s.added.len(), 1);
            assert_eq!(s.verdict, SynthesisVerdict::NoPseudoLivelock);
        }
    }

    #[test]
    fn three_coloring_synthesis_fails() {
        let p = empty("3col", 3, "x[r] != x[r-1]");
        let out = LocalSynthesizer::default().synthesize(&p);
        assert!(!out.is_success(), "the paper's §6.1 declares failure");
        // Resolve is forced to {00,11,22}; 2 candidates each => 8 combos.
        assert_eq!(out.combinations_tried(), 8);
        assert_eq!(out.rejected_by_trail(), 8);
    }

    #[test]
    fn two_coloring_synthesis_fails() {
        let p = empty("2col", 2, "x[r] != x[r-1]");
        let out = LocalSynthesizer::default().synthesize(&p);
        assert!(!out.is_success());
    }

    #[test]
    fn sum_not_two_synthesis_succeeds() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let out = LocalSynthesizer::default().synthesize(&p);
        assert!(out.is_success());
        // 8 combinations; 4 rejected. The paper (§6.2) claims only
        // {t21,t10,t02} and {t01,t12,t20} fail, but {t20,t10,t02} and
        // {t20,t12,t02} admit the qualifying trail
        // ≪02,s,20,t,22,s,20,s,02,t,00,s≫ — and in fact *really livelock*
        // at every K ≥ 3 (global model checking confirms; see the
        // experiments test e11). Our checker correctly rejects them.
        assert_eq!(out.combinations_tried(), 8);
        assert_eq!(out.rejected_by_trail(), 4);
        assert_eq!(out.solutions().len(), 4);
        // The paper's accepted candidate {t21, t12, t01} is among them.
        let sp = p.space();
        let target: Vec<LocalTransition> = vec![
            LocalTransition::new(sp.encode(&[0, 2]), 1), // t21
            LocalTransition::new(sp.encode(&[1, 1]), 2), // t12
            LocalTransition::new(sp.encode(&[2, 0]), 1), // t01
        ];
        assert!(out.solutions().iter().any(|s| {
            let mut a = s.added.clone();
            a.sort_unstable();
            let mut t = target.clone();
            t.sort_unstable();
            a == t
        }));
    }

    #[test]
    fn resolve_sets_for_agreement() {
        let p = empty("agreement", 2, "x[r] == x[r-1]");
        let synth = LocalSynthesizer::default();
        let rcg = Rcg::build(&p);
        let sets = synth.resolve_sets(&p, &rcg);
        let sp = p.space();
        let s01 = sp.encode(&[0, 1]);
        let s10 = sp.encode(&[1, 0]);
        assert_eq!(sets.len(), 2);
        assert!(sets.contains(&vec![s01]));
        assert!(sets.contains(&vec![s10]));
    }

    #[test]
    fn already_stabilizing_protocol_needs_nothing() {
        let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
            .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        let out = LocalSynthesizer::default().synthesize(&p);
        assert!(out.is_success());
        assert_eq!(out.solutions()[0].added.len(), 0);
        assert_eq!(out.solutions()[0].resolve.len(), 0);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let p = empty("sn2", 3, "x[r] + x[r-1] != 2");
        let out = LocalSynthesizer::new(SynthesisConfig {
            max_combinations: 2,
            ..SynthesisConfig::default()
        })
        .synthesize(&p);
        assert!(out.truncated());
        assert!(out.combinations_tried() <= 2);
    }
}

//! Automated addition of convergence to parameterized ring protocols.
//!
//! Implements the Section 6 methodology of Farahat & Ebnenasir (ICDCS
//! 2012): given a non-stabilizing protocol `p` and a locally conjunctive
//! legitimate predicate closed in `p`, synthesize a revision `p_ss` that
//! strongly converges for **every** ring size, reasoning only in the local
//! state space:
//!
//! 1. compute the local deadlocks and the RCG induced over them;
//! 2. choose `Resolve` — a minimal set of *illegitimate* local deadlocks
//!    whose resolution breaks every RCG cycle through an illegitimate state
//!    (a minimal feedback/hitting set, per Theorem 4.2);
//! 3. generate candidate recovery transitions out of each `Resolve` state
//!    (self-disabling: targets outside `Resolve`);
//! 4. accept a candidate set if its t-arcs form no pseudo-livelock (*NPL*),
//!    or
//! 5. accept if pseudo-livelocks exist but none participates in a
//!    contiguous trail through an illegitimate state (*PL*, the
//!    contrapositive of Theorem 5.14); otherwise reject.
//!
//! The [`global`] module provides the STSyn-like baseline the paper
//! contrasts with: the same candidate space, but verified by explicit
//! global model checking at one fixed ring size — which is exactly how
//! non-generalizable protocols like Example 4.3 come about.
//!
//! # Examples
//!
//! Synthesizing convergence for binary agreement finds the two solutions
//! the paper derives (include `t01` *or* `t10`, but not both):
//!
//! ```
//! use selfstab_protocol::{Domain, Locality, Protocol};
//! use selfstab_synth::{LocalSynthesizer, SynthesisConfig};
//!
//! let p = Protocol::builder("agreement", Domain::numeric("x", 2), Locality::unidirectional())
//!     .legit("x[r] == x[r-1]")?
//!     .build()?;
//! let outcome = LocalSynthesizer::new(SynthesisConfig::default()).synthesize(&p)?;
//! let solutions = outcome.solutions();
//! assert_eq!(solutions.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnose;
pub mod global;
pub mod local;

pub use diagnose::{reconstruct_trail, ReconstructionReport};
pub use global::{GlobalSynthesisOutcome, GlobalSynthesizer};
pub use local::{
    LocalSynthesizer, SynthesisConfig, SynthesisError, SynthesisOutcome, SynthesisVerdict,
    SynthesizedProtocol,
};

//! The fixed-`K` global baseline synthesizer (STSyn-like).
//!
//! This is the kind of tool the paper's authors used to produce Examples
//! 4.2 and 4.3: it explores the same candidate space as the local
//! methodology, but accepts a candidate by *global model checking at one
//! fixed ring size*. Solutions are correct at that size — and may break at
//! other sizes, which is precisely the non-generalizability phenomenon
//! (Example 4.3 stabilizes at `K = 5` and deadlocks at `K = 6`).
//!
//! Its cost also scales as `d^K`, which the scaling benchmarks (experiment
//! E12) contrast with the `K`-independent local method.

use selfstab_core::rcg::Rcg;
use selfstab_global::{check::ConvergenceReport, GlobalError, RingInstance};
use selfstab_protocol::{LocalStateId, LocalTransition, Protocol};

use crate::local::{ComboSpace, LocalSynthesizer, SynthesisConfig};

/// A solution of the global baseline synthesizer.
#[derive(Clone, Debug)]
pub struct GlobalSynthesizedProtocol {
    /// The revised protocol.
    pub protocol: Protocol,
    /// The recovery transitions added.
    pub added: Vec<LocalTransition>,
    /// The ring size at which the solution was verified.
    pub verified_at: usize,
}

/// The outcome of a global-baseline synthesis run.
#[derive(Clone, Debug)]
pub struct GlobalSynthesisOutcome {
    solutions: Vec<GlobalSynthesizedProtocol>,
    combinations_tried: usize,
    truncated: bool,
}

impl GlobalSynthesisOutcome {
    /// The accepted revisions (verified only at the synthesis ring size).
    pub fn solutions(&self) -> &[GlobalSynthesizedProtocol] {
        &self.solutions
    }

    /// Whether any solution was found.
    pub fn is_success(&self) -> bool {
        !self.solutions.is_empty()
    }

    /// Number of candidate combinations model-checked.
    pub fn combinations_tried(&self) -> usize {
        self.combinations_tried
    }

    /// `true` if a budget limit stopped the search early.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// A synthesizer that verifies candidates by explicit-state model checking
/// at one fixed ring size (the paper's prior-work baseline).
#[derive(Clone, Debug)]
pub struct GlobalSynthesizer {
    config: SynthesisConfig,
    ring_size: usize,
}

impl GlobalSynthesizer {
    /// Creates a baseline synthesizer that verifies at `ring_size`.
    pub fn new(ring_size: usize, config: SynthesisConfig) -> Self {
        GlobalSynthesizer { config, ring_size }
    }

    /// Runs the baseline synthesis: same `Resolve`/candidate space as the
    /// local methodology, but each combination is accepted iff the global
    /// convergence check passes at the fixed ring size.
    ///
    /// # Errors
    ///
    /// Returns [`GlobalError`] if the global state space at the fixed size
    /// exceeds the limit.
    pub fn synthesize(&self, protocol: &Protocol) -> Result<GlobalSynthesisOutcome, GlobalError> {
        let rcg = Rcg::build(protocol);
        let local = LocalSynthesizer::new(self.config.clone());
        let mut outcome = GlobalSynthesisOutcome {
            solutions: Vec::new(),
            combinations_tried: 0,
            truncated: false,
        };

        let name = format!("{}-gss{}", protocol.name(), self.ring_size);
        for resolve in local.resolve_sets(protocol, &rcg) {
            if outcome.combinations_tried >= self.config.max_combinations
                || outcome.solutions.len() >= self.config.max_solutions
            {
                outcome.truncated = true;
                break;
            }
            let per_state: Vec<Vec<LocalTransition>> = resolve
                .iter()
                .map(|&s: &LocalStateId| {
                    local
                        .candidates(protocol, &resolve, s)
                        .expect("protocol domains are capped at 255 values")
                })
                .collect();
            if per_state.iter().any(Vec::is_empty) {
                continue;
            }

            // Stream the one-choice-per-state combinations lazily (same
            // mixed-radix order as the local engine's canonical enumeration).
            let space = ComboSpace {
                per_state: &per_state,
            };
            // An overflowing combination space cannot be streamed exactly;
            // the budget cap below would stop it anyway, so clamp to the
            // budget rather than erroring the whole baseline run.
            let total = space
                .checked_total()
                .unwrap_or(self.config.max_combinations as u64);
            let mut digits = Vec::new();
            let mut added = Vec::new();
            space.decode(0, &mut digits);
            for _ in 0..total {
                if outcome.combinations_tried >= self.config.max_combinations
                    || outcome.solutions.len() >= self.config.max_solutions
                {
                    outcome.truncated = true;
                    break;
                }
                outcome.combinations_tried += 1;
                space.fill(&digits, &mut added);
                space.advance(&mut digits);
                let candidate = match protocol.with_added_transitions(&name, added.iter().copied())
                {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let ring = RingInstance::symmetric(&candidate, self.ring_size)?;
                let report = ConvergenceReport::check(&ring);
                if report.self_stabilizing() {
                    outcome.solutions.push(GlobalSynthesizedProtocol {
                        protocol: candidate,
                        added: added.clone(),
                        verified_at: self.ring_size,
                    });
                }
            }
        }
        Ok(outcome)
    }
}

/// Cutoff-style verification baseline: checks strong self-stabilization by
/// explicit model checking at every ring size `2..=max_k`, returning the
/// first failing size (with its report) or `Ok(())`.
///
/// # Errors
///
/// Returns the failing ring size and its convergence report, or a
/// [`GlobalError`] (boxed in the report position's `Err`) when a state
/// space exceeds the limit — reported as size 0 with no report.
pub fn verify_up_to(
    protocol: &Protocol,
    max_k: usize,
) -> Result<(), (usize, Option<ConvergenceReport>)> {
    for k in 2..=max_k {
        match RingInstance::symmetric(protocol, k) {
            Err(_) => return Err((k, None)),
            Ok(ring) => {
                let report = ConvergenceReport::check(&ring);
                if !report.self_stabilizing() {
                    return Err((k, Some(report)));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::{Domain, Locality};

    fn empty_agreement() -> Protocol {
        Protocol::builder(
            "agreement",
            Domain::numeric("x", 2),
            Locality::unidirectional(),
        )
        .legit("x[r] == x[r-1]")
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn global_baseline_finds_solutions_at_fixed_k() {
        let p = empty_agreement();
        let out = GlobalSynthesizer::new(4, SynthesisConfig::default())
            .synthesize(&p)
            .unwrap();
        assert!(out.is_success());
        for s in out.solutions() {
            assert_eq!(s.verified_at, 4);
            assert!(verify_up_to(&s.protocol, 4).is_ok());
        }
    }

    #[test]
    fn global_baseline_produces_non_generalizable_artifacts() {
        // The non-generalizability trap the paper motivates with Example
        // 4.3: a solution verified at one size breaks at another. The
        // sum-not-two candidate {t20, t10, t02} converges at K=2 — so a
        // K=2 baseline accepts it — but livelocks at every K ≥ 3.
        let p = Protocol::builder("sn2", Domain::numeric("x", 3), Locality::unidirectional())
            .legit("x[r] + x[r-1] != 2")
            .unwrap()
            .build()
            .unwrap();
        let sp = p.space();
        let added = vec![
            LocalTransition::new(sp.encode(&[0, 2]), 0), // t20
            LocalTransition::new(sp.encode(&[1, 1]), 0), // t10
            LocalTransition::new(sp.encode(&[2, 0]), 2), // t02
        ];
        let candidate = p.with_added_transitions("trap", added.clone()).unwrap();
        assert!(verify_up_to(&candidate, 2).is_ok());
        let (k, report) = verify_up_to(&candidate, 3).unwrap_err();
        assert_eq!(k, 3);
        assert!(report.unwrap().livelock.is_some());

        // And the K=2 baseline synthesizer indeed emits this trap.
        let out = GlobalSynthesizer::new(2, SynthesisConfig::default())
            .synthesize(&p)
            .unwrap();
        assert!(out.solutions().iter().any(|s| {
            let mut a = s.added.clone();
            a.sort_unstable();
            let mut b = added.clone();
            b.sort_unstable();
            a == b
        }));
    }

    #[test]
    fn verify_up_to_passes_for_generalizable_solution() {
        let p = empty_agreement();
        let sp = p.space();
        let one = p
            .with_added_transitions("one", [LocalTransition::new(sp.encode(&[1, 0]), 1)])
            .unwrap();
        assert!(verify_up_to(&one, 8).is_ok());
    }
}

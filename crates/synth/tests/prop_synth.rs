//! Property tests: local synthesis emits only generalizable solutions.

use proptest::prelude::*;
use selfstab_protocol::{Domain, Locality, Protocol};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};

/// An empty protocol with a random non-trivial closed (trivially, since
/// empty) legitimate predicate over a unidirectional ring.
fn arb_empty_protocol(d: usize) -> impl Strategy<Value = Protocol> {
    let nstates = d * d;
    proptest::collection::vec(any::<bool>(), nstates).prop_filter_map(
        "legit must be non-empty",
        move |legit| {
            if !legit.iter().any(|&b| b) {
                return None;
            }
            Protocol::builder("rand", Domain::numeric("x", d), Locality::unidirectional())
                .legit_fn(|id, _| legit[id.index()])
                .build()
                .ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every solution of the local synthesizer is strongly self-stabilizing
    /// at every checked ring size — the generalizability guarantee.
    #[test]
    fn local_synthesis_solutions_are_generalizable(p in arb_empty_protocol(2)) {
        let out = LocalSynthesizer::new(SynthesisConfig {
            max_solutions: 8,
            ..SynthesisConfig::default()
        })
        .synthesize(&p);
        for s in out.solutions() {
            prop_assert!(
                selfstab_synth::global::verify_up_to(&s.protocol, 7).is_ok(),
                "local solution breaks globally: {}",
                s.protocol
            );
        }
    }

    /// Same over a 3-valued domain (smaller ring bound: d^K states).
    #[test]
    fn local_synthesis_solutions_are_generalizable_d3(p in arb_empty_protocol(3)) {
        let out = LocalSynthesizer::new(SynthesisConfig {
            max_solutions: 4,
            max_combinations: 256,
            ..SynthesisConfig::default()
        })
        .synthesize(&p);
        for s in out.solutions() {
            prop_assert!(
                selfstab_synth::global::verify_up_to(&s.protocol, 5).is_ok(),
                "local solution breaks globally: {}",
                s.protocol
            );
        }
    }

    /// The local solutions are a subset of the global baseline's solutions
    /// at any fixed size (the baseline accepts more, including
    /// non-generalizable ones).
    #[test]
    fn local_solutions_pass_global_baseline(p in arb_empty_protocol(2), k in 2usize..5) {
        let cfg = SynthesisConfig {
            max_solutions: 8,
            ..SynthesisConfig::default()
        };
        let local = LocalSynthesizer::new(cfg.clone()).synthesize(&p);
        if local.solutions().is_empty() {
            return Ok(());
        }
        let global = GlobalSynthesizer::new(k, cfg).synthesize(&p).unwrap();
        for s in local.solutions() {
            let mut a = s.added.clone();
            a.sort_unstable();
            prop_assert!(
                global.solutions().iter().any(|g| {
                    let mut b = g.added.clone();
                    b.sort_unstable();
                    a == b
                }) || global.truncated(),
                "a generalizable solution was missed by the global baseline at K={k}"
            );
        }
    }
}

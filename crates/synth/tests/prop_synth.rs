//! Property tests: local synthesis emits only generalizable solutions.

use proptest::prelude::*;
use selfstab_global::CancelToken;
use selfstab_protocol::{Domain, Locality, Protocol};
use selfstab_synth::{GlobalSynthesizer, LocalSynthesizer, SynthesisConfig};

/// An empty protocol with a random non-trivial closed (trivially, since
/// empty) legitimate predicate over a unidirectional ring.
fn arb_empty_protocol(d: usize) -> impl Strategy<Value = Protocol> {
    let nstates = d * d;
    proptest::collection::vec(any::<bool>(), nstates).prop_filter_map(
        "legit must be non-empty",
        move |legit| {
            if !legit.iter().any(|&b| b) {
                return None;
            }
            Protocol::builder("rand", Domain::numeric("x", d), Locality::unidirectional())
                .legit_fn(|id, _| legit[id.index()])
                .build()
                .ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every solution of the local synthesizer is strongly self-stabilizing
    /// at every checked ring size — the generalizability guarantee.
    #[test]
    fn local_synthesis_solutions_are_generalizable(p in arb_empty_protocol(2)) {
        let out = LocalSynthesizer::new(SynthesisConfig {
            max_solutions: 8,
            ..SynthesisConfig::default()
        })
        .synthesize(&p).unwrap();
        for s in out.solutions() {
            prop_assert!(
                selfstab_synth::global::verify_up_to(&s.protocol, 7).is_ok(),
                "local solution breaks globally: {}",
                s.protocol
            );
        }
    }

    /// Same over a 3-valued domain (smaller ring bound: d^K states).
    #[test]
    fn local_synthesis_solutions_are_generalizable_d3(p in arb_empty_protocol(3)) {
        let out = LocalSynthesizer::new(SynthesisConfig {
            max_solutions: 4,
            max_combinations: 256,
            ..SynthesisConfig::default()
        })
        .synthesize(&p).unwrap();
        for s in out.solutions() {
            prop_assert!(
                selfstab_synth::global::verify_up_to(&s.protocol, 5).is_ok(),
                "local solution breaks globally: {}",
                s.protocol
            );
        }
    }

    /// The local solutions are a subset of the global baseline's solutions
    /// at any fixed size (the baseline accepts more, including
    /// non-generalizable ones).
    #[test]
    fn local_solutions_pass_global_baseline(p in arb_empty_protocol(2), k in 2usize..5) {
        let cfg = SynthesisConfig {
            max_solutions: 8,
            ..SynthesisConfig::default()
        };
        let local = LocalSynthesizer::new(cfg.clone()).synthesize(&p).unwrap();
        if local.solutions().is_empty() {
            return Ok(());
        }
        let global = GlobalSynthesizer::new(k, cfg).synthesize(&p).unwrap();
        for s in local.solutions() {
            let mut a = s.added.clone();
            a.sort_unstable();
            prop_assert!(
                global.solutions().iter().any(|g| {
                    let mut b = g.added.clone();
                    b.sort_unstable();
                    a == b
                }) || global.truncated(),
                "a generalizable solution was missed by the global baseline at K={k}"
            );
        }
    }

    /// The deterministic-merge contract: the full [`SynthesisOutcome`] is
    /// invariant across worker-thread counts, for every random protocol.
    #[test]
    fn outcome_is_thread_count_invariant(p in arb_empty_protocol(2)) {
        let config = |threads| SynthesisConfig {
            max_solutions: 8,
            threads,
            ..SynthesisConfig::default()
        };
        let sequential = LocalSynthesizer::new(config(1)).synthesize(&p).unwrap();
        for threads in [2, 8] {
            let parallel = LocalSynthesizer::new(config(threads)).synthesize(&p).unwrap();
            prop_assert_eq!(
                &parallel, &sequential,
                "outcome diverged at {} threads", threads
            );
        }
    }

    /// The pruning contract: for every random protocol, worker-thread
    /// count, and budget cutoff, the pruned engine's [`SynthesisOutcome`]
    /// is identical to the reference full enumeration — cone-skipped
    /// candidates are recounted, never dropped, so even a budget that
    /// truncates mid-cone cannot perturb the counts or the solutions.
    #[test]
    fn pruning_is_invisible_across_threads_and_budgets(
        p in arb_empty_protocol(3),
        threads_pick in 0usize..3,
        budget_pick in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_pick];
        let max_combinations = [7usize, 64, 4096][budget_pick];
        let config = |prune| SynthesisConfig {
            max_solutions: 8,
            max_combinations,
            threads,
            prune,
            ..SynthesisConfig::default()
        };
        let full = LocalSynthesizer::new(config(false)).synthesize(&p).unwrap();
        let pruned = LocalSynthesizer::new(config(true)).synthesize(&p).unwrap();
        prop_assert_eq!(
            &pruned, &full,
            "pruning perturbed the outcome at {} threads, budget {}",
            threads, max_combinations
        );
    }

    /// Cancellation mid-prune: the same prefix-preservation contract as
    /// the unpruned engine, judged against the *unpruned* full run — a cut
    /// installed before the cancel point must not let the pruned engine
    /// lose, invent, or reorder anything in the verified prefix.
    #[test]
    fn cancellation_mid_prune_preserves_the_verified_prefix(
        p in arb_empty_protocol(2),
        delay_us in 0u64..200,
    ) {
        let config = SynthesisConfig {
            max_solutions: 8,
            threads: 4,
            prune: true,
            ..SynthesisConfig::default()
        };
        let full = LocalSynthesizer::new(SynthesisConfig {
            prune: false,
            ..config.clone()
        })
        .synthesize(&p).unwrap();

        let cancel = std::sync::Arc::new(CancelToken::new());
        let canceller = {
            let cancel = std::sync::Arc::clone(&cancel);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                cancel.cancel();
            })
        };
        let out = LocalSynthesizer::new(config)
            .synthesize_bounded(&p, &cancel)
            .unwrap();
        canceller.join().unwrap();

        if out.cancelled() {
            prop_assert!(out.truncated(), "a cancelled outcome must be truncated");
        } else {
            prop_assert_eq!(&out, &full, "an uncancelled pruned run must match the full run");
        }
        prop_assert!(out.solutions().len() <= full.solutions().len());
        for (got, want) in out.solutions().iter().zip(full.solutions()) {
            prop_assert_eq!(got, want, "cancellation mid-prune reordered or lost a solution");
        }
        prop_assert!(out.combinations_tried() <= full.combinations_tried());
    }

    /// Cancellation mid-run yields a clean truncated outcome whose solutions
    /// are a prefix of the uncancelled run's — no solution below the cancel
    /// point is ever lost, and nothing beyond the verified prefix is
    /// invented.
    #[test]
    fn cancellation_preserves_the_verified_prefix(
        p in arb_empty_protocol(2),
        delay_us in 0u64..200,
    ) {
        let config = SynthesisConfig {
            max_solutions: 8,
            threads: 4,
            ..SynthesisConfig::default()
        };
        let full = LocalSynthesizer::new(config.clone()).synthesize(&p).unwrap();

        let cancel = std::sync::Arc::new(CancelToken::new());
        let canceller = {
            let cancel = std::sync::Arc::clone(&cancel);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                cancel.cancel();
            })
        };
        let out = LocalSynthesizer::new(config)
            .synthesize_bounded(&p, &cancel)
            .unwrap();
        canceller.join().unwrap();

        if out.cancelled() {
            prop_assert!(out.truncated(), "a cancelled outcome must be truncated");
        } else {
            prop_assert_eq!(&out, &full, "an uncancelled run must match the full run");
        }
        // Either way the solutions are a prefix of the full enumeration.
        prop_assert!(out.solutions().len() <= full.solutions().len());
        for (got, want) in out.solutions().iter().zip(full.solutions()) {
            prop_assert_eq!(got, want, "cancellation reordered or lost a solution");
        }
        prop_assert!(out.combinations_tried() <= full.combinations_tried());
    }
}

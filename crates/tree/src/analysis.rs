//! The deadlock-freedom theorem for oriented trees.
//!
//! **Theorem (trees).** A tree protocol has a global deadlock outside `I`
//! on *some* rooted tree iff
//!
//! 1. some root value `v` is an illegitimate root deadlock
//!    (`¬root_enabled(v) ∧ ¬LC_root(v)` — the single-node witness), or
//! 2. some root value `v` is a root deadlock and an illegitimate deadlock
//!    window is reachable from a seed window `⟨v, c⟩` through deadlock
//!    windows along the parent→child continuation relation
//!    (`⟨a, b⟩ → ⟨b, c⟩`).
//!
//! *Proof sketch.* (⇐) Case 1 is a one-node tree. For case 2 realize the
//! reachability path as a **path tree**: root value `v`, then one child per
//! level carrying the path's window centers — every node is deadlocked by
//! construction and the final node's window is illegitimate, so the
//! valuation is a global deadlock outside `I`. (⇒) In a deadlocked tree
//! outside `I`, the root is a root deadlock; either the root is
//! illegitimate (case 1) or some node `i` has an illegitimate window, and
//! the root-to-`i` path's windows are deadlocked, consecutive-continuation
//! seeds included (case 2). ∎
//!
//! Compared to rings (Theorem 4.2), *cycles* become *reachability*: trees
//! need not close, so any reachable bad window suffices — and conversely
//! trees cannot realize cyclic corruption, which is why the paper calls
//! acyclic topologies easier \[21\]. The theorem is exhaustively
//! cross-validated against every rooted tree of up to 6 nodes in
//! `tests/prop_tree.rs`.

use selfstab_protocol::{LocalStateId, Value};

use crate::protocol::TreeProtocol;

/// A witness that some tree has a global deadlock outside `I`: a path tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDeadlockWitness {
    /// The valuation along the witness path tree, root first.
    pub path_values: Vec<Value>,
}

impl TreeDeadlockWitness {
    /// The number of nodes of the witness tree.
    pub fn len(&self) -> usize {
        self.path_values.len()
    }

    /// Whether the witness is empty (never).
    pub fn is_empty(&self) -> bool {
        self.path_values.is_empty()
    }
}

/// The tree deadlock-freedom analysis (exact, like Theorem 4.2).
#[derive(Clone, Debug)]
pub struct TreeDeadlockAnalysis {
    witness: Option<TreeDeadlockWitness>,
}

impl TreeDeadlockAnalysis {
    /// Runs the reachability check of the tree theorem.
    pub fn analyze(protocol: &TreeProtocol) -> Self {
        let space = protocol.space();
        let d = protocol.domain().size();

        // Case 1: illegitimate root deadlock.
        for v in 0..d as Value {
            if !protocol.root_enabled(v) && !protocol.root_legit(v) {
                return TreeDeadlockAnalysis {
                    witness: Some(TreeDeadlockWitness {
                        path_values: vec![v],
                    }),
                };
            }
        }

        // Case 2: reachability through deadlock windows.
        let deadlocks = protocol.node_deadlocks();
        let is_bad = |w: LocalStateId| deadlocks.holds(w) && !protocol.node_legit().holds(w);

        // BFS over deadlock windows from the seeds of every deadlocked root
        // value; parents[] reconstructs the path.
        let n = space.len();
        let mut pred: Vec<Option<LocalStateId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for v in 0..d as Value {
            if protocol.root_enabled(v) {
                continue;
            }
            for c in 0..d as Value {
                let w = space.encode(&[v, c]);
                if deadlocks.holds(w) && !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        let mut hit = None;
        'bfs: while let Some(w) = queue.pop_front() {
            if is_bad(w) {
                hit = Some(w);
                break 'bfs;
            }
            let b = space.value_at(w, 1);
            for c in 0..d as Value {
                let next = space.encode(&[b, c]);
                if deadlocks.holds(next) && !seen[next.index()] {
                    seen[next.index()] = true;
                    pred[next.index()] = Some(w);
                    queue.push_back(next);
                }
            }
        }

        let witness = hit.map(|w| {
            // Reconstruct path windows, then the value sequence.
            let mut windows = vec![w];
            let mut cur = w;
            while let Some(p) = pred[cur.index()] {
                windows.push(p);
                cur = p;
            }
            windows.reverse();
            let mut values = vec![space.value_at(windows[0], 0)]; // the root
            for w in windows {
                values.push(space.value_at(w, 1));
            }
            TreeDeadlockWitness {
                path_values: values,
            }
        });
        TreeDeadlockAnalysis { witness }
    }

    /// The theorem's verdict: `true` iff no rooted tree of any shape or
    /// size has a global deadlock outside `I`.
    pub fn is_free_for_all_trees(&self) -> bool {
        self.witness.is_none()
    }

    /// The path-tree witness, when not free.
    pub fn witness(&self) -> Option<&TreeDeadlockWitness> {
        self.witness.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TreeInstance;
    use crate::shapes::TreeShape;
    use selfstab_protocol::Domain;

    fn agreement() -> TreeProtocol {
        TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap()
    }

    #[test]
    fn tree_agreement_is_free() {
        let p = agreement();
        let a = TreeDeadlockAnalysis::analyze(&p);
        assert!(a.is_free_for_all_trees());
    }

    #[test]
    fn empty_protocol_yields_a_witness() {
        let p = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        let a = TreeDeadlockAnalysis::analyze(&p);
        let w = a
            .witness()
            .expect("⟨0,1⟩ is an unreacted illegitimate window");
        // The witness realizes as a genuine bad deadlock on a path tree.
        let shape = TreeShape::path(w.len());
        let inst = TreeInstance::new(&p, &shape);
        assert!(inst.is_deadlock(&w.path_values));
        assert!(!inst.is_legit(&w.path_values));
    }

    #[test]
    fn illegitimate_root_deadlock_is_found() {
        let p = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_legit_values([1]) // root must hold 1 but never moves
            .build()
            .unwrap();
        let a = TreeDeadlockAnalysis::analyze(&p);
        let w = a.witness().unwrap();
        assert_eq!(w.path_values, vec![0]);
    }

    #[test]
    fn root_repair_restores_freedom() {
        let p = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_transition(0, 1)
            .unwrap() // the root climbs to 1
            .root_legit_values([1])
            .build()
            .unwrap();
        let a = TreeDeadlockAnalysis::analyze(&p);
        assert!(a.is_free_for_all_trees(), "{:?}", a.witness());
    }
}

//! The tree-protocol model: a non-root template over `⟨parent, self⟩`
//! windows plus a root behavior over the root's own value.

use selfstab_protocol::{
    Domain, GuardedCommand, LocalPredicate, LocalStateId, LocalStateSpace, LocalTransition,
    Locality, Protocol, ProtocolError, Value,
};

/// A parameterized protocol on oriented rooted trees.
///
/// Non-root processes are instances of a representative process reading
/// `⟨x_parent, x_self⟩` — syntactically the unidirectional-ring window, with
/// `x[r-1]` denoting the parent. The root reads only its own variable; its
/// transitions are value rewrites `v → v'` guarded by `v`.
#[derive(Clone, Debug)]
pub struct TreeProtocol {
    node: Protocol,
    root_targets: Vec<Vec<Value>>,
    root_legit: Vec<bool>,
}

impl TreeProtocol {
    /// Starts building a tree protocol over `domain`.
    pub fn builder(domain: Domain) -> TreeProtocolBuilder {
        TreeProtocolBuilder {
            builder: Some(Protocol::builder(
                "tree-node",
                domain.clone(),
                Locality::unidirectional(),
            )),
            domain,
            root_transitions: Vec::new(),
            root_legit: None,
        }
    }

    /// The variable domain.
    pub fn domain(&self) -> &Domain {
        self.node.domain()
    }

    /// The non-root template, as a unidirectional-window protocol
    /// (`x[r-1]` = parent).
    pub fn node(&self) -> &Protocol {
        &self.node
    }

    /// The window codec of non-root processes.
    pub fn space(&self) -> &LocalStateSpace {
        self.node.space()
    }

    /// The values the root may rewrite `v` to.
    pub fn root_targets(&self, v: Value) -> &[Value] {
        &self.root_targets[v as usize]
    }

    /// Returns `true` if the root is enabled at value `v`.
    pub fn root_enabled(&self, v: Value) -> bool {
        !self.root_targets[v as usize].is_empty()
    }

    /// Returns `true` if root value `v` satisfies `LC_root`.
    pub fn root_legit(&self, v: Value) -> bool {
        self.root_legit[v as usize]
    }

    /// The non-root local predicate `LC` as a predicate over windows.
    pub fn node_legit(&self) -> &LocalPredicate {
        self.node.legit()
    }

    /// The non-root local deadlock windows.
    pub fn node_deadlocks(&self) -> LocalPredicate {
        self.node.local_deadlocks()
    }

    /// The targets of the non-root template at window `w`.
    pub fn node_targets(&self, w: LocalStateId) -> &[Value] {
        self.node.transitions_from(w)
    }
}

/// Builder for [`TreeProtocol`]; see [`TreeProtocol::builder`].
#[derive(Debug)]
pub struct TreeProtocolBuilder {
    builder: Option<selfstab_protocol::ProtocolBuilder>,
    domain: Domain,
    root_transitions: Vec<(Value, Value)>,
    root_legit: Option<Vec<bool>>,
}

impl TreeProtocolBuilder {
    /// Adds a non-root guarded command; `x[r-1]` denotes the parent's
    /// variable and `x[r]` the process's own.
    ///
    /// # Errors
    ///
    /// Propagates DSL errors.
    pub fn node_action(mut self, source: &str) -> Result<Self, ProtocolError> {
        self.builder = Some(
            self.builder
                .take()
                .expect("builder present")
                .action(source)?,
        );
        Ok(self)
    }

    /// Sets the non-root local predicate from a DSL expression over
    /// `x[r-1]` (parent) and `x[r]`.
    ///
    /// # Errors
    ///
    /// Propagates DSL errors.
    pub fn node_legit(mut self, source: &str) -> Result<Self, ProtocolError> {
        self.builder = Some(
            self.builder
                .take()
                .expect("builder present")
                .legit(source)?,
        );
        Ok(self)
    }

    /// Sets the non-root local predicate from a closure over window ids.
    pub fn node_legit_from<F>(mut self, mut f: F) -> Self
    where
        F: FnMut(LocalStateId) -> bool,
    {
        self.builder = Some(
            self.builder
                .take()
                .expect("builder present")
                .legit_fn(|id, _| f(id)),
        );
        self
    }

    /// Adds a root transition `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Invalid`] for identity or out-of-domain
    /// rewrites.
    pub fn root_transition(mut self, from: Value, to: Value) -> Result<Self, ProtocolError> {
        let d = self.domain.size();
        if from as usize >= d || to as usize >= d {
            return Err(ProtocolError::Invalid {
                message: format!("root transition {from}->{to} outside domain"),
            });
        }
        if from == to {
            return Err(ProtocolError::Invalid {
                message: format!("identity root transition at {from}"),
            });
        }
        self.root_transitions.push((from, to));
        Ok(self)
    }

    /// Declares which root values are legitimate.
    pub fn root_legit_values<I: IntoIterator<Item = Value>>(mut self, values: I) -> Self {
        let mut legit = vec![false; self.domain.size()];
        for v in values {
            legit[v as usize] = true;
        }
        self.root_legit = Some(legit);
        self
    }

    /// Convenience: the root never moves and every root value is
    /// legitimate (the common case where only edges carry constraints).
    pub fn root_silent_and_all_legit(mut self) -> Self {
        self.root_legit = Some(vec![true; self.domain.size()]);
        self
    }

    /// Finalizes the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Invalid`] if the node predicate or root
    /// predicate is missing/empty.
    pub fn build(self) -> Result<TreeProtocol, ProtocolError> {
        let node = self.builder.expect("builder present").build()?;
        let root_legit = self.root_legit.ok_or_else(|| ProtocolError::Invalid {
            message: "no root legitimacy declared (root_legit_values/root_silent_and_all_legit)"
                .into(),
        })?;
        if !root_legit.iter().any(|&b| b) {
            return Err(ProtocolError::Invalid {
                message: "no root value is legitimate".into(),
            });
        }
        let mut root_targets = vec![Vec::new(); node.domain().size()];
        for (from, to) in self.root_transitions {
            if !root_targets[from as usize].contains(&to) {
                root_targets[from as usize].push(to);
            }
        }
        Ok(TreeProtocol {
            node,
            root_targets,
            root_legit,
        })
    }
}

/// Convenience: the window id for `⟨parent, self⟩` values.
pub fn window(space: &LocalStateSpace, parent: Value, own: Value) -> LocalStateId {
    space.encode(&[parent, own])
}

/// Convenience: a node transition from `⟨parent, own⟩` writing `to`.
pub fn node_transition(
    space: &LocalStateSpace,
    parent: Value,
    own: Value,
    to: Value,
) -> LocalTransition {
    LocalTransition::new(window(space, parent, own), to)
}

/// Re-exported for building ad-hoc node actions in tests.
pub type NodeAction = GuardedCommand;

#[cfg(test)]
mod tests {
    use super::*;

    fn agreement() -> TreeProtocol {
        TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap()
    }

    #[test]
    fn node_template_shape() {
        let p = agreement();
        assert_eq!(p.space().len(), 4);
        assert_eq!(p.node().transition_count(), 2);
        assert!(p.root_legit(0) && p.root_legit(1));
        assert!(!p.root_enabled(0));
    }

    #[test]
    fn root_transitions_validate() {
        let b = TreeProtocol::builder(Domain::numeric("x", 3));
        assert!(b.root_transition(1, 1).is_err());
        let b = TreeProtocol::builder(Domain::numeric("x", 3));
        assert!(b.root_transition(1, 3).is_err());
        let p = TreeProtocol::builder(Domain::numeric("x", 3))
            .root_transition(0, 1)
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_legit_values([1, 2])
            .build()
            .unwrap();
        assert!(p.root_enabled(0));
        assert!(!p.root_legit(0));
        assert_eq!(p.root_targets(0), &[1]);
    }

    #[test]
    fn build_requires_root_legit() {
        let e = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("root"));
    }
}

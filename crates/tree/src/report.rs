//! The combined tree stabilization report: closure, the deadlock theorem,
//! and the termination theorem together decide strong self-stabilization on
//! every rooted tree.

use selfstab_protocol::Value;

use crate::analysis::TreeDeadlockAnalysis;
use crate::protocol::TreeProtocol;
use crate::termination::{certify_termination, TerminationObstacle};

/// A closure violation on trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeClosureViolation {
    /// Human-readable description of the violating move.
    pub description: String,
}

impl std::fmt::Display for TreeClosureViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.description)
    }
}

/// Window-local closure check for trees: a node's move must preserve its
/// own window predicate and every child's; a root move must preserve
/// `LC_root` and every child window. `Ok(())` implies `I` is closed on
/// every tree (a node's move is invisible beyond itself and its children,
/// and trees have no wrap-around).
///
/// # Errors
///
/// Returns the first violating move found.
pub fn tree_closure_check(protocol: &TreeProtocol) -> Result<(), TreeClosureViolation> {
    let space = protocol.space();
    let d = protocol.domain().size() as Value;
    let legit = protocol.node_legit();

    // Root moves: LC_root(v) ∧ LC(v, c) must be preserved.
    for v in 0..d {
        if !protocol.root_legit(v) {
            continue;
        }
        for &t in protocol.root_targets(v) {
            if !protocol.root_legit(t) {
                return Err(TreeClosureViolation {
                    description: format!("root move {v} -> {t} leaves LC_root"),
                });
            }
            for c in 0..d {
                if legit.holds(space.encode(&[v, c])) && !legit.holds(space.encode(&[t, c])) {
                    return Err(TreeClosureViolation {
                        description: format!(
                            "root move {v} -> {t} breaks the child window ⟨{t},{c}⟩"
                        ),
                    });
                }
            }
        }
    }

    // Node moves: for every legit ⟨p, s⟩ with transition s -> t, the new own
    // window ⟨p, t⟩ and every previously-legit child window ⟨s, c⟩ → ⟨t, c⟩
    // must stay legit.
    for w in space.ids() {
        if !legit.holds(w) {
            continue;
        }
        let (p, s) = (space.value_at(w, 0), space.value_at(w, 1));
        for &t in protocol.node_targets(w) {
            if !legit.holds(space.encode(&[p, t])) {
                return Err(TreeClosureViolation {
                    description: format!("node move ⟨{p},{s}⟩ -> {t} leaves its own LC"),
                });
            }
            for c in 0..d {
                if legit.holds(space.encode(&[s, c])) && !legit.holds(space.encode(&[t, c])) {
                    return Err(TreeClosureViolation {
                        description: format!(
                            "node move ⟨{p},{s}⟩ -> {t} breaks the child window ⟨{t},{c}⟩"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// The full local analysis of a tree protocol.
#[derive(Clone, Debug)]
pub struct TreeStabilizationReport {
    /// The deadlock theorem's result.
    pub deadlock: TreeDeadlockAnalysis,
    /// The termination certificate (livelock-freedom on every tree).
    pub termination: Result<(), TerminationObstacle>,
    /// The closure check.
    pub closure: Result<(), TreeClosureViolation>,
}

impl TreeStabilizationReport {
    /// Runs all tree analyses.
    pub fn analyze(protocol: &TreeProtocol) -> Self {
        TreeStabilizationReport {
            deadlock: TreeDeadlockAnalysis::analyze(protocol),
            termination: certify_termination(protocol),
            closure: tree_closure_check(protocol),
        }
    }

    /// `true` iff the protocol is proven strongly self-stabilizing on
    /// **every** rooted tree: closed, deadlock-free outside `I` (exact) and
    /// terminating (hence livelock-free).
    pub fn is_self_stabilizing_for_all_trees(&self) -> bool {
        self.closure.is_ok() && self.deadlock.is_free_for_all_trees() && self.termination.is_ok()
    }
}

impl std::fmt::Display for TreeStabilizationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tree deadlock-freedom: {}",
            if self.deadlock.is_free_for_all_trees() {
                "FREE for all trees".to_owned()
            } else {
                format!(
                    "NOT free (witness path of {} node(s))",
                    self.deadlock.witness().map_or(0, |w| w.len())
                )
            }
        )?;
        match &self.termination {
            Ok(()) => writeln!(f, "tree termination: CERTIFIED (no livelocks on any tree)")?,
            Err(o) => writeln!(f, "tree termination: UNKNOWN ({o})")?,
        }
        match &self.closure {
            Ok(()) => writeln!(f, "closure: OK for all trees")?,
            Err(v) => writeln!(f, "closure: {v}")?,
        }
        writeln!(
            f,
            "verdict: {}",
            if self.is_self_stabilizing_for_all_trees() {
                "strongly self-stabilizing on every rooted tree"
            } else {
                "not established"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::Domain;

    fn agreement() -> TreeProtocol {
        TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap()
    }

    #[test]
    fn agreement_fully_certified() {
        let r = TreeStabilizationReport::analyze(&agreement());
        assert!(r.is_self_stabilizing_for_all_trees(), "{r}");
        let text = r.to_string();
        assert!(text.contains("FREE for all trees"));
        assert!(text.contains("CERTIFIED"));
        assert!(text.contains("strongly self-stabilizing on every rooted tree"));
    }

    #[test]
    fn closure_violations_detected() {
        // In a legit agreeing window, flip anyway.
        let p = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] == x[r] && x[r] == 1 -> x[r] := 0")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        let v = tree_closure_check(&p).unwrap_err();
        assert!(v.to_string().contains("leaves its own LC"));
    }

    #[test]
    fn root_closure_violations_detected() {
        let p = TreeProtocol::builder(Domain::numeric("x", 2))
            .root_transition(1, 0)
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_legit_values([0, 1])
            .build()
            .unwrap();
        // Root flips 1 -> 0 under a child holding 1: breaks ⟨0,1⟩.
        let v = tree_closure_check(&p).unwrap_err();
        assert!(v.to_string().contains("breaks the child window"));
    }
}

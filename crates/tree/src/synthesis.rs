//! Adding convergence to tree protocols — the Section 6 methodology
//! transplanted to oriented trees.
//!
//! The tree setting is *easier* than rings, as the paper anticipates for
//! acyclic topologies: once every candidate action keeps the protocol in
//! the process-level self-disabling normal form, the termination theorem
//! ([`crate::termination`]) rules out livelocks outright, so synthesis only
//! has to restore deadlock-freedom — no pseudo-livelock/trail screening at
//! all. The steps:
//!
//! 1. compute the illegitimate deadlock windows reachable from deadlocked
//!    root seeds (the witnesses of [`crate::analysis`]), plus illegitimate
//!    root deadlocks — all of them must be resolved (any one left reachable
//!    realizes a bad path tree);
//! 2. generate candidate recovery writes per window whose targets stay
//!    disabled (preserving the termination certificate);
//! 3. take one candidate per window, re-verify exactly (deadlock theorem,
//!    termination, closure preservation) and emit.

use selfstab_protocol::{LocalStateId, Value};

use crate::protocol::{TreeProtocol, TreeProtocolBuilder};
use crate::report::TreeStabilizationReport;
use crate::termination::certify_termination;

/// One synthesized revision.
#[derive(Clone, Debug)]
pub struct SynthesizedTreeProtocol {
    /// The revised protocol.
    pub protocol: TreeProtocol,
    /// Node recovery transitions added, as `(parent, from, to)`.
    pub added_node: Vec<(Value, Value, Value)>,
    /// Root recovery transitions added, as `(from, to)`.
    pub added_root: Vec<(Value, Value)>,
}

/// The outcome of tree synthesis.
#[derive(Clone, Debug)]
pub struct TreeSynthesisOutcome {
    solutions: Vec<SynthesizedTreeProtocol>,
    combinations_tried: usize,
    truncated: bool,
}

impl TreeSynthesisOutcome {
    /// The accepted revisions, each proven strongly self-stabilizing on
    /// every rooted tree.
    pub fn solutions(&self) -> &[SynthesizedTreeProtocol] {
        &self.solutions
    }

    /// Whether any solution was found.
    pub fn is_success(&self) -> bool {
        !self.solutions.is_empty()
    }

    /// Number of candidate combinations examined.
    pub fn combinations_tried(&self) -> usize {
        self.combinations_tried
    }

    /// `true` if the budget stopped the search early.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// Synthesizes convergence for a tree protocol; `max_solutions` and
/// `max_combinations` bound the search.
pub fn synthesize_tree(
    protocol: &TreeProtocol,
    max_solutions: usize,
    max_combinations: usize,
) -> TreeSynthesisOutcome {
    let space = protocol.space();
    let d = protocol.domain().size() as Value;
    let mut outcome = TreeSynthesisOutcome {
        solutions: Vec::new(),
        combinations_tried: 0,
        truncated: false,
    };

    // The protocol must start from (or be brought to) the normal form; a
    // chain input would void the termination argument.
    if certify_termination(protocol).is_err() {
        return outcome;
    }

    // Step 1: what must be resolved. Root values that are illegitimate
    // deadlocks, and illegitimate deadlock windows reachable (via deadlock
    // windows) from any deadlocked-root seed. Rather than re-deriving the
    // reachable set, resolve the union over the exact analysis by
    // iterating: all illegitimate deadlock windows reachable from seeds.
    let deadlocks = protocol.node_deadlocks();
    let mut reach = vec![false; space.len()];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..d {
        if protocol.root_enabled(v) {
            continue;
        }
        for c in 0..d {
            let w = space.encode(&[v, c]);
            if deadlocks.holds(w) && !reach[w.index()] {
                reach[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    while let Some(w) = queue.pop_front() {
        let b = space.value_at(w, 1);
        for c in 0..d {
            let next = space.encode(&[b, c]);
            if deadlocks.holds(next) && !reach[next.index()] {
                reach[next.index()] = true;
                queue.push_back(next);
            }
        }
    }
    let resolve_windows: Vec<LocalStateId> = space
        .ids()
        .filter(|w| reach[w.index()] && !protocol.node_legit().holds(*w))
        .collect();
    let resolve_roots: Vec<Value> = (0..d)
        .filter(|&v| !protocol.root_enabled(v) && !protocol.root_legit(v))
        .collect();

    if resolve_windows.is_empty() && resolve_roots.is_empty() {
        // Already deadlock-free; nothing to add.
        if let Some(p) = rebuild(protocol, &[], &[]) {
            outcome.solutions.push(p);
        }
        outcome.combinations_tried = 1;
        return outcome;
    }

    // Step 2: candidates per resolved item, keeping the normal form: a node
    // write's target window must be disabled and not itself resolved; a
    // root write's target value must be root-disabled and not resolved.
    let node_cands: Vec<Vec<(Value, Value, Value)>> = resolve_windows
        .iter()
        .map(|&w| {
            let (p, s) = (space.value_at(w, 0), space.value_at(w, 1));
            (0..d)
                .filter(|&t| t != s)
                .filter(|&t| {
                    let tw = space.encode(&[p, t]);
                    protocol.node_targets(tw).is_empty() && !resolve_windows.contains(&tw)
                })
                .map(|t| (p, s, t))
                .collect()
        })
        .collect();
    let root_cands: Vec<Vec<(Value, Value)>> = resolve_roots
        .iter()
        .map(|&v| {
            (0..d)
                .filter(|&t| t != v)
                .filter(|&t| !protocol.root_enabled(t) && !resolve_roots.contains(&t))
                .map(|t| (v, t))
                .collect()
        })
        .collect();
    if node_cands.iter().any(Vec::is_empty) || root_cands.iter().any(Vec::is_empty) {
        return outcome;
    }

    // Step 3: one candidate per item; verify exactly.
    type NodeAdds = Vec<(Value, Value, Value)>;
    type RootAdds = Vec<(Value, Value)>;
    let mut combos: Vec<(NodeAdds, RootAdds)> = vec![(Vec::new(), Vec::new())];
    for opts in &node_cands {
        let mut next = Vec::new();
        for (ns, rs) in &combos {
            for &c in opts {
                if next.len() >= max_combinations {
                    outcome.truncated = true;
                    break;
                }
                let mut n2 = ns.clone();
                n2.push(c);
                next.push((n2, rs.clone()));
            }
        }
        combos = next;
    }
    for opts in &root_cands {
        let mut next = Vec::new();
        for (ns, rs) in &combos {
            for &c in opts {
                if next.len() >= max_combinations {
                    outcome.truncated = true;
                    break;
                }
                let mut r2 = rs.clone();
                r2.push(c);
                next.push((ns.clone(), r2));
            }
        }
        combos = next;
    }

    for (ns, rs) in combos {
        if outcome.combinations_tried >= max_combinations
            || outcome.solutions.len() >= max_solutions
        {
            outcome.truncated = true;
            break;
        }
        outcome.combinations_tried += 1;
        if let Some(sol) = rebuild(protocol, &ns, &rs) {
            outcome.solutions.push(sol);
        }
    }
    outcome
}

/// Rebuilds the protocol with the additions and verifies the full report.
fn rebuild(
    protocol: &TreeProtocol,
    node_adds: &[(Value, Value, Value)],
    root_adds: &[(Value, Value)],
) -> Option<SynthesizedTreeProtocol> {
    let space = protocol.space();
    let mut b: TreeProtocolBuilder = TreeProtocol::builder(protocol.domain().clone());
    for w in space.ids() {
        let (p, s) = (space.value_at(w, 0), space.value_at(w, 1));
        for &t in protocol.node_targets(w) {
            b = b
                .node_action(&format!("x[r-1] == {p} && x[r] == {s} -> x[r] := {t}"))
                .ok()?;
        }
    }
    for &(p, s, t) in node_adds {
        b = b
            .node_action(&format!("x[r-1] == {p} && x[r] == {s} -> x[r] := {t}"))
            .ok()?;
    }
    let legit = protocol.node_legit().clone();
    b = b.node_legit_from(move |id| legit.holds(id));
    for v in 0..protocol.domain().size() as Value {
        for &t in protocol.root_targets(v) {
            b = b.root_transition(v, t).ok()?;
        }
    }
    for &(f, t) in root_adds {
        b = b.root_transition(f, t).ok()?;
    }
    let candidate = b
        .root_legit_values(
            (0..protocol.domain().size() as Value).filter(|&v| protocol.root_legit(v)),
        )
        .build()
        .ok()?;

    let report = TreeStabilizationReport::analyze(&candidate);
    // The input protocol's closure may already be broken (we only must not
    // break it ourselves); require the deadlock and termination halves,
    // and closure when the input had it.
    let closure_ok = report.closure.is_ok() || crate::report::tree_closure_check(protocol).is_err();
    if report.deadlock.is_free_for_all_trees() && report.termination.is_ok() && closure_ok {
        Some(SynthesizedTreeProtocol {
            protocol: candidate,
            added_node: node_adds.to_vec(),
            added_root: root_adds.to_vec(),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::Domain;

    #[test]
    fn synthesizes_tree_agreement_from_scratch() {
        let input = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        let out = synthesize_tree(&input, 16, 256);
        assert!(out.is_success());
        for s in out.solutions() {
            let r = TreeStabilizationReport::analyze(&s.protocol);
            assert!(r.is_self_stabilizing_for_all_trees(), "{r}");
            // Both bad windows ⟨0,1⟩ and ⟨1,0⟩ needed resolution.
            assert_eq!(s.added_node.len(), 2);
        }
    }

    #[test]
    fn already_stabilizing_input_passes_through() {
        let input = TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        let out = synthesize_tree(&input, 4, 64);
        assert!(out.is_success());
        assert!(out.solutions()[0].added_node.is_empty());
        assert!(out.solutions()[0].added_root.is_empty());
    }

    #[test]
    fn root_deadlocks_are_repaired() {
        let input = TreeProtocol::builder(Domain::numeric("x", 3))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_legit_values([2])
            .build()
            .unwrap();
        let out = synthesize_tree(&input, 8, 256);
        assert!(out.is_success());
        for s in out.solutions() {
            assert!(!s.added_root.is_empty());
            assert!(
                TreeStabilizationReport::analyze(&s.protocol).is_self_stabilizing_for_all_trees()
            );
        }
    }

    #[test]
    fn chain_inputs_are_refused() {
        let input = TreeProtocol::builder(Domain::numeric("x", 3))
            .node_action("x[r-1] == 0 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .node_action("x[r-1] == 0 && x[r] == 1 -> x[r] := 2")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        let out = synthesize_tree(&input, 4, 64);
        assert!(!out.is_success());
        assert_eq!(out.combinations_tried(), 0);
    }
}

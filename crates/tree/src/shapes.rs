//! Enumeration of rooted tree shapes as canonical parent arrays.

/// A rooted tree on nodes `0..n` given by parent pointers: node 0 is the
/// root; `parent[i] < i` for `i ≥ 1` (every labelled rooted tree has such a
/// numbering via BFS/DFS order, so enumerating these arrays covers every
/// shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeShape {
    parents: Vec<usize>,
}

impl TreeShape {
    /// Builds a shape from parent pointers (`parents[0]` is ignored and
    /// conventionally 0).
    ///
    /// # Panics
    ///
    /// Panics if some `parents[i] >= i` for `i ≥ 1`, or `parents` is empty.
    pub fn new(parents: Vec<usize>) -> Self {
        assert!(!parents.is_empty(), "a tree has at least its root");
        for (i, &p) in parents.iter().enumerate().skip(1) {
            assert!(
                p < i,
                "parent pointers must decrease (got parent[{i}] = {p})"
            );
        }
        TreeShape { parents }
    }

    /// A path (chain) of `n` nodes: the tree analogue of an open ring.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn path(n: usize) -> Self {
        TreeShape::new((0..n).map(|i| i.saturating_sub(1)).collect())
    }

    /// A star: the root with `n - 1` direct children.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 1);
        TreeShape::new(vec![0; n])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Returns `true` if the tree is the single root (never: ≥ 1 node, so
    /// only when `len() == 1`... this mirrors `is_empty` conventions).
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The parent of node `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        (i != 0).then(|| self.parents[i])
    }

    /// The children of node `i`, in increasing order.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (1..self.len()).filter(|&j| self.parents[j] == i).collect()
    }
}

/// Enumerates every parent array of `n` nodes (all `(n-1)!` of them for
/// labelled increasing trees — every unlabelled rooted tree shape of `n`
/// nodes appears among them).
///
/// # Panics
///
/// Panics if `n == 0` or the enumeration would exceed 10^6 trees.
pub fn parent_arrays(n: usize) -> Vec<TreeShape> {
    assert!(n >= 1, "a tree has at least its root");
    let count: usize = (1..n).product::<usize>().max(1);
    assert!(count <= 1_000_000, "too many trees to enumerate");
    let mut out = Vec::with_capacity(count);
    let mut parents = vec![0usize; n];
    fn rec(parents: &mut Vec<usize>, i: usize, out: &mut Vec<TreeShape>) {
        if i == parents.len() {
            out.push(TreeShape::new(parents.clone()));
            return;
        }
        for p in 0..i {
            parents[i] = p;
            rec(parents, i + 1, out);
        }
    }
    if n == 1 {
        out.push(TreeShape::new(parents));
    } else {
        rec(&mut parents, 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_factorial() {
        assert_eq!(parent_arrays(1).len(), 1);
        assert_eq!(parent_arrays(2).len(), 1);
        assert_eq!(parent_arrays(3).len(), 2);
        assert_eq!(parent_arrays(4).len(), 6);
        assert_eq!(parent_arrays(5).len(), 24);
    }

    #[test]
    fn path_and_star() {
        let p = TreeShape::path(4);
        assert_eq!(p.parent(3), Some(2));
        assert_eq!(p.children(0), vec![1]);
        let s = TreeShape::star(4);
        assert_eq!(s.children(0), vec![1, 2, 3]);
        assert_eq!(s.parent(3), Some(0));
        assert_eq!(TreeShape::path(1).len(), 1);
    }

    #[test]
    fn every_enumerated_tree_is_valid() {
        for t in parent_arrays(5) {
            assert_eq!(t.len(), 5);
            for i in 1..5 {
                assert!(t.parent(i).unwrap() < i);
            }
            // connectivity: every node reaches the root.
            for mut i in 0..5 {
                let mut steps = 0;
                while let Some(p) = t.parent(i) {
                    i = p;
                    steps += 1;
                    assert!(steps <= 5);
                }
                assert_eq!(i, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "parent pointers must decrease")]
    fn invalid_parents_rejected() {
        TreeShape::new(vec![0, 2, 1]);
    }
}

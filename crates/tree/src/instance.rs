//! Explicit-state checking of a tree protocol on a concrete tree shape.

use selfstab_protocol::Value;

use crate::protocol::TreeProtocol;
use crate::shapes::TreeShape;

/// A tree protocol instantiated on a concrete [`TreeShape`].
///
/// Global states are valuations `⟨x_0, …, x_{n-1}⟩` encoded in mixed radix
/// (node 0 — the root — most significant).
#[derive(Clone, Debug)]
pub struct TreeInstance<'a> {
    protocol: &'a TreeProtocol,
    shape: &'a TreeShape,
    len: u64,
}

impl<'a> TreeInstance<'a> {
    /// Instantiates `protocol` on `shape`.
    ///
    /// # Panics
    ///
    /// Panics if the state space exceeds 2^24 states.
    pub fn new(protocol: &'a TreeProtocol, shape: &'a TreeShape) -> Self {
        let d = protocol.domain().size() as u64;
        let mut len = 1u64;
        for _ in 0..shape.len() {
            len = len.checked_mul(d).expect("state space overflow");
            assert!(len <= 1 << 24, "tree state space too large");
        }
        TreeInstance {
            protocol,
            shape,
            len,
        }
    }

    /// Number of global states.
    pub fn state_count(&self) -> u64 {
        self.len
    }

    /// Decodes a state into its valuation.
    pub fn decode(&self, mut id: u64) -> Vec<Value> {
        let d = self.protocol.domain().size() as u64;
        let n = self.shape.len();
        let mut out = vec![0; n];
        for slot in out.iter_mut().rev() {
            *slot = (id % d) as Value;
            id /= d;
        }
        out
    }

    /// Encodes a valuation.
    pub fn encode(&self, values: &[Value]) -> u64 {
        let d = self.protocol.domain().size() as u64;
        values.iter().fold(0u64, |acc, &v| acc * d + v as u64)
    }

    /// Returns `true` if node `i` is enabled in the valuation.
    pub fn node_enabled(&self, values: &[Value], i: usize) -> bool {
        match self.shape.parent(i) {
            None => self.protocol.root_enabled(values[0]),
            Some(p) => {
                let w = crate::protocol::window(self.protocol.space(), values[p], values[i]);
                !self.protocol.node_targets(w).is_empty()
            }
        }
    }

    /// Returns `true` if the valuation is a global deadlock.
    pub fn is_deadlock(&self, values: &[Value]) -> bool {
        (0..self.shape.len()).all(|i| !self.node_enabled(values, i))
    }

    /// Returns `true` if the valuation satisfies `I` (the root predicate
    /// plus every edge's window predicate).
    pub fn is_legit(&self, values: &[Value]) -> bool {
        if !self.protocol.root_legit(values[0]) {
            return false;
        }
        (1..self.shape.len()).all(|i| {
            let p = self.shape.parent(i).expect("non-root");
            let w = crate::protocol::window(self.protocol.space(), values[p], values[i]);
            self.protocol.node_legit().holds(w)
        })
    }

    /// The successor valuations of `values` (one per enabled move).
    pub fn successors(&self, values: &[Value]) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for i in 0..self.shape.len() {
            let targets: Vec<Value> = match self.shape.parent(i) {
                None => self.protocol.root_targets(values[0]).to_vec(),
                Some(p) => {
                    let w = crate::protocol::window(self.protocol.space(), values[p], values[i]);
                    self.protocol.node_targets(w).to_vec()
                }
            };
            for t in targets {
                let mut next = values.to_vec();
                next[i] = t;
                out.push(next);
            }
        }
        out
    }

    /// Returns `true` if the global transition graph on this shape has a
    /// cycle (i.e. some computation does not terminate).
    pub fn has_any_cycle(&self) -> bool {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.len as usize;
        let mut color = vec![WHITE; n];
        for root in 0..self.len {
            if color[root as usize] != WHITE {
                continue;
            }
            let mut stack = vec![(root, false)];
            while let Some((s, expanded)) = stack.pop() {
                if expanded {
                    color[s as usize] = BLACK;
                    continue;
                }
                if color[s as usize] != WHITE {
                    continue; // duplicate frame
                }
                color[s as usize] = GRAY;
                stack.push((s, true));
                for next in self.successors(&self.decode(s)) {
                    let t = self.encode(&next);
                    match color[t as usize] {
                        GRAY => return true,
                        WHITE => stack.push((t, false)),
                        _ => {}
                    }
                }
            }
        }
        false
    }

    /// Returns `true` if some move leaves `I` from inside it.
    pub fn has_closure_violation(&self) -> bool {
        (0..self.len).any(|id| {
            let v = self.decode(id);
            self.is_legit(&v) && self.successors(&v).iter().any(|s| !self.is_legit(s))
        })
    }

    /// All global deadlocks outside `I`.
    pub fn illegitimate_deadlocks(&self) -> Vec<Vec<Value>> {
        (0..self.len)
            .map(|id| self.decode(id))
            .filter(|v| self.is_deadlock(v) && !self.is_legit(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_protocol::Domain;

    fn agreement() -> TreeProtocol {
        TreeProtocol::builder(Domain::numeric("x", 2))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap()
    }

    #[test]
    fn agreement_on_a_path_has_no_bad_deadlocks() {
        let p = agreement();
        let shape = TreeShape::path(4);
        let inst = TreeInstance::new(&p, &shape);
        assert_eq!(inst.state_count(), 16);
        assert!(inst.illegitimate_deadlocks().is_empty());
        // The two uniform valuations are legitimate deadlocks.
        assert!(inst.is_deadlock(&[1, 1, 1, 1]));
        assert!(inst.is_legit(&[1, 1, 1, 1]));
        assert!(!inst.is_legit(&[1, 0, 1, 1]));
        assert!(!inst.is_deadlock(&[1, 0, 1, 1]));
    }

    #[test]
    fn star_legitimacy_checks_every_edge() {
        let p = agreement();
        let shape = TreeShape::star(4);
        let inst = TreeInstance::new(&p, &shape);
        assert!(inst.is_legit(&[1, 1, 1, 1]));
        assert!(!inst.is_legit(&[1, 1, 0, 1]));
    }

    #[test]
    fn codec_roundtrip() {
        let p = agreement();
        let shape = TreeShape::path(5);
        let inst = TreeInstance::new(&p, &shape);
        for id in 0..inst.state_count() {
            assert_eq!(inst.encode(&inst.decode(id)), id);
        }
    }
}

//! Termination (and hence livelock-freedom) on oriented trees.
//!
//! **Theorem (tree termination).** If every action is self-disabling at the
//! process level — a node transition lands in a window where the node is
//! disabled, and a root transition lands in a value where the root is
//! disabled — then *every* computation on *every* rooted tree terminates.
//!
//! *Proof sketch.* The root's window is its own value, which only its own
//! moves change; process-level self-disabling therefore silences the root
//! permanently after at most one move. Inductively, a node's window
//! `⟨x_parent, x_self⟩` changes only when the parent or the node itself
//! moves, and between two parent moves the node can move at most once (its
//! own move disables it; only a parent move can re-enable it). So each
//! node's move count is bounded by its parent's plus one, giving at most
//! `depth + 1` moves per node. ∎
//!
//! Corollary: such protocols have **no livelocks on any tree** —
//! convergence reduces entirely to the deadlock theorem of
//! [`crate::analysis`]. This is the formal content behind the paper's
//! remark that acyclic topologies avoid circulating corruptions \[21\]: rings
//! can re-enable a process around the cycle; trees cannot.

use selfstab_protocol::Value;

use crate::protocol::TreeProtocol;

/// Why the termination theorem does not apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationObstacle {
    /// A node transition lands in an enabled window.
    NodeChain {
        /// Parent value of the violating transition's source window.
        parent: Value,
        /// Own value before the transition.
        from: Value,
        /// Value written.
        to: Value,
    },
    /// A root transition lands in a value where the root is still enabled.
    RootChain {
        /// Root value before the transition.
        from: Value,
        /// Value written.
        to: Value,
    },
}

impl std::fmt::Display for TerminationObstacle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminationObstacle::NodeChain { parent, from, to } => write!(
                f,
                "node transition ⟨{parent},{from}⟩ -> {to} lands in an enabled window"
            ),
            TerminationObstacle::RootChain { from, to } => {
                write!(
                    f,
                    "root transition {from} -> {to} lands in an enabled value"
                )
            }
        }
    }
}

/// Checks the hypotheses of the tree termination theorem; `Ok(())` means
/// every computation of the protocol terminates on every rooted tree, with
/// the per-node bound `moves(node) ≤ depth(node) + 1`.
///
/// # Errors
///
/// Returns the first [`TerminationObstacle`] found.
pub fn certify_termination(protocol: &TreeProtocol) -> Result<(), TerminationObstacle> {
    let space = protocol.space();
    let d = protocol.domain().size() as Value;

    for v in 0..d {
        for &t in protocol.root_targets(v) {
            if protocol.root_enabled(t) {
                return Err(TerminationObstacle::RootChain { from: v, to: t });
            }
        }
    }
    for w in space.ids() {
        let parent = space.value_at(w, 0);
        let own = space.value_at(w, 1);
        for &t in protocol.node_targets(w) {
            let target = space.encode(&[parent, t]);
            if !protocol.node_targets(target).is_empty() {
                return Err(TerminationObstacle::NodeChain {
                    parent,
                    from: own,
                    to: t,
                });
            }
        }
    }
    Ok(())
}

/// The `depth + 1` move bound per node implied by the theorem: an upper
/// bound on the total number of transitions any computation on `shape` can
/// take.
pub fn move_bound(shape: &crate::shapes::TreeShape) -> usize {
    (0..shape.len())
        .map(|mut i| {
            let mut depth = 0;
            while let Some(p) = shape.parent(i) {
                i = p;
                depth += 1;
            }
            depth + 1
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::TreeShape;
    use selfstab_protocol::Domain;

    #[test]
    fn agreement_is_certified() {
        let p = TreeProtocol::builder(Domain::numeric("x", 3))
            .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        assert!(certify_termination(&p).is_ok());
    }

    #[test]
    fn node_chains_are_detected() {
        // ⟨0,0⟩ -> 1 lands in ⟨0,1⟩, which ⟨0,1⟩ -> 2 keeps enabled.
        let p = TreeProtocol::builder(Domain::numeric("x", 3))
            .node_action("x[r-1] == 0 && x[r] == 0 -> x[r] := 1")
            .unwrap()
            .node_action("x[r-1] == 0 && x[r] == 1 -> x[r] := 2")
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_silent_and_all_legit()
            .build()
            .unwrap();
        let e = certify_termination(&p).unwrap_err();
        assert_eq!(
            e,
            TerminationObstacle::NodeChain {
                parent: 0,
                from: 0,
                to: 1
            }
        );
        assert!(e.to_string().contains("enabled window"));
    }

    #[test]
    fn root_chains_are_detected() {
        let p = TreeProtocol::builder(Domain::numeric("x", 3))
            .root_transition(0, 1)
            .unwrap()
            .root_transition(1, 2)
            .unwrap()
            .node_legit("x[r] == x[r-1]")
            .unwrap()
            .root_legit_values([2])
            .build()
            .unwrap();
        let e = certify_termination(&p).unwrap_err();
        assert_eq!(e, TerminationObstacle::RootChain { from: 0, to: 1 });
    }

    #[test]
    fn move_bound_shapes() {
        assert_eq!(move_bound(&TreeShape::path(1)), 1);
        assert_eq!(move_bound(&TreeShape::path(3)), 1 + 2 + 3);
        assert_eq!(move_bound(&TreeShape::star(4)), 1 + 2 + 2 + 2);
    }
}

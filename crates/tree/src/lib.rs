//! Local reasoning for global convergence of parameterized **trees** — the
//! first future-work direction of Farahat & Ebnenasir (ICDCS 2012).
//!
//! The paper sketches the idea in one sentence: *"we construct RCG of a
//! tree from the locality of a non-root process that includes the writable
//! variables of its parent, itself and its children."* This crate develops
//! the simplest faithful instantiation — **oriented trees**, where every
//! non-root process reads its parent's variable and its own (the tree
//! analogue of the unidirectional ring) and the root reads only itself:
//!
//! * a [`TreeProtocol`] holds the non-root behavior `δ` over windows
//!   `⟨x_parent, x_self⟩` (with its local predicate `LC`) and the root
//!   behavior over `x_root` alone (with its predicate `LC_root`);
//! * the continuation relation runs **parent → child**, so a valuation of
//!   any rooted tree corresponds to a family of continuation-compatible
//!   windows rooted at a seed value;
//! * because any node may be a leaf, the ring theorem's *cycles* become
//!   *reachability*: [`TreeDeadlockAnalysis`] proves deadlock-freedom
//!   outside `I` for **every rooted tree of every shape and size** iff no
//!   illegitimate deadlock window is reachable — through deadlock windows —
//!   from a deadlocked root seed (and the root itself is never an
//!   illegitimate deadlock). The witness is a path, realized by a "path
//!   tree" (Theorem, proved in [`analysis`] and property-tested against
//!   exhaustive tree enumeration).
//!
//! The [`instance`] module instantiates a protocol on an explicit tree
//! shape for ground-truth checking, and [`shapes`] enumerates all rooted
//! trees up to a size (as canonical parent arrays) for the exhaustive
//! cross-validation.
//!
//! # Examples
//!
//! Tree agreement ("every node copies its parent") is deadlock-free outside
//! `I` on every tree:
//!
//! ```
//! use selfstab_tree::{TreeProtocol, TreeDeadlockAnalysis};
//! use selfstab_protocol::Domain;
//!
//! let p = TreeProtocol::builder(Domain::numeric("x", 2))
//!     .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")?   // x[r-1] is the parent
//!     .node_legit("x[r] == x[r-1]")?
//!     .root_silent_and_all_legit()
//!     .build()?;
//! assert!(TreeDeadlockAnalysis::analyze(&p).is_free_for_all_trees());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod instance;
pub mod protocol;
pub mod report;
pub mod shapes;
pub mod synthesis;
pub mod termination;

pub use analysis::TreeDeadlockAnalysis;
pub use instance::TreeInstance;
pub use protocol::{TreeProtocol, TreeProtocolBuilder};
pub use report::{tree_closure_check, TreeStabilizationReport};
pub use shapes::{parent_arrays, TreeShape};
pub use synthesis::{synthesize_tree, TreeSynthesisOutcome};
pub use termination::{certify_termination, TerminationObstacle};

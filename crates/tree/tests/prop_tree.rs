//! Exhaustive cross-validation of the tree deadlock theorem: the local
//! reachability verdict must agree with brute-force checking over **every**
//! rooted tree shape up to a size bound.

use proptest::prelude::*;
use selfstab_protocol::{Domain, LocalStateId, LocalTransition, Protocol};
use selfstab_tree::{parent_arrays, TreeDeadlockAnalysis, TreeInstance, TreeProtocol, TreeShape};

/// Random tree protocol over domain size `d` with random node transitions,
/// node predicate, root transitions and root predicate.
fn arb_tree_protocol(d: usize) -> impl Strategy<Value = TreeProtocol> {
    let nstates = d * d;
    (
        proptest::collection::vec((0..nstates as u32, 0..d as u8), 0..nstates),
        proptest::collection::vec(any::<bool>(), nstates),
        proptest::collection::vec((0..d as u8, 0..d as u8), 0..d),
        proptest::collection::vec(any::<bool>(), d),
    )
        .prop_filter_map(
            "predicates must be satisfiable",
            move |(arcs, legit, roots, rlegit)| {
                if !legit.iter().any(|&b| b) || !rlegit.iter().any(|&b| b) {
                    return None;
                }
                // Build the node template through the ring-protocol builder.
                let base = Protocol::builder(
                    "n",
                    Domain::numeric("x", d),
                    selfstab_protocol::Locality::unidirectional(),
                )
                .legit_fn(|id, _| legit[id.index()])
                .build()
                .ok()?;
                let sp = *base.space();
                let ts: Vec<LocalTransition> = arcs
                    .into_iter()
                    .map(|(s, t)| LocalTransition::new(LocalStateId(s), t))
                    .filter(|t| sp.value_at(t.source, 1) != t.target)
                    .collect();
                let node = base.with_transitions("n", ts).ok()?;

                // Re-express through the TreeProtocol builder.
                let mut b = TreeProtocol::builder(Domain::numeric("x", d));
                for t in node.transitions() {
                    let w = node.space().decode(t.source);
                    b = b
                        .node_action(&format!(
                            "x[r-1] == {} && x[r] == {} -> x[r] := {}",
                            w[0], w[1], t.target
                        ))
                        .ok()?;
                }
                let legit2 = legit.clone();
                b = b.node_legit_from(move |id: LocalStateId| legit2[id.index()]);
                for (f, t) in roots {
                    if f != t {
                        b = b.root_transition(f, t).ok()?;
                    }
                }
                b.root_legit_values((0..d as u8).filter(|&v| rlegit[v as usize]))
                    .build()
                    .ok()
            },
        )
}

/// Ground truth: does ANY rooted tree of up to `max_nodes` nodes have a
/// global deadlock outside I?
fn brute_force_bad_deadlock(p: &TreeProtocol, max_nodes: usize) -> bool {
    for n in 1..=max_nodes {
        for shape in parent_arrays(n) {
            let inst = TreeInstance::new(p, &shape);
            if !inst.illegitimate_deadlocks().is_empty() {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// d = 2: the witness path has at most d² + 1 = 5 nodes, so checking
    /// every tree of up to 5 nodes decides ground truth exactly — the local
    /// verdict must match in both directions.
    #[test]
    fn tree_theorem_exact_d2(p in arb_tree_protocol(2)) {
        let a = TreeDeadlockAnalysis::analyze(&p);
        let global = brute_force_bad_deadlock(&p, 5);
        prop_assert_eq!(!a.is_free_for_all_trees(), global);
        if let Some(w) = a.witness() {
            // The witness realizes as a concrete bad deadlock on a path.
            let shape = TreeShape::path(w.len());
            let inst = TreeInstance::new(&p, &shape);
            prop_assert!(inst.is_deadlock(&w.path_values));
            prop_assert!(!inst.is_legit(&w.path_values));
        }
    }

    /// d = 3: soundness direction (trees up to 5 nodes) plus witness
    /// realization (witness paths can reach 10 nodes, beyond exhaustive
    /// enumeration).
    #[test]
    fn tree_theorem_sound_d3(p in arb_tree_protocol(3)) {
        let a = TreeDeadlockAnalysis::analyze(&p);
        if a.is_free_for_all_trees() {
            prop_assert!(!brute_force_bad_deadlock(&p, 5), "local FREE but a small tree deadlocks");
        } else {
            let w = a.witness().unwrap();
            let shape = TreeShape::path(w.len());
            let inst = TreeInstance::new(&p, &shape);
            prop_assert!(inst.is_deadlock(&w.path_values));
            prop_assert!(!inst.is_legit(&w.path_values));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Tree termination theorem**: a certified protocol's global
    /// transition graph is acyclic on every shape of up to 5 nodes (so every
    /// computation terminates — no livelocks on trees).
    #[test]
    fn certified_termination_implies_acyclic(p in arb_tree_protocol(2)) {
        if selfstab_tree::certify_termination(&p).is_err() {
            return Ok(());
        }
        for n in 1..=5usize {
            for shape in parent_arrays(n) {
                let inst = TreeInstance::new(&p, &shape);
                prop_assert!(!inst.has_any_cycle(), "cycle on a {n}-node tree");
            }
        }
    }

    /// The converse direction sanity: cycle detection does find cycles for
    /// chain protocols (whenever one exists on a small shape, the
    /// certificate must have refused).
    #[test]
    fn cycles_imply_certificate_refusal(p in arb_tree_protocol(2)) {
        let certified = selfstab_tree::certify_termination(&p).is_ok();
        for n in 1..=4usize {
            for shape in parent_arrays(n) {
                let inst = TreeInstance::new(&p, &shape);
                if inst.has_any_cycle() {
                    prop_assert!(!certified, "certified protocol has a cycle");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-report soundness: a protocol proven self-stabilizing on all
    /// trees passes the exhaustive global check on every shape of up to 5
    /// nodes (no bad deadlocks, no cycles, closure holds).
    #[test]
    fn tree_report_sound(p in arb_tree_protocol(2)) {
        let r = selfstab_tree::TreeStabilizationReport::analyze(&p);
        if !r.is_self_stabilizing_for_all_trees() {
            return Ok(());
        }
        for n in 1..=5usize {
            for shape in parent_arrays(n) {
                let inst = TreeInstance::new(&p, &shape);
                prop_assert!(inst.illegitimate_deadlocks().is_empty());
                prop_assert!(!inst.has_any_cycle());
                prop_assert!(!inst.has_closure_violation());
            }
        }
    }

    /// Closure-check soundness alone: Ok(()) implies no global closure
    /// violation on any small shape.
    #[test]
    fn tree_closure_sound(p in arb_tree_protocol(3)) {
        if selfstab_tree::tree_closure_check(&p).is_err() {
            return Ok(());
        }
        for n in 1..=4usize {
            for shape in parent_arrays(n) {
                let inst = TreeInstance::new(&p, &shape);
                prop_assert!(!inst.has_closure_violation(), "closure broken on {n}-node tree");
            }
        }
    }
}

//! `selfstab-serve` — a long-running HTTP verification service over the
//! selfstab compute core.
//!
//! The CLI model is one process per question; this crate amortizes the
//! process across many questions. `selfstab serve` binds a threaded,
//! std-only HTTP/1.1 server (the workspace is offline, so the protocol
//! layer is hand-rolled in [`http`] — no tokio/hyper) exposing a small
//! JSON API:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a spec + kind (`verify`\|`sweep`\|`synthesize`) + K range + budgets |
//! | `GET /v1/jobs/:id` | status + per-phase time breakdown |
//! | `GET /v1/jobs/:id/result` | the result document, **byte-identical** to the CLI's `--json` output |
//! | `GET /v1/jobs/:id/trace` | the job's request-scoped Chrome-trace document (Perfetto-loadable) |
//! | `GET /v1/cache/stats` | content-addressed cache counters |
//! | `GET /v1/metrics` | the full telemetry registry (`?format=prometheus` for text exposition) |
//! | `GET /v1/healthz` | liveness (`ok` / `draining`) |
//! | `GET /v1/readyz` | readiness: `ready` / `draining` / `saturated`, with shed level and queue occupancy |
//!
//! **Observability** is request-scoped and out-of-band: every response
//! carries an `X-Selfstab-Trace-Id` header minted at ingress, jobs
//! collect span lanes ([`trace`]) covering admission, cache lookup,
//! queue wait, and the engine's phases, and the server can interleave
//! every lane into one `--trace` file at drain. Latency histograms
//! (time-to-first-byte per endpoint, queue wait and execution per kind,
//! journal appends) land in the same registry `/v1/metrics` serves; with
//! `--registry`, every computed result also appends one canonical row to
//! the persistent results registry
//! ([`selfstab_core::registry_row`]). Result documents never change:
//! the determinism contract (`/v1/jobs/:id/result` byte-identity) holds
//! with all of this enabled.
//!
//! The headline mechanism is the **content-addressed result cache**
//! ([`cache`]): requests are keyed by the canonical parse-tree hash of
//! the spec ([`selfstab_core::spec_hash`] — whitespace-, comment- and
//! declaration-order-invariant) combined with every input the document
//! depends on (kind, K range, state budget, symmetry mode). A repeated
//! question is answered from memory without touching the worker pool,
//! and N clients racing the same cold key coalesce onto one pool job.
//!
//! Work runs on a persistent FIFO pool
//! ([`selfstab_campaign::ServicePool`]) under per-request deadlines via
//! [`selfstab_global::CancelToken`]; a deadline that fires mid-check
//! degrades to HTTP 504 carrying the rows completed so far. SIGINT /
//! SIGTERM drain gracefully: stop accepting, cancel in-flight work
//! cooperatively, exit 130.
//!
//! The service is **crash-durable and overload-safe**:
//!
//! * [`journal`] persists every accepted job and terminal result through
//!   the campaign crate's CRC-framed torn-write-safe journal — a
//!   SIGKILLed server restarts with the same job ids resolvable and
//!   re-enqueues exactly the jobs the crash interrupted;
//! * [`cache`] optionally writes completed documents through to a
//!   snapshot file, so a restarted server answers repeat traffic warm;
//! * [`admission`] bounds per-kind acceptance (`429` + `Retry-After`
//!   past the caps) and degrades gracefully under a memory watchdog —
//!   `synthesize` sheds before `sweep` before `verify`;
//! * [`chaos`] is the seeded service-fault injector behind the hidden
//!   `--chaos` flag (injected job panics, torn responses), complementing
//!   the CI crash drill's literal `SIGKILL`.
//!
//! Module map: [`http`] (parser/writer, slow-loris defenses), [`render`]
//! (the canonical JSON rendering shared with the CLI), [`jobs`]
//! (validation + execution), [`cache`] (content-addressed store + warm
//! snapshot), [`journal`] (durable job journal), [`admission`]
//! (backpressure + watchdog), [`chaos`] (fault injection), [`trace`]
//! (request-scoped span lanes + Chrome-trace rendering), [`server`]
//! (routing, submit flow, replay, drain).

#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod render;
pub mod server;
pub mod trace;

pub use admission::{Admission, PendingCaps, Shed};
pub use cache::{CachedDoc, ResultCache};
pub use chaos::ServeChaos;
pub use jobs::{JobKind, JobRequest, JobState};
pub use journal::{ReplayedJob, ReplayedTerminal, ServeJournal, ServeReplay};
pub use server::{ServeConfig, ServeState, Server};
pub use trace::{JobTrace, TraceIdGen};

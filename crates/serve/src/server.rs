//! The HTTP service: socket handling, routing, the submit flow, and
//! graceful drain.
//!
//! One accept loop (non-blocking, polling the drain token every 10 ms)
//! hands each connection to its own thread; connections are cheap because
//! all heavy work runs on the shared [`ServicePool`]. The router itself
//! is a pure function over [`ServeState`] ([`ServeState::handle`]), so
//! integration tests exercise the full API in-process without a socket.
//!
//! **Submit flow** (`POST /v1/jobs`): parse → validate ([`JobRequest`])
//! → consult the content-addressed cache. A hit answers immediately with
//! a `done` job backed by the cached document — no pool work. A key
//! already in flight coalesces onto the computing job's id. Only a true
//! miss enqueues pool work, under a [`CancelToken`] linked to the drain
//! token and carrying the request deadline.
//!
//! **Drain** (SIGINT/SIGTERM or [`ServeState::begin_drain`]): stop
//! accepting, fire the drain token (in-flight scans abort at their next
//! cancel poll), shut the pool down, then give connection threads a
//! bounded grace period to flush their last response.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use selfstab_campaign::telemetry::JobTelemetry;
use selfstab_campaign::ServicePool;
use selfstab_global::CancelToken;
use selfstab_telemetry::Registry;
use serde_json::{json, Value};

use crate::cache::{Lookup, ResultCache};
use crate::http::{HttpError, Request, RequestReader, Response};
use crate::jobs::{execute, ExecOutcome, JobEntry, JobRequest, JobState};

/// How long an idle keep-alive connection may sit between requests before
/// the server closes it (also bounds how long a drain waits on a silent
/// client).
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(2);

/// How long [`Server::run`] waits for connection threads to flush after
/// the drain token fires.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Server construction parameters (the CLI's `serve` flags).
pub struct ServeConfig {
    /// Interface to bind, e.g. `127.0.0.1`.
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port.
    pub port: u16,
    /// Pool worker threads executing jobs.
    pub threads: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_owned(),
            port: 7878,
            threads: 2,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Everything the handlers share: the job table, the cache, the pool,
/// and the metrics registry (one registry — cache and pool counters land
/// in the same `/v1/metrics` document).
pub struct ServeState {
    registry: Registry,
    cache: ResultCache,
    pool: ServicePool,
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    next_id: AtomicU64,
    drain: Arc<CancelToken>,
    jobs_submitted: Arc<AtomicU64>,
}

impl ServeState {
    /// Fresh state for `config`.
    pub fn new(config: &ServeConfig) -> Arc<Self> {
        let registry = Registry::new();
        let cache = ResultCache::new(config.cache_bytes, &registry);
        let pool = ServicePool::with_registry(config.threads, Some(&registry));
        let jobs_submitted = registry.counter("serve/jobs_submitted");
        Arc::new(ServeState {
            registry,
            cache,
            pool,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            drain: Arc::new(CancelToken::new()),
            jobs_submitted,
        })
    }

    /// The drain token: fire it (or call [`ServeState::begin_drain`]) to
    /// wind the service down.
    pub fn drain_token(&self) -> Arc<CancelToken> {
        Arc::clone(&self.drain)
    }

    /// `true` once a drain has started.
    pub fn draining(&self) -> bool {
        self.drain.is_cancelled()
    }

    /// Starts a drain: new submits are refused, in-flight jobs abort at
    /// their next cancel poll.
    pub fn begin_drain(&self) {
        self.drain.cancel();
    }

    /// Jobs actually executed on the pool (cache hits and coalesced
    /// submits do not count).
    pub fn executed(&self) -> u64 {
        self.pool.executed()
    }

    /// Routes one parsed request. Pure over the state — no socket — so
    /// tests can drive the full API in-process.
    pub fn handle(self: &Arc<Self>, req: &Request) -> Response {
        let response = self.route(req);
        let class = match response.status {
            200..=299 => "http/2xx",
            400..=499 => "http/4xx",
            _ => "http/5xx",
        };
        self.registry.counter(class).fetch_add(1, Ordering::Relaxed);
        response
    }

    fn route(self: &Arc<Self>, req: &Request) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["v1", "healthz"]) => json_response(
                200,
                json!({"status": if self.draining() { "draining" } else { "ok" }}),
            ),
            ("GET", ["v1", "metrics"]) => json_response(200, self.registry.snapshot_json()),
            ("GET", ["v1", "cache", "stats"]) => json_response(200, self.cache.stats_json()),
            ("POST", ["v1", "jobs"]) => self.submit(req),
            ("GET", ["v1", "jobs", id]) => match self.job(id) {
                Some(entry) => json_response(200, entry.status_json()),
                None => not_found(),
            },
            ("GET", ["v1", "jobs", id, "result"]) => match self.job(id) {
                Some(entry) => result_response(&entry),
                None => not_found(),
            },
            (
                _,
                ["v1", "healthz"]
                | ["v1", "metrics"]
                | ["v1", "cache", "stats"]
                | ["v1", "jobs"]
                | ["v1", "jobs", _]
                | ["v1", "jobs", _, "result"],
            ) => json_response(405, json!({"error": "method not allowed"})),
            _ => not_found(),
        }
    }

    fn job(&self, id: &str) -> Option<Arc<JobEntry>> {
        let id: u64 = id.parse().ok()?;
        self.jobs
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
    }

    fn submit(self: &Arc<Self>, req: &Request) -> Response {
        if self.draining() {
            return json_response(503, json!({"error": "server is draining"}));
        }
        let body = match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_owned())
            .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => return json_response(400, json!({"error": format!("invalid JSON: {e}")})),
        };
        let request = match JobRequest::from_json(&body) {
            Ok(r) => r,
            Err(e) => {
                return json_response(e.status(), json!({"error": e.message()}));
            }
        };
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);

        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let key = request.cache_key();
        // The table lock spans reserve + insert so a coalesced submit
        // never hands out a job id before that job is observable. Lock
        // order is always table → cache; the pool side touches the cache
        // alone, so the nesting cannot deadlock.
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        match self.cache.lookup_or_reserve(&key, id) {
            Lookup::Hit(doc) => {
                // Served entirely from cache: a `done` job exists for
                // uniform polling, but nothing touches the pool.
                let entry = Arc::new(JobEntry {
                    id,
                    kind: request.kind,
                    cache_key: key,
                    state: Mutex::new(JobState::Done { doc }),
                    telemetry: JobTelemetry::default(),
                    cached: true,
                });
                jobs.insert(id, entry);
                json_response(200, json!({"id": id, "status": "done", "cached": true}))
            }
            Lookup::InFlight(job) => json_response(
                202,
                json!({"id": job, "status": "queued", "coalesced": true}),
            ),
            Lookup::Miss => {
                let entry = Arc::new(JobEntry {
                    id,
                    kind: request.kind,
                    cache_key: key.clone(),
                    state: Mutex::new(JobState::Queued),
                    telemetry: JobTelemetry::default(),
                    cached: false,
                });
                jobs.insert(id, Arc::clone(&entry));
                drop(jobs);
                self.enqueue(request, entry, key);
                json_response(202, json!({"id": id, "status": "queued", "cached": false}))
            }
        }
    }

    fn enqueue(self: &Arc<Self>, request: JobRequest, entry: Arc<JobEntry>, key: String) {
        // Deadlines anchor at submit: queue wait burns request budget.
        let token = match request.deadline_from(Instant::now()) {
            Some(deadline) => CancelToken::linked_with_deadline(self.drain_token(), deadline),
            None => CancelToken::linked(self.drain_token()),
        };
        let state = Arc::clone(self);
        let handle = self.pool.submit::<(), _>(move || {
            *entry.state.lock().expect("job state poisoned") = JobState::Running;
            entry.telemetry.attempts.fetch_add(1, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                execute(&request, &entry.telemetry, &token)
            }))
            .unwrap_or_else(|_| ExecOutcome::Failed {
                status: 500,
                message: "job panicked".to_owned(),
            });
            let next = match outcome {
                ExecOutcome::Done(doc) => {
                    let doc = Arc::new(doc);
                    state.cache.fulfill(&key, Arc::clone(&doc));
                    JobState::Done { doc }
                }
                ExecOutcome::Cancelled { partial } => {
                    state.cache.abandon(&key);
                    if state.draining() {
                        JobState::Drained
                    } else {
                        JobState::TimedOut { partial }
                    }
                }
                ExecOutcome::Failed { status, message } => {
                    state.cache.abandon(&key);
                    JobState::Failed { status, message }
                }
            };
            *entry.state.lock().expect("job state poisoned") = next;
        });
        // Completion is observed through the job table; the handle's only
        // remaining duty is the shutdown edge, where the pool refuses the
        // job and the closure never runs.
        drop(handle);
    }

    /// Winds the pool down after a drain; queued-but-unstarted jobs run
    /// against the already-fired token and park as `drained`.
    pub fn shutdown_pool(&self) {
        self.pool.shutdown();
    }
}

/// A compact-JSON response body.
fn json_response(status: u16, value: Value) -> Response {
    Response::json(status, value.to_string())
}

fn not_found() -> Response {
    json_response(404, json!({"error": "not found"}))
}

fn result_response(entry: &JobEntry) -> Response {
    let state = entry.state.lock().expect("job state poisoned");
    match &*state {
        JobState::Queued | JobState::Running => {
            json_response(202, json!({"id": entry.id, "status": state.label()}))
        }
        JobState::Done { doc } => Response {
            status: 200,
            headers: vec![("x-selfstab-exit-code".to_owned(), doc.exit_code.to_string())],
            body: doc.body.clone().into_bytes(),
        },
        JobState::TimedOut { partial } => Response {
            status: 504,
            headers: Vec::new(),
            body: partial.clone().into_bytes(),
        },
        JobState::Drained => json_response(503, json!({"error": "cancelled by server drain"})),
        JobState::Failed { status, message } => {
            json_response(*status, json!({"error": message.clone()}))
        }
    }
}

/// A bound listener plus its shared state.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    active: Arc<AtomicUsize>,
}

impl Server {
    /// Binds `config.host:config.port`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port busy, bad interface) so the CLI
    /// can exit 1 with a diagnostic instead of panicking.
    pub fn bind(config: &ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        Ok(Server {
            listener,
            state: ServeState::new(config),
            active: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (drain token, counters) — lets the CLI arm signal
    /// handling and lets tests drive the API in-process.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Accepts connections until the drain token fires, then winds down:
    /// pool shutdown, then a bounded grace period for connection threads.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (transient `accept` errors on one
    /// connection are swallowed).
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => self.spawn_connection(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.state.shutdown_pool();
        let deadline = Instant::now() + DRAIN_GRACE;
        while self.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    fn spawn_connection(&self, stream: TcpStream) {
        let state = Arc::clone(&self.state);
        let active = Arc::clone(&self.active);
        active.fetch_add(1, Ordering::AcqRel);
        std::thread::spawn(move || {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(KEEP_ALIVE_IDLE));
            serve_connection(&state, &stream);
            active.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Drives one connection: reads requests (pipelining-aware), routes each,
/// writes responses, and closes on error, on `Connection: close`, or when
/// a drain begins.
fn serve_connection(state: &Arc<ServeState>, stream: &TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = RequestReader::new(stream);
    loop {
        match reader.next_request() {
            Ok(Some(request)) => {
                let response = state.handle(&request);
                let keep_alive = request.keep_alive && !state.draining();
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(HttpError::Malformed(m)) => {
                let _ = json_response(400, json!({"error": m})).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::HeadTooLarge) => {
                let _ = json_response(400, json!({"error": "request head too large"}))
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::BodyTooLarge) => {
                let _ = json_response(413, json!({"error": "request body too large"}))
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Truncated) | Err(HttpError::Io(_)) => return,
        }
    }
}

//! The HTTP service: socket handling, routing, the submit flow, journal
//! replay, admission control, and graceful drain.
//!
//! One accept loop (non-blocking, polling the drain token every 10 ms)
//! hands each connection to its own thread, up to a connection cap;
//! connections are cheap because all heavy work runs on the shared
//! [`ServicePool`]. The router itself is a pure function over
//! [`ServeState`] ([`ServeState::handle`]), so integration tests exercise
//! the full API in-process without a socket.
//!
//! **Submit flow** (`POST /v1/jobs`): parse → admission gate
//! ([`Admission`]: per-kind caps and the memory watchdog's shed level —
//! rejections are `429` + `Retry-After`) → validate ([`JobRequest`]) →
//! journal the acceptance (when a journal is configured, the `submitted`
//! record is durable **before** the `202` reaches the client) → consult
//! the content-addressed cache. A hit answers immediately with a `done`
//! job backed by the cached document — no pool work. A key already in
//! flight coalesces onto the computing job's id. Only a true miss
//! enqueues pool work, under a [`CancelToken`] linked to the drain token
//! and carrying the request deadline.
//!
//! **Crash recovery**: at boot, a configured journal is replayed
//! ([`crate::journal::replay`]) — jobs with terminal records become
//! resolvable results again (their ids never 404), jobs the crash
//! interrupted are re-enqueued with their original ids, and the torn
//! tail, if any, is truncated before appending resumes. Re-execution is
//! deterministic, so a replayed job's result is byte-identical to the
//! fault-free run — the property the CI crash drill checks with `cmp`.
//!
//! **Drain** (SIGINT/SIGTERM or [`ServeState::begin_drain`]): stop
//! accepting, fire the drain token (in-flight scans abort at their next
//! cancel poll), shut the pool down, fsync the journal, then give
//! connection threads a bounded grace period to flush their last
//! response. Drained jobs are *not* journaled as terminal: the next boot
//! re-enqueues them.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use selfstab_campaign::telemetry::JobTelemetry;
use selfstab_campaign::{FsyncPolicy, ServicePool};
use selfstab_core::registry_row::{append_row, RegistryRow};
use selfstab_global::CancelToken;
use selfstab_telemetry::{prometheus, Registry};
use serde_json::{json, Value};

use crate::admission::{spawn_watchdog, Admission, PendingCaps};
use crate::cache::{CachedDoc, Lookup, ResultCache};
use crate::chaos::ServeChaos;
use crate::http::{HttpError, Request, RequestReader, Response};
use crate::jobs::{execute, ExecOutcome, JobEntry, JobKind, JobRequest, JobState};
use crate::journal::{replay, ReplayedTerminal, ServeJournal};
use crate::trace::{interleaved_document, JobTrace, TraceIdGen};

/// How long [`Server::run`] waits for connection threads to flush after
/// the drain token fires.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// `Retry-After` seconds suggested on shed (`429`) and overload (`503`)
/// responses — long enough to spread a retry storm, short enough that
/// clients fall back quickly once pressure clears.
const RETRY_AFTER_SECS: &str = "1";

/// `Retry-After` seconds suggested while draining: the process is going
/// away; point clients at its replacement on a drain-sized delay.
const DRAIN_RETRY_AFTER_SECS: &str = "5";

/// Exponent cap for the deterministic retry backoff (`backoff * 2^n`),
/// mirroring the campaign runner's retry machinery.
const BACKOFF_EXP_CAP: u32 = 6;

/// Server construction parameters (the CLI's `serve` flags).
pub struct ServeConfig {
    /// Interface to bind, e.g. `127.0.0.1`.
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port.
    pub port: u16,
    /// Pool worker threads executing jobs.
    pub threads: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Durable job journal path (`--journal`); `None` disables
    /// durability.
    pub journal: Option<PathBuf>,
    /// Cache snapshot path (`--cache-snapshot`); `None` disables warm
    /// restarts.
    pub cache_snapshot: Option<PathBuf>,
    /// Fsync policy shared by the journal and the snapshot (`--fsync`).
    pub fsync: FsyncPolicy,
    /// Extra execution attempts after a panicked one (`--retries`).
    pub retries: u32,
    /// Base of the deterministic exponential retry backoff
    /// (`--backoff-ms`).
    pub backoff: Duration,
    /// Per-kind admission caps (`--max-pending` scales all three).
    pub caps: PendingCaps,
    /// Concurrent connection cap (`--max-connections`).
    pub max_connections: usize,
    /// RSS budget for the memory watchdog (`--max-rss-mb`); `None`
    /// disables it.
    pub max_rss_bytes: Option<u64>,
    /// How long an idle keep-alive connection may sit between requests.
    pub idle_timeout: Duration,
    /// Wall-clock budget for receiving one whole request (the
    /// slow-loris/dribble bound).
    pub request_deadline: Duration,
    /// Seed for the service-fault injector (hidden `--chaos`); `None`
    /// disables it.
    pub chaos: Option<u64>,
    /// Server-wide Chrome-trace file (`--trace`), written at drain with
    /// every request's spans interleaved; `None` disables it.
    pub trace: Option<PathBuf>,
    /// Persistent results registry (`--registry`): every computed job
    /// appends one canonical JSONL row; `None` disables it.
    pub results_registry: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_owned(),
            port: 7878,
            threads: 2,
            cache_bytes: 64 * 1024 * 1024,
            journal: None,
            cache_snapshot: None,
            fsync: FsyncPolicy::Batch,
            retries: 2,
            backoff: Duration::from_millis(50),
            caps: PendingCaps::default(),
            max_connections: 256,
            max_rss_bytes: None,
            idle_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(10),
            chaos: None,
            trace: None,
            results_registry: None,
        }
    }
}

/// Everything the handlers share: the job table, the cache, the pool,
/// the admission gate, the journal, and the metrics registry (one
/// registry — cache, pool, and admission counters land in the same
/// `/v1/metrics` document).
pub struct ServeState {
    registry: Registry,
    cache: ResultCache,
    pool: ServicePool,
    admission: Admission,
    journal: Option<ServeJournal>,
    chaos: Option<ServeChaos>,
    retries: u32,
    backoff: Duration,
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    next_id: AtomicU64,
    drain: Arc<CancelToken>,
    jobs_submitted: Arc<AtomicU64>,
    jobs_replayed: Arc<AtomicU64>,
    responses: AtomicU64,
    /// One origin instant for every trace timestamp, so lanes from
    /// different requests interleave on a single timeline.
    origin: Instant,
    trace_ids: TraceIdGen,
    trace_path: Option<PathBuf>,
    results_registry: Option<PathBuf>,
    active_connections: AtomicUsize,
}

impl ServeState {
    /// Fresh state for `config`: opens (or creates) the cache snapshot
    /// and job journal, replays both, re-enqueues the jobs a crash
    /// interrupted, and arms the memory watchdog.
    ///
    /// # Errors
    ///
    /// Returns a rendered diagnostic if the journal or snapshot exists
    /// but cannot be read/reopened — the CLI exits 1 with it.
    pub fn new(config: &ServeConfig) -> Result<Arc<Self>, String> {
        let registry = Registry::new();
        let cache = match &config.cache_snapshot {
            Some(path) => {
                ResultCache::with_snapshot(config.cache_bytes, &registry, path, config.fsync)?
            }
            None => ResultCache::new(config.cache_bytes, &registry),
        };
        let pool = ServicePool::with_registry(config.threads, Some(&registry));
        let admission = Admission::new(config.caps, &registry);
        if let Some(limit) = config.max_rss_bytes {
            spawn_watchdog(&admission.shed_handle(), limit, &registry);
        }
        let (journal, replayed) = match &config.journal {
            Some(path) => {
                let replayed = replay(path)?;
                let journal = ServeJournal::append(path, replayed.valid_len, config.fsync)?;
                (Some(journal), Some(replayed))
            }
            None => (None, None),
        };
        let jobs_submitted = registry.counter("serve/jobs_submitted");
        let jobs_replayed = registry.counter("serve/jobs_replayed");
        let next_id = replayed.as_ref().map_or(0, |r| r.next_id.saturating_sub(1));
        let state = Arc::new(ServeState {
            registry,
            cache,
            pool,
            admission,
            journal,
            chaos: config.chaos.map(ServeChaos::from_seed),
            retries: config.retries,
            backoff: config.backoff,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(next_id),
            drain: Arc::new(CancelToken::new()),
            jobs_submitted,
            jobs_replayed,
            responses: AtomicU64::new(0),
            origin: Instant::now(),
            trace_ids: TraceIdGen::new(),
            trace_path: config.trace.clone(),
            results_registry: config.results_registry.clone(),
            active_connections: AtomicUsize::new(0),
        });
        if let Some(replayed) = replayed {
            state.restore(replayed);
        }
        Ok(state)
    }

    /// Folds a journal replay back into the live job table: terminal jobs
    /// become resolvable entries, non-terminal jobs re-enqueue with their
    /// original ids (answered from cache when a warm snapshot already has
    /// their document).
    fn restore(self: &Arc<Self>, replayed: crate::journal::ServeReplay) {
        for job in replayed.jobs.into_values() {
            self.jobs_replayed.fetch_add(1, Ordering::Relaxed);
            let kind = JobKind::from_name(&job.kind).unwrap_or(JobKind::Verify);
            match job.terminal {
                Some(ReplayedTerminal::Done(doc)) => {
                    // The result resolves again AND warms the cache (no
                    // snapshot write-through: the journal already holds
                    // these bytes durably).
                    self.cache.insert_restored(&job.key, Arc::clone(&doc));
                    self.insert_replayed(job.id, kind, &job.key, JobState::Done { doc });
                }
                Some(ReplayedTerminal::Failed { status, message }) => {
                    self.insert_replayed(
                        job.id,
                        kind,
                        &job.key,
                        JobState::Failed { status, message },
                    );
                }
                Some(ReplayedTerminal::TimedOut { partial }) => {
                    self.insert_replayed(job.id, kind, &job.key, JobState::TimedOut { partial });
                }
                None => match JobRequest::from_json(&job.request) {
                    Ok(request) => {
                        let entry =
                            self.insert_replayed(job.id, request.kind, &job.key, JobState::Queued);
                        match self.cache.lookup_or_reserve(&job.key, job.id) {
                            Lookup::Hit(doc) => {
                                // The snapshot (or an earlier replayed
                                // job) already has the bytes: terminal
                                // without pool work, journaled so the
                                // *next* restart needs no re-run either.
                                if let Some(journal) = &self.journal {
                                    journal.done(job.id, &doc, &json!({}));
                                }
                                *entry.state.lock().expect("job state poisoned") =
                                    JobState::Done { doc };
                            }
                            Lookup::InFlight(_) | Lookup::Miss => {
                                // Accepted before the crash: admission
                                // caps never apply ("no accepted job is
                                // ever lost" outranks them).
                                self.admission.admit_replayed(request.kind);
                                self.enqueue(request, entry, job.key);
                            }
                        }
                    }
                    Err(e) => {
                        // Validated at the original submit, so this means
                        // the environment changed under the journal.
                        // Surface it as the job's terminal state instead
                        // of wedging the boot.
                        let message = format!("replayed request no longer valid: {}", e.message());
                        if let Some(journal) = &self.journal {
                            journal.failed(job.id, 500, &message, &json!({}));
                        }
                        self.insert_replayed(
                            job.id,
                            kind,
                            &job.key,
                            JobState::Failed {
                                status: 500,
                                message,
                            },
                        );
                    }
                },
            }
        }
    }

    fn insert_replayed(&self, id: u64, kind: JobKind, key: &str, state: JobState) -> Arc<JobEntry> {
        let entry = Arc::new(JobEntry {
            id,
            kind,
            cache_key: key.to_owned(),
            state: Mutex::new(state),
            telemetry: JobTelemetry::default(),
            cached: false,
            trace: None,
        });
        self.jobs
            .lock()
            .expect("job table poisoned")
            .insert(id, Arc::clone(&entry));
        entry
    }

    /// The drain token: fire it (or call [`ServeState::begin_drain`]) to
    /// wind the service down.
    pub fn drain_token(&self) -> Arc<CancelToken> {
        Arc::clone(&self.drain)
    }

    /// `true` once a drain has started.
    pub fn draining(&self) -> bool {
        self.drain.is_cancelled()
    }

    /// Starts a drain: new submits are refused, in-flight jobs abort at
    /// their next cancel poll.
    pub fn begin_drain(&self) {
        self.drain.cancel();
    }

    /// Jobs actually executed on the pool (cache hits and coalesced
    /// submits do not count).
    pub fn executed(&self) -> u64 {
        self.pool.executed()
    }

    /// The admission gate — exposed so drills and tests can force shed
    /// levels and read occupancy.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Routes one parsed request. Pure over the state — no socket — so
    /// tests can drive the full API in-process.
    ///
    /// Every response carries an `X-Selfstab-Trace-Id` header minted at
    /// this ingress point; requests that create a job propagate the same
    /// id through the job's whole span tree. Routing latency (the
    /// time-to-first-byte the handler controls) is recorded per
    /// endpoint.
    pub fn handle(self: &Arc<Self>, req: &Request) -> Response {
        let trace_id = self.trace_ids.mint();
        let started = Instant::now();
        let response = self.route(req, &trace_id);
        self.registry
            .histogram(&format!(
                "serve/ttfb_us{{endpoint=\"{}\"}}",
                endpoint_label(req)
            ))
            .record(started.elapsed().as_micros() as u64);
        let class = match response.status {
            200..=299 => "http/2xx",
            400..=499 => "http/4xx",
            _ => "http/5xx",
        };
        self.registry.counter(class).fetch_add(1, Ordering::Relaxed);
        response.with_header("x-selfstab-trace-id", trace_id)
    }

    fn route(self: &Arc<Self>, req: &Request, trace_id: &str) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            // Liveness: answers 200 as long as the process can serve at
            // all (even while draining — the process is alive).
            ("GET", ["v1", "healthz"]) => json_response(
                200,
                json!({"status": if self.draining() { "draining" } else { "ok" }}),
            ),
            ("GET", ["v1", "readyz"]) => self.readyz(),
            ("GET", ["v1", "metrics"]) => {
                self.refresh_gauges();
                if req.query_is("format", "prometheus") {
                    Response::text(200, prometheus::render(&self.registry))
                } else {
                    json_response(200, self.registry.snapshot_json())
                }
            }
            ("GET", ["v1", "cache", "stats"]) => json_response(200, self.cache.stats_json()),
            ("POST", ["v1", "jobs"]) => self.submit(req, trace_id),
            ("GET", ["v1", "jobs", id]) => match self.job(id) {
                Some(entry) => json_response(200, entry.status_json()),
                None => not_found(),
            },
            ("GET", ["v1", "jobs", id, "result"]) => match self.job(id) {
                Some(entry) => result_response(&entry),
                None => not_found(),
            },
            ("GET", ["v1", "jobs", id, "trace"]) => match self.job(id) {
                Some(entry) => match &entry.trace {
                    Some(trace) => {
                        json_response(200, trace.to_chrome_json(entry.id, entry.kind.name()))
                    }
                    // Replayed from a journal: the originating request
                    // predates this boot, so there is nothing to trace.
                    None => error_response(
                        404,
                        "no_trace",
                        "job was restored from the journal; no trace exists for this boot",
                    ),
                },
                None => not_found(),
            },
            (
                _,
                ["v1", "healthz"]
                | ["v1", "readyz"]
                | ["v1", "metrics"]
                | ["v1", "cache", "stats"]
                | ["v1", "jobs"]
                | ["v1", "jobs", _]
                | ["v1", "jobs", _, "result"]
                | ["v1", "jobs", _, "trace"],
            ) => error_response(405, "method_not_allowed", "method not allowed"),
            _ => not_found(),
        }
    }

    /// Updates the point-in-time gauges the exposition formats report:
    /// per-kind queue depth, active connections, and cache residency.
    /// (RSS is stored by the watchdog thread as it samples.)
    fn refresh_gauges(&self) {
        for kind in [JobKind::Verify, JobKind::Sweep, JobKind::Synthesize] {
            self.registry
                .gauge(&format!("serve/pending{{kind=\"{}\"}}", kind.name()))
                .store(self.admission.pending(kind), Ordering::Relaxed);
        }
        self.registry.gauge("serve/active_connections").store(
            self.active_connections.load(Ordering::Acquire) as u64,
            Ordering::Relaxed,
        );
        self.registry
            .gauge("serve/shed_level")
            .store(u64::from(self.admission.shed_level()), Ordering::Relaxed);
        self.registry
            .gauge("cache/bytes")
            .store(self.cache.bytes() as u64, Ordering::Relaxed);
    }

    /// Readiness: whether a load balancer should keep routing here.
    /// `503 draining` while winding down, `503 saturated` when the
    /// watchdog is shedding or any admission queue is at its cap, `200
    /// ready` otherwise — always with shed level and per-kind occupancy
    /// so routers can back off *before* the 429s start.
    fn readyz(&self) -> Response {
        let (status, label) = if self.draining() {
            (503, "draining")
        } else if self.admission.saturated() {
            (503, "saturated")
        } else {
            (200, "ready")
        };
        json_response(
            status,
            json!({
                "status": label,
                "shed_level": self.admission.shed_level(),
                "shedding": self.admission.shed_kinds(),
                "pending": self.admission.pending_json(),
            }),
        )
    }

    fn job(&self, id: &str) -> Option<Arc<JobEntry>> {
        let id: u64 = id.parse().ok()?;
        self.jobs
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
    }

    /// Times one journal append (including its fsync under
    /// `--fsync always`) into the `serve/journal_append_us` histogram.
    fn journal_event(&self, f: impl FnOnce(&ServeJournal)) {
        if let Some(journal) = &self.journal {
            let started = Instant::now();
            f(journal);
            self.registry
                .histogram("serve/journal_append_us")
                .record(started.elapsed().as_micros() as u64);
        }
    }

    fn submit(self: &Arc<Self>, req: &Request, trace_id: &str) -> Response {
        if self.draining() {
            return error_response(503, "draining", "server is draining")
                .with_header("retry-after", DRAIN_RETRY_AFTER_SECS);
        }
        // The request root opens here; if the submit is rejected the
        // trace is simply dropped with it.
        let trace = Arc::new(JobTrace::new(trace_id.to_owned(), self.origin));
        let body: Value = match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_owned())
            .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                return error_response(400, "bad_json", &format!("invalid JSON: {e}"));
            }
        };
        // Admission gates on the cheap kind extraction, before the
        // expensive spec parse — shed traffic costs almost nothing.
        let admission_ts = trace.now_us();
        let admitted_kind = match body["kind"].as_str().and_then(JobKind::from_name) {
            Some(kind) => match self.admission.admit(kind) {
                Ok(()) => Some(kind),
                Err(shed) => {
                    return error_response(429, shed.code(), &shed.reason(kind))
                        .with_header("retry-after", RETRY_AFTER_SECS);
                }
            },
            // Missing/unknown kind: fall through so validation renders
            // its precise 400.
            None => None,
        };
        trace.span(
            "admission",
            "admission",
            admission_ts,
            trace.now_us().saturating_sub(admission_ts),
            json!({"pending": self.admission.pending_json()}),
        );
        let release_on_reject = |response: Response| {
            if let Some(kind) = admitted_kind {
                self.admission.release(kind);
            }
            response
        };
        let request = match JobRequest::from_json(&body) {
            Ok(r) => r,
            Err(e) => {
                return release_on_reject(error_response(e.status(), e.code(), e.message()));
            }
        };
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);

        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let key = request.cache_key();
        // The table lock spans reserve + insert so a coalesced submit
        // never hands out a job id before that job is observable. Lock
        // order is always table → cache; the pool side touches the cache
        // alone, so the nesting cannot deadlock.
        let cache_ts = trace.now_us();
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        match self.cache.lookup_or_reserve(&key, id) {
            Lookup::Hit(doc) => {
                // Served entirely from cache: a `done` job exists for
                // uniform polling, but nothing touches the pool. Journal
                // acceptance + completion so the id resolves across a
                // restart exactly like a computed job's.
                trace.span(
                    "cache_lookup",
                    "cache",
                    cache_ts,
                    trace.now_us().saturating_sub(cache_ts),
                    json!({"outcome": "hit"}),
                );
                self.journal_event(|j| {
                    j.submitted(id, request.kind.name(), &key, &body);
                    j.done(
                        id,
                        &doc,
                        &JobTelemetry::default().phases.snapshot().to_json(),
                    );
                });
                if let Some(kind) = admitted_kind {
                    self.admission.release(kind);
                }
                trace.finish();
                let entry = Arc::new(JobEntry {
                    id,
                    kind: request.kind,
                    cache_key: key,
                    state: Mutex::new(JobState::Done { doc }),
                    telemetry: JobTelemetry::default(),
                    cached: true,
                    trace: Some(trace),
                });
                jobs.insert(id, entry);
                json_response(200, json!({"id": id, "status": "done", "cached": true}))
            }
            Lookup::InFlight(job) => {
                // Coalesced onto an already-journaled job: this submit
                // holds no admission slot and needs no journal record.
                // The coalescing job keeps its own trace; this request's
                // id rides only in the response header, and the join is
                // visible as a span on the computing job's lane.
                if let Some(entry) = jobs.get(&job) {
                    if let Some(job_trace) = &entry.trace {
                        job_trace.span(
                            "coalesced_submit",
                            "cache",
                            cache_ts,
                            job_trace.now_us().saturating_sub(cache_ts),
                            json!({"coalesced_trace_id": trace_id}),
                        );
                    }
                }
                if let Some(kind) = admitted_kind {
                    self.admission.release(kind);
                }
                json_response(
                    202,
                    json!({"id": job, "status": "queued", "coalesced": true}),
                )
            }
            Lookup::Miss => {
                trace.span(
                    "cache_lookup",
                    "cache",
                    cache_ts,
                    trace.now_us().saturating_sub(cache_ts),
                    json!({"outcome": "miss"}),
                );
                // Durability point: the acceptance is on disk before the
                // client hears 202, so a crash after this line can only
                // delay the job, never lose it.
                self.journal_event(|j| j.submitted(id, request.kind.name(), &key, &body));
                let entry = Arc::new(JobEntry {
                    id,
                    kind: request.kind,
                    cache_key: key.clone(),
                    state: Mutex::new(JobState::Queued),
                    telemetry: JobTelemetry::default(),
                    cached: false,
                    trace: Some(trace),
                });
                jobs.insert(id, Arc::clone(&entry));
                drop(jobs);
                self.enqueue(request, entry, key);
                json_response(202, json!({"id": id, "status": "queued", "cached": false}))
            }
        }
    }

    fn enqueue(self: &Arc<Self>, request: JobRequest, entry: Arc<JobEntry>, key: String) {
        // Deadlines anchor at submit: queue wait burns request budget.
        let token = match request.deadline_from(Instant::now()) {
            Some(deadline) => CancelToken::linked_with_deadline(self.drain_token(), deadline),
            None => CancelToken::linked(self.drain_token()),
        };
        let state = Arc::clone(self);
        let enqueued = Instant::now();
        let enqueued_us = entry.trace.as_ref().map(|t| t.now_us());
        let handle = self.pool.submit::<(), _>(move || {
            *entry.state.lock().expect("job state poisoned") = JobState::Running;
            // Queue wait: enqueue to first execution, one histogram
            // series per kind plus a span on the job's lane.
            let waited_us = enqueued.elapsed().as_micros() as u64;
            state
                .registry
                .histogram(&format!(
                    "serve/queue_wait_us{{kind=\"{}\"}}",
                    entry.kind.name()
                ))
                .record(waited_us);
            if let (Some(trace), Some(ts)) = (&entry.trace, enqueued_us) {
                trace.span("queue_wait", "pool", ts, waited_us, Value::Null);
            }
            // Panic isolation with deterministic retry: a panicked
            // attempt (organic or chaos-injected) backs off
            // `backoff * 2^min(attempt, cap)` and re-executes, up to the
            // retry budget — the campaign runner's machinery at the
            // service layer.
            let mut attempt: u32 = 0;
            let exec_started = Instant::now();
            let outcome = loop {
                entry.telemetry.attempts.fetch_add(1, Ordering::Relaxed);
                let run = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(chaos) = &state.chaos {
                        if chaos.should_panic(&key, attempt) {
                            panic!("chaos: injected job panic");
                        }
                    }
                    execute(&request, &entry.telemetry, &token, entry.trace.as_deref())
                }));
                match run {
                    Ok(outcome) => break outcome,
                    Err(_) if attempt < state.retries && !token.is_cancelled() => {
                        let backoff =
                            state.backoff * 2u32.saturating_pow(attempt.min(BACKOFF_EXP_CAP));
                        std::thread::sleep(backoff);
                        attempt += 1;
                    }
                    Err(_) => {
                        break ExecOutcome::Failed {
                            status: 500,
                            message: "job panicked".to_owned(),
                        }
                    }
                }
            };
            let phases_us = entry.telemetry.phases.snapshot().to_json();
            let next = match outcome {
                ExecOutcome::Done(doc) => {
                    let doc = Arc::new(doc);
                    state.cache.fulfill(&key, Arc::clone(&doc));
                    state.journal_event(|j| j.done(entry.id, &doc, &phases_us));
                    state.append_registry_row(
                        &request,
                        &entry,
                        &doc,
                        exec_started.elapsed().as_micros() as u64,
                    );
                    JobState::Done { doc }
                }
                ExecOutcome::Cancelled { partial } => {
                    state.cache.abandon(&key);
                    if state.draining() {
                        // Deliberately not journaled: a drain is a
                        // shutdown, and the next boot re-enqueues.
                        JobState::Drained
                    } else {
                        state.journal_event(|j| j.timed_out(entry.id, &partial, &phases_us));
                        JobState::TimedOut { partial }
                    }
                }
                ExecOutcome::Failed { status, message } => {
                    state.cache.abandon(&key);
                    state.journal_event(|j| j.failed(entry.id, status, &message, &phases_us));
                    JobState::Failed { status, message }
                }
            };
            state
                .registry
                .histogram(&format!(
                    "serve/exec_us{{kind=\"{}\",outcome=\"{}\"}}",
                    entry.kind.name(),
                    next.label(),
                ))
                .record(exec_started.elapsed().as_micros() as u64);
            if let Some(trace) = &entry.trace {
                trace.finish();
            }
            *entry.state.lock().expect("job state poisoned") = next;
            state.admission.release(entry.kind);
        });
        // Completion is observed through the job table; the handle's only
        // remaining duty is the shutdown edge, where the pool refuses the
        // job and the closure never runs.
        drop(handle);
    }

    /// Appends one canonical registry row for a pool-computed `Done`
    /// outcome. Cache-hit submits never append (they measured nothing
    /// new), which keeps two identical fresh-boot runs byte-identical in
    /// the registry modulo `meta`. An append failure costs one
    /// measurement, never the job — it bumps `serve/registry_errors`.
    fn append_registry_row(
        &self,
        request: &JobRequest,
        entry: &JobEntry,
        doc: &CachedDoc,
        wall_us: u64,
    ) {
        let Some(path) = &self.results_registry else {
            return;
        };
        let symmetry = format!("{:?}", request.symmetry).to_lowercase();
        let mut kpis = json!({
            "exit_code": doc.exit_code,
            "body_bytes": doc.body.len() as u64,
            "attempts": entry.telemetry.attempts.load(Ordering::Relaxed),
        });
        if let (Some(counters), Value::Object(map)) = (entry.telemetry.counters(), &mut kpis) {
            map.insert("counters".to_owned(), counters.deterministic_json());
        }
        let row = RegistryRow {
            source: "serve".to_owned(),
            spec: request.hash.to_string(),
            kind: request.kind.name().to_owned(),
            k: match request.kind {
                JobKind::Synthesize => "-".to_owned(),
                _ => format!("{}..{}", request.k_from, request.k_to),
            },
            knobs: json!({"max_states": request.max_states, "symmetry": symmetry}),
            kpis,
            meta: RegistryRow::meta_now(wall_us),
        };
        if append_row(path, &row).is_err() {
            self.registry
                .counter("serve/registry_errors")
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes the server-wide interleaved Chrome-trace document
    /// (`--trace`) from every traced job's lane, ordered by job id so
    /// the file is stable for a given run. [`Server::run`] calls it once
    /// at drain; exposed so in-process tests (no socket) can drive it.
    pub fn write_trace_file(&self) {
        let Some(path) = &self.trace_path else {
            return;
        };
        let jobs = self.jobs.lock().expect("job table poisoned");
        let mut entries: Vec<&Arc<JobEntry>> = jobs.values().collect();
        entries.sort_by_key(|e| e.id);
        let lanes: Vec<Vec<Value>> = entries
            .iter()
            .filter_map(|e| e.trace.as_ref().map(|t| t.events(e.id, e.kind.name())))
            .collect();
        let doc = interleaved_document(lanes);
        if std::fs::write(path, format!("{doc}\n")).is_err() {
            self.registry
                .counter("serve/trace_write_errors")
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Should this response be torn by the chaos plan? Consumes one
    /// response index either way, so tear decisions stay deterministic
    /// per seed.
    fn chaos_tears_response(&self) -> bool {
        match &self.chaos {
            Some(chaos) => {
                let index = self.responses.fetch_add(1, Ordering::Relaxed);
                chaos.should_tear_response(index)
            }
            None => false,
        }
    }

    /// Winds the pool down after a drain and fsyncs the journal;
    /// queued-but-unstarted jobs run against the already-fired token and
    /// park as `drained`.
    pub fn shutdown_pool(&self) {
        self.pool.shutdown();
        if let Some(journal) = &self.journal {
            journal.sync();
        }
    }
}

/// A compact-JSON response body.
fn json_response(status: u16, value: Value) -> Response {
    Response::json(status, value.to_string())
}

/// The structured error body every non-2xx carries: `error` stays the
/// human-readable reason, `code` is the stable machine-readable
/// discriminator (`queue_full` vs `draining` vs `bad_spec` …), so
/// clients branch on `code`, never on prose.
fn error_response(status: u16, code: &str, reason: &str) -> Response {
    json_response(status, json!({"error": reason, "code": code}))
}

fn not_found() -> Response {
    error_response(404, "not_found", "not found")
}

/// The bounded endpoint label the TTFB histogram is keyed by — path
/// *templates*, never raw paths, so job ids cannot mint unbounded
/// metric series.
fn endpoint_label(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["v1", "healthz"] => "healthz",
        ["v1", "readyz"] => "readyz",
        ["v1", "metrics"] => "metrics",
        ["v1", "cache", "stats"] => "cache_stats",
        ["v1", "jobs"] => "submit",
        ["v1", "jobs", _] => "job_status",
        ["v1", "jobs", _, "result"] => "job_result",
        ["v1", "jobs", _, "trace"] => "job_trace",
        _ => "other",
    }
}

fn result_response(entry: &JobEntry) -> Response {
    let state = entry.state.lock().expect("job state poisoned");
    match &*state {
        JobState::Queued | JobState::Running => {
            json_response(202, json!({"id": entry.id, "status": state.label()}))
        }
        JobState::Done { doc } => Response {
            status: 200,
            headers: vec![("x-selfstab-exit-code".to_owned(), doc.exit_code.to_string())],
            body: doc.body.clone().into_bytes(),
        },
        JobState::TimedOut { partial } => Response {
            status: 504,
            headers: Vec::new(),
            body: partial.clone().into_bytes(),
        },
        JobState::Drained => error_response(503, "drained", "cancelled by server drain")
            .with_header("retry-after", DRAIN_RETRY_AFTER_SECS),
        JobState::Failed { status, message } => error_response(*status, "job_failed", message),
    }
}

/// A bound listener plus its shared state and connection limits.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    max_connections: usize,
    idle_timeout: Duration,
    request_deadline: Duration,
}

impl Server {
    /// Binds `config.host:config.port` and builds (replaying journal and
    /// snapshot, if configured) the shared state.
    ///
    /// # Errors
    ///
    /// Returns a rendered diagnostic on bind failure (port busy, bad
    /// interface) or journal/snapshot trouble so the CLI can exit 1
    /// instead of panicking.
    pub fn bind(config: &ServeConfig) -> Result<Self, String> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))
            .map_err(|e| format!("cannot bind {}:{}: {e}", config.host, config.port))?;
        Ok(Server {
            listener,
            state: ServeState::new(config)?,
            max_connections: config.max_connections.max(1),
            idle_timeout: config.idle_timeout,
            request_deadline: config.request_deadline,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name lookup failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (drain token, counters) — lets the CLI arm signal
    /// handling and lets tests drive the API in-process.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Accepts connections until the drain token fires, then winds down:
    /// pool shutdown + journal fsync, then a bounded grace period for
    /// connection threads.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (transient `accept` errors on one
    /// connection are swallowed).
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => self.spawn_connection(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.state.shutdown_pool();
        // All pool work is terminal now: lanes are complete, so the
        // server-wide trace file captures every request of this run.
        self.state.write_trace_file();
        let deadline = Instant::now() + DRAIN_GRACE;
        while self.state.active_connections.load(Ordering::Acquire) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    fn spawn_connection(&self, stream: TcpStream) {
        // Connection cap: refuse with a structured 503 instead of
        // accepting unboundedly many handler threads. The response is
        // written on the accept thread — it is one small buffered write.
        if self.state.active_connections.load(Ordering::Acquire) >= self.max_connections {
            self.state
                .registry
                .counter("serve/connections_refused")
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = error_response(503, "overloaded", "connection limit reached; retry shortly")
                .with_header("retry-after", RETRY_AFTER_SECS)
                .write_to(&mut stream, false);
            return;
        }
        let state = Arc::clone(&self.state);
        let idle_timeout = self.idle_timeout;
        let request_deadline = self.request_deadline;
        state.active_connections.fetch_add(1, Ordering::AcqRel);
        std::thread::spawn(move || {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(idle_timeout));
            let _ = stream.set_write_timeout(Some(request_deadline));
            serve_connection(&state, &stream, request_deadline);
            state.active_connections.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Drives one connection: reads requests (pipelining-aware, bounded by
/// the per-request deadline), routes each, writes responses, and closes
/// on error, on `Connection: close`, on a request timeout (after a
/// `408`), or when a drain begins.
fn serve_connection(state: &Arc<ServeState>, stream: &TcpStream, request_deadline: Duration) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = RequestReader::with_deadline(stream, request_deadline);
    loop {
        match reader.next_request() {
            Ok(Some(request)) => {
                let response = state.handle(&request);
                let keep_alive = request.keep_alive && !state.draining();
                if state.chaos_tears_response() {
                    // Chaos: send half the bytes and slam the connection
                    // — the client sees a torn response, but the job
                    // behind it is untouched and stays resolvable.
                    let mut bytes = Vec::new();
                    let _ = response.write_to(&mut bytes, keep_alive);
                    let _ = writer.write_all(&bytes[..bytes.len() / 2]);
                    return;
                }
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(HttpError::Malformed(m)) => {
                let _ = error_response(400, "malformed", &m).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::HeadTooLarge) => {
                let _ = error_response(400, "head_too_large", "request head too large")
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::BodyTooLarge) => {
                let _ = error_response(413, "body_too_large", "request body too large")
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::RequestTimedOut) => {
                // Slow-loris/stall/half-close: answer 408 so the peer
                // knows, then free this worker thread.
                let _ = error_response(408, "request_timeout", "request was not completed in time")
                    .write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

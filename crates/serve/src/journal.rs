//! The durable job journal: accepted jobs and their terminal results,
//! persisted through the campaign crate's CRC-32-framed torn-write-safe
//! journal so a crashed or SIGKILLed server restarts without losing work.
//!
//! The contract mirrors PR 3's sweep checkpointing, lifted to the service
//! layer. Every record is one `len crc payload\n` frame
//! ([`selfstab_campaign::journal::frame`]); the payloads are:
//!
//! ```text
//! {"ev":"serve","version":1}
//! {"ev":"submitted","id":3,"kind":"verify","key":"…","request":{…}}
//! {"ev":"done","id":3,"exit_code":0,"body":"…","phases_us":{…}}
//! {"ev":"failed","id":3,"status":500,"message":"…","phases_us":{…}}
//! {"ev":"timed_out","id":3,"partial":"…","phases_us":{…}}
//! ```
//!
//! Terminal records carry the job's per-phase time breakdown
//! (`phases_us`) so `selfstab stats` can cross-tab service traffic the
//! way it cross-tabs sweep metrics. Replay ignores unknown fields, so
//! journals written before this field replay unchanged.
//!
//! `submitted` is written **before** the 202 reaches the client, so every
//! job a client was told about is on disk; the `request` field is the
//! original validated POST body, which is everything needed to re-run the
//! job. The three terminal events carry the full response payload, so a
//! client polling `/v1/jobs/:id/result` across a restart reads the same
//! bytes it would have read before the crash.
//!
//! [`replay`] folds the longest valid frame prefix back into the job
//! table: jobs with a terminal event become resolvable results; jobs
//! without one are exactly the crash's collateral and are **re-enqueued**
//! by the server at boot. A job re-executed after a crash produces a
//! byte-identical document (the engines are deterministic), so replay
//! plus re-execution converges to the fault-free outcome — the property
//! the CI crash drill byte-diffs.
//!
//! Drained jobs are deliberately *not* terminal on disk: a drain is a
//! shutdown, and the next boot re-enqueues them.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use selfstab_campaign::journal::{frame, replay_frames, Journal};
use selfstab_campaign::FsyncPolicy;
use serde_json::{json, Value};

use crate::cache::CachedDoc;

/// Journal format version, bumped on incompatible payload changes.
const SERVE_JOURNAL_VERSION: u64 = 1;

/// The server's append side of the job journal. Thin wrapper over the
/// campaign [`Journal`] that renders serve-specific events.
#[derive(Debug)]
pub struct ServeJournal {
    inner: Journal,
}

impl ServeJournal {
    /// Creates a fresh journal at `path` (truncating) and writes the
    /// header record.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure as an [`std::io::Error`]-like
    /// string so the CLI can exit 1 with a diagnostic.
    pub fn create(path: &Path, fsync: FsyncPolicy) -> Result<Self, String> {
        let inner = Journal::create(path, fsync).map_err(|e| e.to_string())?;
        let journal = ServeJournal { inner };
        journal
            .inner
            .event(&json!({"ev": "serve", "version": SERVE_JOURNAL_VERSION}));
        Ok(journal)
    }

    /// Opens `path` for appending, first truncating the torn tail to
    /// `valid_len` (from [`replay`]). Writes the header only when the
    /// journal is empty.
    ///
    /// # Errors
    ///
    /// Propagates open/truncate failures.
    pub fn append(path: &Path, valid_len: u64, fsync: FsyncPolicy) -> Result<Self, String> {
        let inner = Journal::append(path, valid_len, fsync).map_err(|e| e.to_string())?;
        let journal = ServeJournal { inner };
        if valid_len == 0 {
            journal
                .inner
                .event(&json!({"ev": "serve", "version": SERVE_JOURNAL_VERSION}));
        }
        Ok(journal)
    }

    /// Journals an accepted job before its 202 is sent: id, kind, cache
    /// key, and the full validated request body (everything re-execution
    /// needs).
    pub fn submitted(&self, id: u64, kind: &str, key: &str, request: &Value) {
        self.inner.event(&json!({
            "ev": "submitted",
            "id": id,
            "kind": kind,
            "key": key,
            "request": request.clone(),
        }));
    }

    /// Journals a completed job with its canonical result bytes and
    /// per-phase time breakdown.
    pub fn done(&self, id: u64, doc: &CachedDoc, phases_us: &Value) {
        self.inner.event(&json!({
            "ev": "done",
            "id": id,
            "exit_code": doc.exit_code,
            "body": doc.body.clone(),
            "phases_us": phases_us.clone(),
        }));
    }

    /// Journals a failed job (could not run, or panicked out of retries).
    pub fn failed(&self, id: u64, status: u16, message: &str, phases_us: &Value) {
        self.inner.event(&json!({
            "ev": "failed",
            "id": id,
            "status": status,
            "message": message,
            "phases_us": phases_us.clone(),
        }));
    }

    /// Journals a deadline expiry with the partial rows completed before
    /// the cut.
    pub fn timed_out(&self, id: u64, partial: &str, phases_us: &Value) {
        self.inner.event(&json!({
            "ev": "timed_out",
            "id": id,
            "partial": partial,
            "phases_us": phases_us.clone(),
        }));
    }

    /// Flushes and fsyncs everything written so far (the drain path).
    pub fn sync(&self) {
        self.inner.sync();
    }
}

/// A replayed job's terminal state, if it reached one before the crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayedTerminal {
    /// The job completed; the document is byte-identical to what was
    /// served before the crash.
    Done(Arc<CachedDoc>),
    /// The job failed with an HTTP status and message.
    Failed {
        /// HTTP status the failure maps to.
        status: u16,
        /// Human-readable reason.
        message: String,
    },
    /// The job's deadline fired; `partial` holds the completed rows.
    TimedOut {
        /// The partial document served with 504.
        partial: String,
    },
}

/// One job recovered from the journal.
#[derive(Clone, Debug)]
pub struct ReplayedJob {
    /// The job id (preserved across restarts).
    pub id: u64,
    /// The kind string from the `submitted` record.
    pub kind: String,
    /// The content-address key from the `submitted` record.
    pub key: String,
    /// The original validated request body.
    pub request: Value,
    /// The terminal state, or `None` for a job the crash interrupted —
    /// the server re-enqueues exactly these.
    pub terminal: Option<ReplayedTerminal>,
}

/// The journal folded back into boot state.
#[derive(Debug, Default)]
pub struct ServeReplay {
    /// Every journaled job in id order.
    pub jobs: BTreeMap<u64, ReplayedJob>,
    /// The next job id to hand out (max journaled id + 1).
    pub next_id: u64,
    /// Byte length of the valid frame prefix (pass to
    /// [`ServeJournal::append`]).
    pub valid_len: u64,
}

impl ServeReplay {
    /// Jobs that never reached a terminal state, in id order — the set a
    /// restart re-enqueues.
    pub fn non_terminal(&self) -> impl Iterator<Item = &ReplayedJob> {
        self.jobs.values().filter(|j| j.terminal.is_none())
    }
}

/// Replays a serve journal: validates frames in order, truncates at the
/// first torn or corrupt record, and folds `submitted`/terminal events
/// into per-id job state. A terminal event for an unknown id (its
/// `submitted` record fell past the torn tail) is dropped — a result is
/// only resolvable if its acceptance survived too, so replay can never
/// invent a job the client was never told about.
///
/// # Errors
///
/// Propagates the underlying read failure; a missing file replays as
/// empty.
pub fn replay(path: &Path) -> Result<ServeReplay, String> {
    let frames = replay_frames(path).map_err(|e| e.to_string())?;
    let mut out = ServeReplay {
        valid_len: frames.valid_len,
        ..ServeReplay::default()
    };
    for ev in frames.events {
        let Some(id) = ev["id"].as_u64() else {
            continue; // header or unknown record
        };
        match ev["ev"].as_str() {
            Some("submitted") => {
                out.jobs.insert(
                    id,
                    ReplayedJob {
                        id,
                        kind: ev["kind"].as_str().unwrap_or_default().to_owned(),
                        key: ev["key"].as_str().unwrap_or_default().to_owned(),
                        request: ev["request"].clone(),
                        terminal: None,
                    },
                );
                out.next_id = out.next_id.max(id + 1);
            }
            Some("done") => {
                if let (Some(job), Some(body), Some(code)) = (
                    out.jobs.get_mut(&id),
                    ev["body"].as_str(),
                    ev["exit_code"].as_u64(),
                ) {
                    job.terminal = Some(ReplayedTerminal::Done(Arc::new(CachedDoc {
                        body: body.to_owned(),
                        exit_code: code as u8,
                    })));
                }
            }
            Some("failed") => {
                if let (Some(job), Some(status)) = (out.jobs.get_mut(&id), ev["status"].as_u64()) {
                    job.terminal = Some(ReplayedTerminal::Failed {
                        status: status as u16,
                        message: ev["message"].as_str().unwrap_or_default().to_owned(),
                    });
                }
            }
            Some("timed_out") => {
                if let (Some(job), Some(partial)) = (out.jobs.get_mut(&id), ev["partial"].as_str())
                {
                    job.terminal = Some(ReplayedTerminal::TimedOut {
                        partial: partial.to_owned(),
                    });
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Frames one serve event for tests that hand-assemble journals.
pub fn frame_event(v: &Value) -> String {
    frame(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("selfstab-serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn doc(body: &str) -> CachedDoc {
        CachedDoc {
            body: body.to_owned(),
            exit_code: 0,
        }
    }

    #[test]
    fn roundtrip_recovers_terminal_and_pending_jobs() {
        let path = tmp("roundtrip.jsonl");
        let j = ServeJournal::create(&path, FsyncPolicy::Always).unwrap();
        j.submitted(
            1,
            "verify",
            "h:verify:4..4",
            &json!({"kind": "verify", "k": 4}),
        );
        j.submitted(
            2,
            "sweep",
            "h:sweep:2..9",
            &json!({"kind": "sweep", "k": 2, "to": 9}),
        );
        j.submitted(
            3,
            "synthesize",
            "h:synthesize",
            &json!({"kind": "synthesize"}),
        );
        j.done(1, &doc("{\"rows\":[]}\n"), &json!({"fused_scan": 12}));
        j.failed(3, 500, "job panicked", &json!({}));
        j.sync();
        drop(j);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.jobs.len(), 3);
        assert_eq!(replayed.next_id, 4);
        assert!(matches!(
            replayed.jobs[&1].terminal,
            Some(ReplayedTerminal::Done(_))
        ));
        assert!(matches!(
            replayed.jobs[&3].terminal,
            Some(ReplayedTerminal::Failed { status: 500, .. })
        ));
        let pending: Vec<u64> = replayed.non_terminal().map(|job| job.id).collect();
        assert_eq!(pending, vec![2], "only the sweep never finished");
        assert_eq!(replayed.jobs[&2].request["to"], 9);
        assert_eq!(
            replayed.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "a clean journal is valid to its last byte"
        );
    }

    #[test]
    fn torn_tail_drops_the_last_record_only() {
        let path = tmp("torn.jsonl");
        let good = format!(
            "{}{}{}",
            frame_event(&json!({"ev": "serve", "version": 1})),
            frame_event(
                &json!({"ev": "submitted", "id": 1, "kind": "verify", "key": "k", "request": {}})
            ),
            frame_event(&json!({"ev": "done", "id": 1, "exit_code": 0, "body": "b"})),
        );
        let torn = frame_event(
            &json!({"ev": "submitted", "id": 2, "kind": "verify", "key": "k2", "request": {}}),
        );
        std::fs::write(&path, format!("{good}{}", &torn[..torn.len() / 2])).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.jobs.len(), 1);
        assert!(replayed.jobs[&1].terminal.is_some());
        assert_eq!(replayed.valid_len as usize, good.len());
        assert_eq!(replayed.next_id, 2, "the torn submit never happened");
    }

    #[test]
    fn terminal_without_submitted_is_dropped() {
        // A `done` whose `submitted` record was lost to an earlier
        // truncation must not resurrect a job nobody was told about.
        let path = tmp("orphan.jsonl");
        std::fs::write(
            &path,
            frame_event(&json!({"ev": "done", "id": 9, "exit_code": 0, "body": "b"})),
        )
        .unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.jobs.is_empty());
        assert_eq!(replayed.next_id, 0);
    }

    #[test]
    fn append_after_replay_continues_the_id_space() {
        let path = tmp("append.jsonl");
        let j = ServeJournal::create(&path, FsyncPolicy::Batch).unwrap();
        j.submitted(1, "verify", "k1", &json!({}));
        j.sync();
        drop(j);

        let replayed = replay(&path).unwrap();
        let j = ServeJournal::append(&path, replayed.valid_len, FsyncPolicy::Batch).unwrap();
        j.submitted(replayed.next_id + 1, "verify", "k2", &json!({}));
        j.sync();
        drop(j);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.jobs.len(), 2);
        assert_eq!(replayed.valid_len, std::fs::metadata(&path).unwrap().len());
    }
}

//! Canonical JSON rendering shared by the CLI and the HTTP service.
//!
//! The service's headline contract is that `GET /v1/jobs/:id/result`
//! returns bytes **identical** to what `selfstab check --json` /
//! `selfstab synthesize --json` print for the same inputs. Rather than
//! testing two renderers into agreement, there is exactly one: the row
//! builders and the document framing live here, and the CLI delegates to
//! them (see `crates/cli/src/json.rs`). Identity holds by construction.
//!
//! Framing mirrors the CLI precisely:
//!
//! * `check --json` prints `serde_json::to_string_pretty` of the row
//!   array through `println!` — pretty JSON plus a trailing newline
//!   ([`check_document`]).
//! * `synthesize --json` prints the compact `Display` form of one value
//!   through `println!` — compact JSON plus a trailing newline
//!   ([`synthesis_document`]).

use selfstab_global::check::ConvergenceReport;
use selfstab_protocol::file::render_protocol_file;
use selfstab_protocol::Protocol;
use selfstab_synth::{SynthesisOutcome, SynthesisVerdict};
use selfstab_telemetry::SynthesisCountersSnapshot;
use serde_json::{json, Value};

/// A fixed-size global [`ConvergenceReport`] as one JSON row.
pub fn convergence_report(report: &ConvergenceReport) -> Value {
    json!({
        "ring_size": report.ring_size,
        "state_count": report.state_count,
        "legit_count": report.legit_count,
        "closure_ok": report.closure_violation.is_none(),
        "illegitimate_deadlocks": report.illegitimate_deadlocks.len(),
        "livelock_length": report.livelock.as_ref().map(Vec::len),
        "self_stabilizing": report.self_stabilizing(),
    })
}

/// A [`SynthesisOutcome`] as JSON. Only deterministic values appear (no
/// durations, no thread count, no scheduling-dependent counters), so the
/// document is byte-identical for every `--threads` setting.
pub fn synthesis_outcome(
    protocol: &Protocol,
    outcome: &SynthesisOutcome,
    counters: &SynthesisCountersSnapshot,
) -> Value {
    let solutions: Vec<Value> = outcome
        .solutions()
        .iter()
        .map(|s| {
            json!({
                "verdict": match s.verdict {
                    SynthesisVerdict::NoPseudoLivelock => "no_pseudo_livelock",
                    SynthesisVerdict::PseudoLivelocksWithoutTrails =>
                        "pseudo_livelocks_without_trails",
                },
                "resolve": s.resolve.iter()
                    .map(|&st| protocol.space().format_compact(st, protocol.domain()))
                    .collect::<Vec<_>>(),
                "added": s.added.iter()
                    .map(|t| json!({
                        "from": protocol.space().format_compact(t.source, protocol.domain()),
                        "to": protocol.domain().label(t.target),
                    }))
                    .collect::<Vec<_>>(),
                "protocol_file": render_protocol_file(&s.protocol),
            })
        })
        .collect();
    json!({
        "protocol": protocol.name(),
        "success": outcome.is_success(),
        "truncated": outcome.truncated(),
        "cancelled": outcome.cancelled(),
        "counters": counters.deterministic_json(),
        "solutions": solutions,
    })
}

/// The complete `check --json` output for a run of per-K rows: pretty
/// array, trailing newline.
pub fn check_document(rows: Vec<Value>) -> String {
    let mut body = serde_json::to_string_pretty(&Value::Array(rows))
        .expect("rendering an in-memory Value cannot fail");
    body.push('\n');
    body
}

/// The complete `synthesize --json` output: one compact value, trailing
/// newline.
pub fn synthesis_document(value: &Value) -> String {
    format!("{value}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_document_is_pretty_array_plus_newline() {
        let doc = check_document(vec![json!({"ring_size": 3})]);
        assert!(doc.starts_with("[\n"));
        assert!(doc.ends_with("}\n]\n"));
        assert_eq!(doc.matches('\n').count(), 5);
    }

    #[test]
    fn empty_check_document_matches_println_framing() {
        assert_eq!(check_document(Vec::new()), "[]\n");
    }

    #[test]
    fn synthesis_document_is_compact_plus_newline() {
        let doc = synthesis_document(&json!({"success": true, "solutions": []}));
        assert_eq!(doc, "{\"solutions\":[],\"success\":true}\n");
    }
}

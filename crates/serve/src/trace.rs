//! Request-scoped tracing: one trace id per HTTP request, one span lane
//! per job, rendered as Chrome trace-event documents.
//!
//! Every request entering [`crate::server::ServeState::handle`] is
//! minted a process-unique trace id and answers with it in an
//! `X-Selfstab-Trace-Id` header. Requests that create a job attach a
//! [`JobTrace`] to the [`crate::jobs::JobEntry`]; the submit path,
//! admission gate, cache lookup, queue wait, and the engine's `Phase`
//! spans all record into it. `GET /v1/jobs/:id/trace` renders one job's
//! lane; the server-wide `--trace` file interleaves every job's lane in
//! a single document.
//!
//! Nesting is by containment, the Chrome trace-event model: all of a
//! job's spans share `pid` 1 and `tid` = job id, timestamps are measured
//! from one server-wide origin instant, and the *request root* span
//! (named `request`) runs from ingress to the job's terminal state, so
//! every child span the job records sits inside it on the timeline.
//! Perfetto and `chrome://tracing` draw exactly that hierarchy.
//!
//! None of this perturbs result documents: trace data is out-of-band by
//! construction (`/v1/jobs/:id/result` bytes never mention it), keeping
//! the determinism contract intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde_json::{json, Value};

/// Mints process-unique trace ids: a per-boot seed (wall clock ⊕ pid)
/// plus an atomic sequence number, rendered `SEED-SEQ` in hex. Two
/// requests can never share an id within a boot (the sequence), and two
/// boots practically never collide (the seed).
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    next: AtomicU64,
}

impl Default for TraceIdGen {
    fn default() -> Self {
        TraceIdGen::new()
    }
}

impl TraceIdGen {
    /// A generator seeded from the wall clock and pid.
    pub fn new() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        TraceIdGen {
            seed: nanos ^ (u64::from(std::process::id()) << 32),
            next: AtomicU64::new(0),
        }
    }

    /// The next trace id.
    pub fn mint(&self) -> String {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        format!("{:016x}-{:08x}", self.seed, seq)
    }
}

/// One recorded span: a Chrome `ph:"X"` complete event relative to the
/// server origin.
#[derive(Clone, Debug)]
struct TraceSpan {
    name: String,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    args: Value,
}

/// The span collection of one job, rooted at its originating request.
///
/// Cheap by design: spans are coarse (admission, cache, queue wait, one
/// per engine phase per K), so the mutex is touched a handful of times
/// per job — never inside the scan loops.
#[derive(Debug)]
pub struct JobTrace {
    trace_id: String,
    origin: Instant,
    start_us: u64,
    end_us: AtomicU64,
    spans: Mutex<Vec<TraceSpan>>,
}

impl JobTrace {
    /// A trace starting *now*, measured against the server-wide `origin`
    /// so lanes from different requests align on one timeline.
    pub fn new(trace_id: String, origin: Instant) -> Self {
        let start_us = origin.elapsed().as_micros() as u64;
        JobTrace {
            trace_id,
            origin,
            start_us,
            end_us: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The request's trace id.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Microseconds since the server origin — the `ts` clock.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Records one complete span. `args` may be `Value::Null` for none;
    /// the trace id is injected at render time, so every span of the
    /// document carries it.
    pub fn span(&self, name: &str, cat: &'static str, ts_us: u64, dur_us: u64, args: Value) {
        self.spans.lock().expect("trace poisoned").push(TraceSpan {
            name: name.to_owned(),
            cat,
            ts_us,
            dur_us,
            args,
        });
    }

    /// Times `f` as a span named `name`.
    pub fn time<T>(&self, name: &str, cat: &'static str, args: Value, f: impl FnOnce() -> T) -> T {
        let ts = self.now_us();
        let out = f();
        self.span(name, cat, ts, self.now_us().saturating_sub(ts), args);
        out
    }

    /// Closes the request root span (idempotent — first close wins).
    /// Called when the job reaches a terminal state.
    pub fn finish(&self) {
        let _ = self.end_us.compare_exchange(
            0,
            self.now_us().max(self.start_us + 1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The job's trace events: the `request` root first, then every
    /// recorded span, all on `tid` = `job_id` with the trace id in every
    /// event's args. An unfinished job renders with the root open-ended
    /// at "now".
    pub fn events(&self, job_id: u64, kind: &str) -> Vec<Value> {
        let end = match self.end_us.load(Ordering::Relaxed) {
            0 => self.now_us().max(self.start_us + 1),
            end => end,
        };
        let mut events = vec![json!({
            "name": "request",
            "cat": "request",
            "ph": "X",
            "pid": 1,
            "tid": job_id,
            "ts": self.start_us,
            "dur": end - self.start_us,
            "args": {"trace_id": self.trace_id.clone(), "job": job_id, "kind": kind},
        })];
        for span in self.spans.lock().expect("trace poisoned").iter() {
            let mut args = match &span.args {
                Value::Object(map) => map.clone(),
                _ => std::collections::BTreeMap::new(),
            };
            args.insert("trace_id".to_owned(), Value::String(self.trace_id.clone()));
            events.push(json!({
                "name": span.name.clone(),
                "cat": span.cat,
                "ph": "X",
                "pid": 1,
                "tid": job_id,
                "ts": span.ts_us,
                "dur": span.dur_us,
                "args": Value::Object(args),
            }));
        }
        events
    }

    /// The per-job Chrome-trace document served by
    /// `GET /v1/jobs/:id/trace`.
    pub fn to_chrome_json(&self, job_id: u64, kind: &str) -> Value {
        json!({
            "displayTimeUnit": "ms",
            "traceEvents": self.events(job_id, kind),
        })
    }
}

/// Assembles the server-wide interleaved trace document from every
/// job's lane (the `--trace` file written at drain).
pub fn interleaved_document(lanes: Vec<Vec<Value>>) -> Value {
    let events: Vec<Value> = lanes.into_iter().flatten().collect();
    json!({
        "displayTimeUnit": "ms",
        "traceEvents": events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_under_contention() {
        let generator = TraceIdGen::new();
        let mut ids: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..100).map(|_| generator.mint()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let total = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), total, "all 800 minted ids are distinct");
    }

    #[test]
    fn spans_nest_inside_the_request_root() {
        let origin = Instant::now();
        let trace = JobTrace::new("t-1".to_owned(), origin);
        trace.time("cache_lookup", "cache", json!({"outcome": "miss"}), || {});
        trace.time("fused_scan", "engine", json!({"k": 4}), || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        trace.finish();

        let events = trace.events(7, "verify");
        assert_eq!(events.len(), 3);
        let root = &events[0];
        assert_eq!(root["name"], "request");
        let root_ts = root["ts"].as_u64().unwrap();
        let root_end = root_ts + root["dur"].as_u64().unwrap();
        for child in &events[1..] {
            let ts = child["ts"].as_u64().unwrap();
            let end = ts + child["dur"].as_u64().unwrap();
            assert!(ts >= root_ts && end <= root_end, "child inside root");
            assert_eq!(child["tid"], 7, "one lane per job");
            assert_eq!(child["args"]["trace_id"], "t-1", "id on every span");
        }
        assert_eq!(events[2]["args"]["k"], 4, "caller args survive");
    }

    #[test]
    fn finish_is_idempotent_and_documents_render() {
        let trace = JobTrace::new("t-2".to_owned(), Instant::now());
        trace.finish();
        let first = trace.events(1, "verify")[0]["dur"].as_u64().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.finish();
        let second = trace.events(1, "verify")[0]["dur"].as_u64().unwrap();
        assert_eq!(first, second, "second finish does not move the end");
        let doc = trace.to_chrome_json(1, "verify");
        assert!(doc["traceEvents"].as_array().is_some());
        assert_eq!(doc["displayTimeUnit"], "ms");
    }
}
